//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * clustering bootstrap on/off over Hybrid (AVOC's delta) — time cost of
//!   the bootstrap round itself;
//! * collation method (weighted mean vs mean-nearest-neighbour vs median);
//! * soft-threshold multiplier sweep (the Sdt parameter);
//! * candidate-count scaling (5 light sensors → 9 beacons → 33-sensor
//!   smart-shelf scale), where the O(n²) agreement matrix starts to show.

use avoc_bench::Fig6Config;
use avoc_core::algorithms::{AvocVoter, HybridVoter, SoftDynamicVoter};
use avoc_core::{
    AgreementParams, Collation, HistoryUpdate, MarginMode, MemoryHistory, Round, Voter, VoterConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn round_with_outlier(n: usize) -> Round {
    let mut values: Vec<f64> = (0..n - 1)
        .map(|i| 18.5 + 0.01 * (i as f64 - n as f64 / 2.0))
        .collect();
    values.push(24.5);
    Round::from_numbers(0, &values)
}

fn bench_bootstrap_on_off(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bootstrap");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let round = round_with_outlier(5);
    let cfg = VoterConfig::new().with_collation(Collation::MeanNearestNeighbor);

    // The bootstrap round itself (fresh voter every iteration).
    group.bench_function("avoc_bootstrap_round", |b| {
        b.iter(|| {
            let mut voter = AvocVoter::new(cfg, MemoryHistory::new());
            black_box(voter.vote(black_box(&round)).expect("vote"))
        });
    });
    // Hybrid's plain-average first round, for the delta.
    group.bench_function("hybrid_first_round", |b| {
        b.iter(|| {
            let mut voter = HybridVoter::new(cfg, MemoryHistory::new());
            black_box(voter.vote(black_box(&round)).expect("vote"))
        });
    });
    // Steady-state rounds for both (voter reused).
    group.bench_function("avoc_steady_state", |b| {
        let mut voter = AvocVoter::new(cfg, MemoryHistory::new());
        voter.vote(&round).expect("bootstrap");
        b.iter(|| black_box(voter.vote(black_box(&round)).expect("vote")));
    });
    group.bench_function("hybrid_steady_state", |b| {
        let mut voter = HybridVoter::new(cfg, MemoryHistory::new());
        voter.vote(&round).expect("first round");
        b.iter(|| black_box(voter.vote(black_box(&round)).expect("vote")));
    });
    group.finish();
}

fn bench_collation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_collation");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let round = round_with_outlier(9);
    for (name, collation) in [
        ("weighted_mean", Collation::WeightedMean),
        ("mean_nearest_neighbor", Collation::MeanNearestNeighbor),
        ("median", Collation::Median),
    ] {
        group.bench_function(name, |b| {
            let cfg = VoterConfig::new().with_collation(collation);
            let mut voter = HybridVoter::new(cfg, MemoryHistory::new());
            b.iter(|| black_box(voter.vote(black_box(&round)).expect("vote")));
        });
    }
    group.finish();
}

fn bench_soft_multiplier(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_soft_multiplier");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let round = round_with_outlier(5);
    for mult in [1.0, 2.0, 4.0] {
        group.bench_with_input(BenchmarkId::from_parameter(mult), &mult, |b, &mult| {
            let cfg = VoterConfig::new()
                .with_agreement(AgreementParams::new(0.05, mult, MarginMode::Relative))
                .with_update(HistoryUpdate::new(0.1));
            let mut voter = SoftDynamicVoter::new(cfg, MemoryHistory::new());
            b.iter(|| black_box(voter.vote(black_box(&round)).expect("vote")));
        });
    }
    group.finish();
}

fn bench_candidate_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_candidate_scaling");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let cfg = Fig6Config::default();
    for &n in &[5usize, 9, 33] {
        let round = round_with_outlier(n);
        for algo in ["avg", "standard", "hybrid", "avoc"] {
            group.bench_with_input(BenchmarkId::new(algo, n), &round, |b, round| {
                let mut voter = cfg.voter(algo);
                b.iter(|| black_box(voter.vote(black_box(round)).expect("vote")));
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bootstrap_on_off,
    bench_collation,
    bench_soft_multiplier,
    bench_candidate_scaling
);
criterion_main!(benches);
