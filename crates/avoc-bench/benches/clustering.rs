//! Clustering-step cost: the paper claims the AVOC bootstrap adds "little
//! performance overhead" (§5). This bench quantifies the agreement
//! clusterer against the general-purpose alternatives it approximates
//! (DBSCAN) and the multi-dimensional generalisation candidates
//! (k-means, X-means, mean-shift), at the paper's candidate counts
//! (5 light sensors, 9 beacons) and at a smart-shelf-scale 100.

use avoc_cluster::{AgreementClusterer, Dbscan, KMeans, MarginMode, MeanShift, Point, XMeans};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

/// One round of candidate values: a majority blob at ~18.5 plus one outlier.
fn candidates(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values: Vec<f64> = (0..n - 1)
        .map(|_| 18.5 + rng.random_range(-0.4..0.4))
        .collect();
    values.push(24.5);
    values
}

fn bench_clusterers(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_round");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &n in &[5usize, 9, 100] {
        let values = candidates(n, 42);
        let points: Vec<Point> = values.iter().map(|&v| Point::scalar(v)).collect();

        group.bench_with_input(BenchmarkId::new("agreement", n), &values, |b, values| {
            let clusterer = AgreementClusterer::new(0.05, MarginMode::Relative);
            b.iter(|| black_box(clusterer.cluster(black_box(values))));
        });
        group.bench_with_input(BenchmarkId::new("dbscan", n), &points, |b, points| {
            let dbscan = Dbscan::new(0.9, 2);
            b.iter(|| black_box(dbscan.fit(black_box(points))));
        });
        group.bench_with_input(BenchmarkId::new("kmeans_k2", n), &points, |b, points| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(KMeans::new(2).fit(black_box(points), &mut rng))
            });
        });
        group.bench_with_input(BenchmarkId::new("xmeans", n), &points, |b, points| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(XMeans::new(1, 4).fit(black_box(points), &mut rng))
            });
        });
        group.bench_with_input(BenchmarkId::new("meanshift", n), &points, |b, points| {
            let ms = MeanShift::new(1.0);
            b.iter(|| black_box(ms.fit(black_box(points))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clusterers);
criterion_main!(benches);
