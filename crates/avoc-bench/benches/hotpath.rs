//! The fusion hot path under Criterion: rounds/sec through a single engine
//! (`submit_ref`, no per-round copies) and through the serve path at 1 and
//! 16 sessions fed with batched frames.
//!
//! A counting global allocator rides along; each benchmark prints its
//! measured allocations per fused round after timing, so a regression that
//! reintroduces per-round heap traffic is visible right next to the
//! latency it costs. Steady-state `submit_ref` should report 0.

use avoc_core::{ModuleId, Round};
use avoc_net::{BatchReading, Message, SpecSource};
use avoc_serve::{ServeConfig, SpecRegistry, VoterService};
use avoc_vdx::{build_engine, VdxSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crossbeam::channel::{self, Receiver};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const MODULES: u32 = 3;

/// The steady-state engine path alone: prebuilt rounds, `submit_ref`, no
/// result copies. This is the loop the scratch buffers exist for.
fn bench_engine_submit_ref(c: &mut Criterion) {
    let cfg = avoc_bench::Fig6Config::smoke();
    let rounds: Vec<Round> = cfg.faulty_trace().iter_rounds().collect();
    let mut engine = build_engine(&VdxSpec::avoc()).expect("avoc spec builds");
    for r in &rounds {
        let _ = engine.submit_ref(r); // warm-up: bootstrap + capacity growth
    }

    let mut group = c.benchmark_group("hotpath");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let mut i = 0usize;
    let mut fused = 0u64;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    group.bench_function("engine_submit_ref", |b| {
        b.iter(|| {
            let r = &rounds[i % rounds.len()];
            i += 1;
            fused += 1;
            black_box(engine.submit_ref(black_box(r)).is_ok());
        });
    });
    let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
    eprintln!(
        "engine_submit_ref: {allocated} allocations over {fused} fused rounds \
         ({:.4} alloc/round)",
        allocated as f64 / fused as f64
    );
    group.finish();
}

fn open_sessions(service: &VoterService, n: u64) -> Vec<Receiver<Message>> {
    (0..n)
        .map(|session| {
            let (tx, rx) = channel::bounded(64);
            service
                .open_session(session, MODULES, &SpecSource::Named("avoc".into()), tx)
                .expect("open session");
            rx
        })
        .collect()
}

/// The serve path fed through `feed_batch`: one frame's worth of readings
/// per session per iteration instead of one dispatch per reading.
fn bench_serve_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_serve_batched");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &sessions in &[1u64, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sessions),
            &sessions,
            |b, &sessions| {
                let mut registry = SpecRegistry::new();
                registry.insert("avoc", VdxSpec::avoc());
                let service = VoterService::start(ServeConfig::default(), Arc::new(registry));
                let sinks = open_sessions(&service, sessions);
                let mut round = 0u64;
                let mut batch = Vec::with_capacity(MODULES as usize);
                let mut fused = 0u64;
                let before = ALLOCATIONS.load(Ordering::Relaxed);
                b.iter(|| {
                    batch.clear();
                    for m in 0..MODULES {
                        batch.push(BatchReading {
                            module: ModuleId::new(m),
                            round,
                            value: 20.0 + 0.1 * f64::from(m),
                        });
                    }
                    for session in 0..sessions {
                        service.feed_batch(session, &batch).expect("feed_batch");
                    }
                    // Waiting for every result makes the iteration measure
                    // fused throughput, not enqueue throughput.
                    for rx in &sinks {
                        black_box(rx.recv().expect("result"));
                    }
                    round += 1;
                    fused += sessions;
                });
                let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
                eprintln!(
                    "serve_batched/{sessions}: {allocated} allocations over {fused} fused \
                     rounds ({:.2} alloc/round, includes mailbox + result frames)",
                    allocated as f64 / fused as f64
                );
                drop(sinks);
                drop(service);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_submit_ref, bench_serve_batched);
criterion_main!(benches);
