//! Daemon throughput: sustained voting rounds through `avoc-serve` at 1, 4
//! and 16 concurrent sessions over the in-process transport (no sockets, so
//! the numbers isolate the service path: shard routing, mailboxes, session
//! lookup, engine submit, result emission).
//!
//! One iteration feeds a complete 3-module round to every open session and
//! waits for every fused result, so rounds/sec = iterations/sec × sessions.

use avoc_core::ModuleId;
use avoc_net::{Message, SpecSource};
use avoc_serve::{ServeConfig, SpecRegistry, VoterService};
use avoc_vdx::VdxSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crossbeam::channel::{self, Receiver};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const MODULES: u32 = 3;

fn open_sessions(service: &VoterService, n: u64) -> Vec<Receiver<Message>> {
    (0..n)
        .map(|session| {
            let (tx, rx) = channel::bounded(64);
            service
                .open_session(session, MODULES, &SpecSource::Named("avoc".into()), tx)
                .expect("open session");
            rx
        })
        .collect()
}

fn bench_concurrent_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_round_all_sessions");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &sessions in &[1u64, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sessions),
            &sessions,
            |b, &sessions| {
                let mut registry = SpecRegistry::new();
                registry.insert("avoc", VdxSpec::avoc());
                let service = VoterService::start(ServeConfig::default(), Arc::new(registry));
                let sinks = open_sessions(&service, sessions);
                let mut round = 0u64;
                b.iter(|| {
                    for session in 0..sessions {
                        for m in 0..MODULES {
                            service
                                .feed(session, ModuleId::new(m), round, 20.0 + 0.1 * f64::from(m))
                                .expect("feed");
                        }
                    }
                    // Waiting for every result makes the iteration measure
                    // fused throughput, not enqueue throughput.
                    for rx in &sinks {
                        black_box(rx.recv().expect("result"));
                    }
                    round += 1;
                });
                // Drop drains the service (joins the shard workers).
                drop(sinks);
                drop(service);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_sessions);
criterion_main!(benches);
