//! The datastore bottleneck: the paper attributes the 20× gap between
//! history-aware (~1 ms) and stateless (~50 µs) rounds to "datastore reads
//! and writes". This bench drives the same Standard voter over four store
//! backends so the gap — and the write-behind cache that closes it — is
//! directly measurable.

use avoc_core::algorithms::StandardVoter;
use avoc_core::{MemoryHistory, Round, Voter, VoterConfig};
use avoc_store::{CachedHistory, FileHistory, SharedHistory};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_round(values: &[f64]) -> Round {
    Round::from_numbers(0, values)
}

fn bench_stores(c: &mut Criterion) {
    let mut group = c.benchmark_group("history_store_backends");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let round = bench_round(&[18.0, 18.1, 17.9, 18.2, 18.05]);
    let cfg = VoterConfig::default();

    group.bench_function("memory", |b| {
        let mut voter = StandardVoter::new(cfg, MemoryHistory::new());
        b.iter(|| black_box(voter.vote(black_box(&round)).expect("vote")));
    });

    group.bench_function("shared_rwlock", |b| {
        let mut voter = StandardVoter::new(cfg, SharedHistory::new());
        b.iter(|| black_box(voter.vote(black_box(&round)).expect("vote")));
    });

    group.bench_function("file_wal", |b| {
        let path =
            std::env::temp_dir().join(format!("avoc-bench-wal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut voter = StandardVoter::new(cfg, FileHistory::open(&path).expect("temp file"));
        b.iter(|| black_box(voter.vote(black_box(&round)).expect("vote")));
        let _ = std::fs::remove_file(&path);
    });

    group.bench_function("file_wal_cached", |b| {
        let path = std::env::temp_dir().join(format!(
            "avoc-bench-wal-cached-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let store = CachedHistory::new(FileHistory::open(&path).expect("temp file"));
        let mut voter = StandardVoter::new(cfg, store);
        b.iter(|| black_box(voter.vote(black_box(&round)).expect("vote")));
        let _ = std::fs::remove_file(&path);
    });

    group.finish();
}

criterion_group!(benches, bench_stores);
criterion_main!(benches);
