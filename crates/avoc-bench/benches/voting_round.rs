//! Per-round voting latency — the §7 implementation note ("history-aware
//! voting round in 1 ms, stateless vote in 50 µs" on Python): one benchmark
//! per algorithm over the paper's 5-candidate rounds, plus the full engine
//! path with quorum/exclusion/fault policies.

use avoc_bench::Fig6Config;
use avoc_core::{Quorum, Round, VotingEngine};
use avoc_vdx::VdxSpec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn rounds_for_bench(n: usize) -> Vec<Round> {
    Fig6Config {
        rounds: n,
        ..Fig6Config::default()
    }
    .faulty_trace()
    .iter_rounds()
    .collect()
}

fn bench_algorithms(c: &mut Criterion) {
    let rounds = rounds_for_bench(512);
    let cfg = Fig6Config::default();
    let mut group = c.benchmark_group("vote_round_5_candidates");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, _) in cfg.roster() {
        group.bench_function(name, |b| {
            // One voter reused across iterations: steady-state cost, with
            // history warm-up amortised identically across algorithms.
            let mut voter = cfg.voter(name);
            let mut i = 0usize;
            b.iter(|| {
                let round = &rounds[i % rounds.len()];
                i += 1;
                black_box(voter.vote(black_box(round)).expect("vote"))
            });
        });
    }
    group.finish();
}

fn bench_engine_path(c: &mut Criterion) {
    let rounds = rounds_for_bench(512);
    let mut group = c.benchmark_group("engine_submit");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("avoc_engine_defaults", |b| {
        let mut engine = avoc_vdx::build_engine(&VdxSpec::avoc()).expect("valid spec");
        let mut i = 0usize;
        b.iter(|| {
            let round = &rounds[i % rounds.len()];
            i += 1;
            black_box(engine.submit(black_box(round)).expect("submit"))
        });
    });

    group.bench_function("avoc_engine_with_exclusion", |b| {
        let voter = avoc_vdx::build_voter(&VdxSpec::avoc()).expect("valid spec");
        let mut engine = VotingEngine::new(voter)
            .with_quorum(Quorum::Majority)
            .with_exclusion(avoc_core::Exclusion::StdDev(3.0));
        let mut i = 0usize;
        b.iter(|| {
            let round = &rounds[i % rounds.len()];
            i += 1;
            black_box(engine.submit(black_box(round)).expect("submit"))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_engine_path);
criterion_main!(benches);
