//! Quality ablations for the design choices DESIGN.md calls out — the
//! Criterion `ablation` bench measures their *time* cost; this binary
//! measures their *output quality* on the UC-1 error-injection workload:
//!
//! * clustering bootstrap on/off over Hybrid (AVOC's delta);
//! * collation method (the UC-2-decisive axis) on UC-1;
//! * soft-threshold multiplier sweep (the Sdt tuning knob);
//! * module elimination on/off (Standard vs ME);
//! * adaptation-rate sweep for the history family.
//!
//! ```text
//! cargo run -p avoc-bench --release --bin ablation -- [--rounds N] [--seed S]
//! ```

use avoc_bench::{run_voter, Fig6Config};
use avoc_core::algorithms::{
    AvocVoter, HybridVoter, ModuleEliminationVoter, SoftDynamicVoter, StandardVoter,
};
use avoc_core::{
    AgreementParams, Collation, HistoryUpdate, MarginMode, MemoryHistory, Voter, VoterConfig,
};
use avoc_metrics::{ConvergenceReport, Table};
use avoc_sim::RecordedTrace;

const EPSILON: f64 = 0.15;
const SUSTAIN: usize = 8;
const WINDOW: usize = 8;

fn report(
    name: &str,
    voter_factory: impl Fn() -> Box<dyn Voter>,
    clean: &RecordedTrace,
    faulty: &RecordedTrace,
) -> ConvergenceReport {
    let mut vc = voter_factory();
    let mut vf = voter_factory();
    ConvergenceReport::compare_smoothed(
        name,
        &run_voter(vc.as_mut(), clean),
        &run_voter(vf.as_mut(), faulty),
        EPSILON,
        SUSTAIN,
        WINDOW,
    )
}

fn row_of(t: &mut Table, r: &ConvergenceReport) {
    t.row(vec![
        r.algorithm.clone(),
        r.rounds_to_converge
            .map_or("never".into(), |n| n.to_string()),
        format!("{:.4}", r.stable_deviation),
        format!("{:.4}", r.peak_deviation),
    ]);
}

fn headers() -> Vec<String> {
    vec![
        "variant".into(),
        "rounds to converge".into(),
        "stable |Δ|".into(),
        "peak |Δ|".into(),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Fig6Config {
        rounds: 2_000,
        ..Fig6Config::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rounds" => {
                i += 1;
                cfg.rounds = args[i].parse().expect("--rounds takes a number");
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed takes a number");
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let clean = cfg.clean_trace();
    let faulty = cfg.faulty_trace();
    let mnn = VoterConfig::new().with_collation(Collation::MeanNearestNeighbor);

    // 1. Bootstrap on/off.
    let mut t = Table::new(headers());
    row_of(
        &mut t,
        &report(
            "hybrid (no bootstrap)",
            || Box::new(HybridVoter::new(mnn, MemoryHistory::new())),
            &clean,
            &faulty,
        ),
    );
    row_of(
        &mut t,
        &report(
            "avoc (clustering bootstrap)",
            || Box::new(AvocVoter::new(mnn, MemoryHistory::new())),
            &clean,
            &faulty,
        ),
    );
    println!("== ablation 1: clustering bootstrap on/off (AVOC's delta) ==");
    println!("{t}");

    // 2. Collation method, same Hybrid core.
    let mut t = Table::new(headers());
    for (name, collation) in [
        ("weighted mean", Collation::WeightedMean),
        ("mean-nearest-neighbour", Collation::MeanNearestNeighbor),
        ("median", Collation::Median),
    ] {
        let cfg_v = VoterConfig::new().with_collation(collation);
        row_of(
            &mut t,
            &report(
                name,
                || Box::new(AvocVoter::new(cfg_v, MemoryHistory::new())),
                &clean,
                &faulty,
            ),
        );
    }
    println!("== ablation 2: collation method (AVOC core) ==");
    println!("{t}");

    // 3. Soft-threshold multiplier sweep (Sdt).
    let mut t = Table::new(headers());
    for mult in [1.0, 1.5, 2.0, 3.0, 4.0] {
        let cfg_v = VoterConfig::new()
            .with_agreement(AgreementParams::new(cfg.error, mult, MarginMode::Relative))
            .with_update(HistoryUpdate::new(cfg.fast_rate));
        row_of(
            &mut t,
            &report(
                &format!("sdt, multiplier {mult}"),
                || Box::new(SoftDynamicVoter::new(cfg_v, MemoryHistory::new())),
                &clean,
                &faulty,
            ),
        );
    }
    println!("== ablation 3: soft-threshold multiplier (Sdt) ==");
    println!("{t}");

    // 4. Module elimination on/off at the calibrated binary band.
    let binary_cfg = VoterConfig::new()
        .with_agreement(AgreementParams::new(
            cfg.standard_error,
            cfg.soft_multiplier,
            MarginMode::Relative,
        ))
        .with_update(HistoryUpdate::new(cfg.fast_rate));
    let mut t = Table::new(headers());
    row_of(
        &mut t,
        &report(
            "standard (no elimination)",
            || Box::new(StandardVoter::new(binary_cfg, MemoryHistory::new())),
            &clean,
            &faulty,
        ),
    );
    row_of(
        &mut t,
        &report(
            "module elimination",
            || {
                Box::new(ModuleEliminationVoter::new(
                    binary_cfg,
                    MemoryHistory::new(),
                ))
            },
            &clean,
            &faulty,
        ),
    );
    println!("== ablation 4: module elimination on/off (same band, same rate) ==");
    println!("{t}");

    // 5. Adaptation-rate sweep for the eliminating family.
    let mut t = Table::new(headers());
    for rate in [0.01, 0.05, 0.1, 0.25, 0.5] {
        let cfg_v = VoterConfig::new()
            .with_agreement(AgreementParams::new(
                cfg.standard_error,
                cfg.soft_multiplier,
                MarginMode::Relative,
            ))
            .with_update(HistoryUpdate::new(rate));
        row_of(
            &mut t,
            &report(
                &format!("me, rate {rate}"),
                || Box::new(ModuleEliminationVoter::new(cfg_v, MemoryHistory::new())),
                &clean,
                &faulty,
            ),
        );
    }
    println!("== ablation 5: adaptation rate (ME) ==");
    println!("{t}");
}
