//! The cluster-tier benchmark and smoke gate behind `BENCH_cluster.json`:
//! two persistent daemons and a gateway on loopback, 64 sessions placed
//! by consistent hashing through real `Redirect` frames, one forced
//! drain-migration mid-run, and two hard gates the binary exits non-zero
//! on:
//!
//! * **zero lost rounds** — every session receives every round exactly
//!   once, in order, across the drain; and because every session is fed
//!   the same readings, every session's fused stream must be
//!   **bit-identical** to every other's — a migrated session that
//!   diverged from an unmigrated one by a single mantissa bit fails the
//!   run;
//! * **roll-up correctness** — the gateway's `/metrics` roll-up must
//!   equal the sum of the member daemons' own scrapes for every shared
//!   counter sampled (rounds fused, sessions resumed, export/import
//!   counts), proving the cluster surface is an honest aggregate and not
//!   a cache.
//!
//! Rows record placement balance, migration count and latency, redirect
//! traffic, and end-to-end throughput, so the scale-out tier's overhead
//! is a tracked number rather than folklore.
//!
//! ```text
//! cargo run -p avoc-bench --release --bin bench_cluster -- \
//!     [--quick] [--out PATH] [--sessions N] [--rounds N]
//! ```

use avoc_core::ModuleId;
use avoc_gateway::{Gateway, GatewayConfig, Member};
use avoc_net::{Message, SpecSource};
use avoc_obs::{http, rollup};
use avoc_serve::{
    ClientConfig, Persistence, ResilientClient, RetryPolicy, ServeConfig, SpecRegistry, TcpServer,
    VoterService,
};
use avoc_vdx::VdxSpec;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MODULES: u32 = 3;
const TOKEN: u64 = 0x5EED;
/// Shared inter-node secret the bench cluster migrates under.
const CLUSTER_SECRET: u64 = 0xC1A57E6;

fn registry() -> Arc<SpecRegistry> {
    let mut reg = SpecRegistry::new();
    reg.insert("avoc", VdxSpec::avoc());
    Arc::new(reg)
}

fn start_daemon(node_id: u64, state_dir: &Path) -> TcpServer {
    let config = ServeConfig {
        persistence: Persistence {
            state_dir: Some(state_dir.to_path_buf()),
            node_id,
            cluster_secret: Some(CLUSTER_SECRET),
            ..Persistence::default()
        },
        admin_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    };
    let service = Arc::new(VoterService::start(config, registry()));
    TcpServer::start("127.0.0.1:0", service).expect("bind daemon")
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("avoc-bench-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic triads: identical across sessions, so every session's
/// fused stream is comparable bit-for-bit.
fn reading(module: u32, round: u64) -> f64 {
    18.0 + f64::from(module) * 0.1 + (round % 5) as f64 * 0.05
}

/// Feeds rounds `[from, to)` in lockstep and appends `(round, bits,
/// voted)` to `out`. Returns `false` (after printing why) on any protocol
/// surprise instead of panicking, so the gate reports it.
fn run_rounds(
    client: &mut ResilientClient,
    session: u64,
    from: u64,
    to: u64,
    out: &mut Vec<(u64, Option<u64>, bool)>,
) -> bool {
    for round in from..to {
        for m in 0..MODULES {
            if let Err(e) = client.send_reading(session, ModuleId::new(m), round, reading(m, round))
            {
                eprintln!("session {session}: send failed at round {round}: {e}");
                return false;
            }
        }
        loop {
            match client.recv() {
                Ok(Message::SessionResult {
                    round: r,
                    value,
                    voted,
                    ..
                }) => {
                    out.push((r, value.map(f64::to_bits), voted));
                    break;
                }
                Ok(Message::ResultBatch { results, .. }) => {
                    for r in results {
                        out.push((r.round, r.value.map(f64::to_bits), r.voted));
                    }
                    break;
                }
                Ok(Message::Error { message, .. }) => {
                    eprintln!("session {session}: daemon error at round {round}: {message}");
                    return false;
                }
                Ok(_) => {}
                Err(e) => {
                    eprintln!("session {session}: recv failed at round {round}: {e}");
                    return false;
                }
            }
        }
    }
    true
}

fn scrape(addr: &str) -> String {
    match http::get(addr, "/metrics") {
        Ok((200, body)) => body,
        Ok((status, _)) => {
            eprintln!("scrape of {addr} answered {status}");
            String::new()
        }
        Err(e) => {
            eprintln!("scrape of {addr} failed: {e}");
            String::new()
        }
    }
}

/// Sums `key` across exposition texts (absent samples count 0).
fn summed(texts: &[&str], key: &str) -> f64 {
    texts
        .iter()
        .map(|t| rollup::sample_value(t, key).unwrap_or(0.0))
        .sum()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_cluster.json");
    let mut sessions: u64 = 64;
    let mut rounds: u64 = 20;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out takes a path").clone();
            }
            "--sessions" => {
                i += 1;
                sessions = args
                    .get(i)
                    .expect("--sessions takes a count")
                    .parse()
                    .unwrap();
            }
            "--rounds" => {
                i += 1;
                rounds = args
                    .get(i)
                    .expect("--rounds takes a count")
                    .parse()
                    .unwrap();
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if quick {
        rounds = rounds.min(8);
    }
    let half = rounds / 2;

    let dir1 = state_dir("n1");
    let dir2 = state_dir("n2");
    let node1 = start_daemon(1, &dir1);
    let node2 = start_daemon(2, &dir2);
    let members = vec![
        Member {
            node: 1,
            addr: node1.local_addr().to_string(),
            admin: node1.admin_addr().map(|a| a.to_string()),
        },
        Member {
            node: 2,
            addr: node2.local_addr().to_string(),
            admin: node2.admin_addr().map(|a| a.to_string()),
        },
    ];
    let gateway = Gateway::start(
        "127.0.0.1:0",
        GatewayConfig {
            members,
            admin_addr: Some("127.0.0.1:0".to_string()),
            health_interval: Duration::from_millis(200),
            cluster_secret: Some(CLUSTER_SECRET),
            ..GatewayConfig::default()
        },
    )
    .expect("start gateway");

    // ---- Phase 1: open every session THROUGH the gateway (real
    // Redirect frames, real following) and feed the first half.
    let started = Instant::now();
    let mut clients: Vec<ResilientClient> = Vec::new();
    let mut streams: Vec<Vec<(u64, Option<u64>, bool)>> = Vec::new();
    let mut ok = true;
    for s in 0..sessions {
        let mut client = ResilientClient::new(
            gateway.local_addr(),
            ClientConfig {
                read_timeout: Duration::from_secs(5),
                ..ClientConfig::default()
            },
            RetryPolicy {
                jitter_seed: s + 1,
                ..RetryPolicy::default()
            },
        );
        client
            .open_session(s, MODULES, SpecSource::Named("avoc".into()), TOKEN)
            .expect("open via gateway");
        let mut stream = Vec::new();
        ok &= run_rounds(&mut client, s, 0, half, &mut stream);
        clients.push(client);
        streams.push(stream);
    }
    let placed_before: Vec<u64> = (0..sessions)
        .map(|s| gateway.place(s).expect("placed").0)
        .collect();
    let on_node1_before = placed_before.iter().filter(|&&n| n == 1).count();

    // ---- Phase 2: the forced drain-migration. Every session on the
    // drained node checkpoint-ships to the survivor.
    let drained_node = placed_before[0];
    let migrate_started = Instant::now();
    let moved = gateway.drain_node(drained_node).expect("drain node");
    let migrate_elapsed = migrate_started.elapsed();
    let expected_moves = placed_before.iter().filter(|&&n| n == drained_node).count();
    if moved != expected_moves {
        eprintln!("GATE: drain moved {moved} sessions, expected {expected_moves}");
        ok = false;
    }

    // ---- Phase 3: feed the second half. Migrated sessions re-home via
    // the in-band Redirect (or gateway fallback) and must not lose a
    // round.
    for s in 0..sessions {
        ok &= run_rounds(
            &mut clients[s as usize],
            s,
            half,
            rounds,
            &mut streams[s as usize],
        );
    }
    let elapsed = started.elapsed();
    let redirects_followed: u64 = clients
        .iter()
        .map(|c| c.io_stats().redirects_followed)
        .sum();

    // ---- Gate 1: zero lost rounds, bit-identical streams.
    for (s, stream) in streams.iter().enumerate() {
        let rounds_seen: Vec<u64> = stream.iter().map(|r| r.0).collect();
        let expected_rounds: Vec<u64> = (0..rounds).collect();
        if rounds_seen != expected_rounds {
            eprintln!("GATE: session {s} lost or reordered rounds: {rounds_seen:?}");
            ok = false;
        }
        if *stream != streams[0] {
            eprintln!("GATE: session {s}'s fused stream diverged from session 0's");
            ok = false;
        }
    }

    // ---- Quiesce, then Gate 2: the roll-up is an honest sum.
    for (s, client) in clients.iter_mut().enumerate() {
        let _ = client.close_session(s as u64);
    }
    // Closes are async on the shards; give them a beat to settle.
    std::thread::sleep(Duration::from_millis(300));

    let admin1 = node1.admin_addr().expect("node1 admin").to_string();
    let admin2 = node2.admin_addr().expect("node2 admin").to_string();
    let gateway_admin = gateway.admin_addr().expect("gateway admin").to_string();
    let scrape1 = scrape(&admin1);
    let scrape2 = scrape(&admin2);
    let rolled = scrape(&gateway_admin);
    let gate_keys = [
        "avoc_rounds_fused_total",
        "avoc_sessions_opened_total",
        "avoc_sessions_exported_total",
        "avoc_sessions_imported_total",
    ];
    for key in gate_keys {
        let member_sum = summed(&[&scrape1, &scrape2], key);
        let rolled_value = rollup::sample_value(&rolled, key).unwrap_or(0.0);
        if member_sum != rolled_value {
            eprintln!("GATE: roll-up {key} = {rolled_value}, member scrapes sum to {member_sum}");
            ok = false;
        }
    }
    let exported = summed(&[&scrape1, &scrape2], "avoc_sessions_exported_total");
    let imported = summed(&[&scrape1, &scrape2], "avoc_sessions_imported_total");
    if exported != moved as f64 || imported != moved as f64 {
        eprintln!("GATE: {moved} drains but exported={exported} imported={imported}");
        ok = false;
    }
    let gw_local = gateway.registry().render_prometheus();
    let migrations =
        rollup::sample_value(&gw_local, "avoc_gateway_migrations_total").unwrap_or(0.0);
    if migrations != moved as f64 {
        eprintln!("GATE: gateway counted {migrations} migrations for {moved} moves");
        ok = false;
    }

    let total_readings = sessions * rounds * u64::from(MODULES);
    let throughput = total_readings as f64 / elapsed.as_secs_f64();
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"avoc-bench-cluster-v1\",\n",
            "  \"sessions\": {},\n",
            "  \"rounds\": {},\n",
            "  \"nodes\": 2,\n",
            "  \"placement_before\": {{\"node1\": {}, \"node2\": {}}},\n",
            "  \"drained_node\": {},\n",
            "  \"sessions_migrated\": {},\n",
            "  \"drain_migration_secs\": {:.6},\n",
            "  \"redirects_followed\": {},\n",
            "  \"readings\": {},\n",
            "  \"elapsed_secs\": {:.6},\n",
            "  \"readings_per_sec\": {:.1},\n",
            "  \"rollup_gate_keys\": {},\n",
            "  \"gates_passed\": {}\n",
            "}}\n"
        ),
        sessions,
        rounds,
        on_node1_before,
        sessions as usize - on_node1_before,
        drained_node,
        moved,
        migrate_elapsed.as_secs_f64(),
        redirects_followed,
        total_readings,
        elapsed.as_secs_f64(),
        throughput,
        gate_keys.len(),
        ok,
    );
    std::fs::write(&out, &json).expect("write BENCH_cluster.json");
    print!("{json}");

    gateway.shutdown();
    node1.shutdown();
    node2.shutdown();
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir2);
    if !ok {
        eprintln!("bench_cluster: GATES FAILED");
        std::process::exit(1);
    }
    eprintln!(
        "bench_cluster: ok — {sessions} sessions, {moved} migrated, zero lost rounds, roll-up sums"
    );
}
