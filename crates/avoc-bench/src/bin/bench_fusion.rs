//! The fusion hot-path benchmark behind `BENCH_fusion.json`:
//!
//! 1. **Roster replay** — the Fig. 6 roster over the 10 000-round faulty
//!    trace, serial vs `std::thread::scope` parallel, verifying the two are
//!    bit-identical before timing is trusted. The speedup column is
//!    wall-clock and therefore bounded by the host's core count (reported
//!    alongside it); on a single-core host it degenerates to ~1×.
//! 2. **Steady-state fuse** — one AVOC engine driven through prebuilt
//!    rounds via `submit_ref`, recording per-round fuse latency into an
//!    [`avoc_obs::Histogram`] (the same log-linear type the daemon's
//!    `/metrics` endpoint exposes, so the checked-in JSON and a live
//!    scrape share one schema) and, through a counting global allocator,
//!    heap allocations per fused round (the zero the scratch-buffer work
//!    is accountable to). Histogram recording happens *inside* the
//!    metered window: it is part of the zero-allocation claim.
//!
//! ```text
//! cargo run -p avoc-bench --release --bin bench_fusion -- [--quick] [--out PATH]
//! ```

use avoc_bench::replay::{replay_parallel, replay_serial, replays_bit_identical};
use avoc_bench::Fig6Config;
use avoc_core::Round;
use avoc_obs::{Histogram, HistogramSnapshot};
use avoc_vdx::{build_engine, VdxSpec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every heap allocation (alloc, alloc_zeroed, realloc) so the
/// steady-state loop can assert it performs none. Lives in the binary: the
/// workspace libraries forbid `unsafe`, and only the measurement harness
/// needs an allocator hook.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

struct ReplayNumbers {
    rounds_fused: u64,
    serial_secs: f64,
    parallel_secs: f64,
    bit_identical: bool,
}

fn replay_numbers(cfg: &Fig6Config) -> ReplayNumbers {
    let trace = cfg.faulty_trace();
    let roster = cfg.roster().len() as u64;

    let start = Instant::now();
    let serial = replay_serial(cfg, &trace);
    let serial_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = replay_parallel(cfg, &trace);
    let parallel_secs = start.elapsed().as_secs_f64();

    ReplayNumbers {
        rounds_fused: roster * trace.rounds() as u64,
        serial_secs,
        parallel_secs,
        bit_identical: replays_bit_identical(&serial, &parallel),
    }
}

struct HotPathNumbers {
    rounds: u64,
    latency: HistogramSnapshot,
    allocations: u64,
}

/// Drives one AVOC engine over prebuilt rounds and measures the fuse loop
/// alone: rounds are materialised and the latency histogram allocated
/// *before* the allocation snapshot, so the only allocator traffic the
/// window can see is the engine's own — and the histogram's own `record`,
/// which must be allocation-free for the daemon's always-on per-round
/// recording to hold up.
fn hot_path_numbers(cfg: &Fig6Config) -> HotPathNumbers {
    let trace = cfg.faulty_trace();
    let rounds: Vec<Round> = trace.iter_rounds().collect();
    let mut engine = build_engine(&VdxSpec::avoc()).expect("avoc spec builds");

    // Warm-up: bootstrap fires, scratch buffers and the dense history reach
    // their steady-state capacity.
    let warmup = rounds.len().min(256);
    for r in &rounds[..warmup] {
        let _ = engine.submit_ref(r);
    }

    let latency = Histogram::latency_ns();
    let before = allocations();
    for r in &rounds {
        let t = Instant::now();
        let _ = engine.submit_ref(r);
        latency.record(t.elapsed().as_nanos() as u64);
    }
    let allocated = allocations() - before;

    HotPathNumbers {
        rounds: rounds.len() as u64,
        latency: latency.snapshot(),
        allocations: allocated,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_fusion.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out takes a path").clone();
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cfg = if quick {
        Fig6Config {
            rounds: 1_000,
            ..Fig6Config::default()
        }
    } else {
        Fig6Config::default()
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!("replaying the roster over {} rounds ...", cfg.rounds);
    let replay = replay_numbers(&cfg);
    if !replay.bit_identical {
        eprintln!("FATAL: parallel replay diverged from serial");
        std::process::exit(1);
    }
    eprintln!("measuring the steady-state fuse path ...");
    let hot = hot_path_numbers(&cfg);

    let serial_rps = replay.rounds_fused as f64 / replay.serial_secs;
    let parallel_rps = replay.rounds_fused as f64 / replay.parallel_secs;
    let speedup = replay.serial_secs / replay.parallel_secs;
    let allocs_per_round = hot.allocations as f64 / hot.rounds as f64;
    let p50 = hot.latency.quantile(0.50);
    let p99 = hot.latency.quantile(0.99);

    let json = format!(
        "{{\n  \"config\": {{\"rounds\": {rounds}, \"quick\": {quick}, \"cores\": {cores}}},\n  \
         \"replay\": {{\n    \"rounds_fused\": {fused},\n    \"serial_rounds_per_sec\": {srps:.1},\n    \
         \"parallel_rounds_per_sec\": {prps:.1},\n    \"parallel_speedup\": {speedup:.2},\n    \
         \"bit_identical\": true\n  }},\n  \
         \"hot_path\": {{\n    \"rounds\": {hrounds},\n    \"fuse_p50_ns\": {p50},\n    \
         \"fuse_p99_ns\": {p99},\n    \"fuse_latency_ns\": {hist},\n    \
         \"allocations\": {allocs},\n    \
         \"allocations_per_round\": {apr}\n  }}\n}}\n",
        rounds = cfg.rounds,
        fused = replay.rounds_fused,
        srps = serial_rps,
        prps = parallel_rps,
        hrounds = hot.rounds,
        hist = hot.latency.to_json(),
        allocs = hot.allocations,
        apr = allocs_per_round,
    );
    std::fs::write(&out, &json).expect("write BENCH_fusion.json");
    print!("{json}");
    eprintln!(
        "serial {serial_rps:.0} rounds/s, parallel {parallel_rps:.0} rounds/s \
         ({speedup:.2}x on {cores} core(s)); \
         fuse p50 {p50} ns p99 {p99} ns, {apr} alloc/round -> {out}",
        apr = allocs_per_round,
    );
    if allocs_per_round > 0.0 {
        eprintln!("WARNING: steady-state fuse path allocated");
        std::process::exit(1);
    }
}
