//! The wire-path benchmark behind `BENCH_serve.json`: drives the voter
//! daemon over loopback TCP with 1 to 1 024 concurrent sessions and
//! measures the numbers the zero-allocation wire path and the readiness
//! reactor are accountable for:
//!
//! * **readings/sec** — end-to-end throughput, feed to verdict;
//! * **allocations per reading on the client feed path** — through a
//!   counting global allocator with a thread-local ledger, sampled around
//!   `send_batch` alone so decode/receive traffic is not charged to it.
//!   Must be zero in steady state; the binary exits non-zero otherwise;
//! * **syscalls per 1 000 readings** — client `write(2)` calls plus server
//!   writer flushes, against the analytic per-frame baseline (one write per
//!   reading frame, one per result frame) the coalescing replaced;
//! * **data-plane threads and peak FDs** — sampled from `/proc/self`
//!   mid-replay. The daemon's thread census must be identical across every
//!   row (the reactor owns all sockets from one thread; connections only
//!   cost FDs), and 256 sessions must not fuse slower than 16 — the binary
//!   exits non-zero if either scaling property regresses.
//!
//! The daemon runs with its full observability surface on: the admin HTTP
//! endpoint is bound and pipeline tracing samples one round in 64, so the
//! zero-allocation claim covers the instrumented daemon, not a stripped
//! one. Every run is scraped live — `/healthz` and `/metrics` mid-replay,
//! then `/metrics?format=json` once the clients drain — and the per-tenant
//! `avoc_session_fuse_latency_ns` histogram counts must sum to the rounds
//! the drain snapshot says were fused, or the binary exits non-zero.
//!
//! The main sweep runs with the default reactor pool (`min(cores, 4)`
//! event-loop threads); two variant row sets at 256/1024 sessions pin the
//! pool to R=1 and R=4 so the multi-reactor speedup is recorded in the
//! same file, and the binary fails if the R=4 row at 256 sessions falls
//! more than 10% below R=1 (skipped with a notice on 1-core hosts, where
//! extra reactors have no core to run on). Channel sends into the shard
//! mailboxes are metered per row: with the burst handoff a whole
//! `FeedBatch` frame costs one send, so sends per 1k readings must stay
//! at or below `2 x shards` or the binary exits non-zero.
//!
//! ```text
//! cargo run -p avoc-bench --release --bin bench_serve -- \
//!     [--quick] [--out PATH] [--reactors N]
//! ```

use avoc_core::ModuleId;
use avoc_net::{BatchReading, Message, SpecSource};
use avoc_serve::{
    CountersSnapshot, ServeClient, ServeConfig, SpecRegistry, TcpServer, VoterService,
};
use avoc_vdx::VdxSpec;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Counts every heap allocation into a per-thread ledger so each client
/// thread can meter its own feed path without seeing its neighbours'
/// traffic. Lives in the binary: the workspace libraries forbid `unsafe`,
/// and only the measurement harness needs an allocator hook.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    // try_with: allocations during TLS teardown must not panic the hook.
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn tl_allocations() -> u64 {
    TL_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Modules per session: every round needs all four before it fuses.
const MODULES: u32 = 4;
/// Rounds shipped per `send_batch` call during the measured phase.
const CHUNK_ROUNDS: u64 = 128;
/// Warm-up chunks per session: scratch buffers, session history and the
/// socket path all reach steady-state capacity before the meter starts.
const WARMUP_CHUNKS: u64 = 2;

/// What one client thread saw during its measured phase.
struct ClientNumbers {
    readings: u64,
    feed_allocations: u64,
    writes: u64,
    frames_sent: u64,
    bytes_sent: u64,
}

/// Builds the chunk's readings in place — no allocation once `buf` holds
/// `CHUNK_ROUNDS * MODULES` entries — ships them, and drains the verdicts.
/// Only the build-and-send window is charged to `feed_allocations`.
fn run_chunk(
    client: &mut ServeClient,
    session: u64,
    buf: &mut [BatchReading],
    first_round: u64,
    feed_allocations: &mut u64,
) {
    let before = tl_allocations();
    for (i, slot) in buf.iter_mut().enumerate() {
        let round = first_round + i as u64 / MODULES as u64;
        let module = (i % MODULES as usize) as u32;
        slot.module = ModuleId::new(module);
        slot.round = round;
        slot.value = 20.0 + 0.05 * module as f64 + 0.001 * (round % 64) as f64;
    }
    client.send_batch(session, buf).expect("send_batch");
    *feed_allocations += tl_allocations() - before;

    let mut verdicts = 0;
    while verdicts < CHUNK_ROUNDS {
        match client.recv().expect("recv") {
            Message::SessionResult { .. } => verdicts += 1,
            Message::Error { message, .. } => panic!("daemon error: {message}"),
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

fn client_thread(
    addr: std::net::SocketAddr,
    session: u64,
    chunks: u64,
    start: &Barrier,
) -> ClientNumbers {
    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .open_session(session, MODULES, SpecSource::Named("avoc".into()))
        .expect("open_session");
    let mut buf = vec![
        BatchReading {
            module: ModuleId::new(0),
            round: 0,
            value: 0.0,
        };
        (CHUNK_ROUNDS * MODULES as u64) as usize
    ];

    let mut warm_sink = 0u64;
    for c in 0..WARMUP_CHUNKS {
        run_chunk(
            &mut client,
            session,
            &mut buf,
            c * CHUNK_ROUNDS,
            &mut warm_sink,
        );
    }
    let warm_stats = client.io_stats();

    start.wait();
    let mut feed_allocations = 0u64;
    let mut readings = 0u64;
    for c in WARMUP_CHUNKS..WARMUP_CHUNKS + chunks {
        run_chunk(
            &mut client,
            session,
            &mut buf,
            c * CHUNK_ROUNDS,
            &mut feed_allocations,
        );
        readings += CHUNK_ROUNDS * MODULES as u64;
    }
    let stats = client.io_stats();
    client.close_session(session).expect("close_session");
    ClientNumbers {
        readings,
        feed_allocations,
        writes: stats.writes - warm_stats.writes,
        frames_sent: stats.frames_sent - warm_stats.frames_sent,
        bytes_sent: stats.bytes_sent - warm_stats.bytes_sent,
    }
}

struct RunNumbers {
    readings: u64,
    elapsed_secs: f64,
    feed_allocations: u64,
    client_writes: u64,
    client_frames: u64,
    client_bytes: u64,
    /// Daemon threads (`avoc-`-named) seen mid-replay — the number that
    /// must not move with the session count.
    data_plane_threads: u64,
    /// Open FDs of the whole process mid-replay, with every client
    /// connected: roughly two sockets per session (client + accepted end)
    /// over the baseline. The column that *does* scale with sessions.
    peak_fds: u64,
    snapshot: CountersSnapshot,
    /// Tenants seen on the end-of-run scrape (one
    /// `avoc_session_fuse_latency_ns` series each).
    scrape_sessions: u64,
    /// Sum of those series' counts — must equal `snapshot.rounds_fused`.
    scrape_fuse_count: u64,
    /// The global `avoc_fuse_latency_ns` histogram exactly as the live
    /// scrape rendered it (the schema shared with `BENCH_fusion.json`).
    fuse_latency_json: String,
    /// Event-loop threads this run's daemon actually spawned.
    reactors: u64,
    /// Shard workers this run's daemon spawned.
    shards: u64,
    /// Every reading fed, warm-up included — the denominator for the
    /// handoff-sends rate, whose counter also saw the warm-up bursts.
    total_fed: u64,
    /// Readiness backend the pool selected (`"epoll"` / `"poll"`).
    backend: &'static str,
    /// How the pool distributed accepts
    /// (`"reuseport"` / `"handoff"` / `"single"`).
    accept_mode: &'static str,
}

/// Daemon threads alive right now, recognised by the `avoc-` name prefix
/// every worker this workspace spawns carries (shards, reactor, admin,
/// compactor). The bench's own client threads are unnamed and don't match.
fn data_plane_threads() -> u64 {
    std::fs::read_dir("/proc/self/task")
        .expect("/proc/self/task readable")
        .filter(|entry| {
            let Ok(entry) = entry else { return false };
            std::fs::read_to_string(entry.path().join("comm"))
                .map(|comm| comm.starts_with("avoc-"))
                .unwrap_or(false)
        })
        .count() as u64
}

/// Open FDs of this process right now.
fn open_fds() -> u64 {
    std::fs::read_dir("/proc/self/fd")
        .expect("/proc/self/fd readable")
        .count() as u64
}

/// What the live `/metrics?format=json` scrape reported about fuse latency.
fn scrape_fuse_histograms(admin: std::net::SocketAddr) -> (u64, u64, String) {
    let (status, body) =
        avoc_obs::http::get(&admin.to_string(), "/metrics?format=json").expect("scrape metrics");
    assert_eq!(status, 200, "metrics scrape failed: {body}");
    let doc: serde_json::Value = serde_json::from_str(&body).expect("scrape is valid JSON");
    let hists = doc["histograms"]
        .as_object()
        .expect("scrape has a histograms object");
    let mut tenants = 0u64;
    let mut count_sum = 0u64;
    let mut global = String::from("{}");
    for (key, value) in hists {
        if key.starts_with("avoc_session_fuse_latency_ns{") {
            tenants += 1;
            count_sum += value["count"].as_u64().unwrap_or(0);
        } else if key == "avoc_fuse_latency_ns" {
            global = value.to_string();
        }
    }
    (tenants, count_sum, global)
}

/// Drives `sessions` client threads for `chunks` measured chunks each,
/// with `reactors` event-loop threads (`0` = the daemon default,
/// `min(cores, 4)`).
fn run_sessions(sessions: u64, chunks: u64, reactors: usize) -> RunNumbers {
    let mut registry = SpecRegistry::new();
    registry.insert("avoc", VdxSpec::avoc());
    // Idle eviction is off: with 16 ping-pong clients on a few shards a
    // session legitimately sits quiet for thousands of shard wakeups while
    // its client drains verdicts, and the bench measures the wire path,
    // not the reaper. Observability is fully on — admin endpoint bound,
    // tracing at 1-in-64 — so the numbers describe the instrumented daemon.
    let service = Arc::new(VoterService::start(
        ServeConfig {
            idle_ticks: u64::MAX,
            reactors,
            admin_addr: Some("127.0.0.1:0".into()),
            trace_sample: 64,
            // The wide rows run up to 1 024 client *threads* against however
            // few cores the host has; a client can legitimately go seconds
            // without being scheduled to read its socket. The default 5 s
            // wedge deadline is tuned for interactive tenants, not for an
            // oversubscribed load harness — raise it so the reactor doesn't
            // cut off clients the OS scheduler starved.
            write_deadline: std::time::Duration::from_secs(60),
            ..ServeConfig::default()
        },
        Arc::new(registry),
    ));
    let server = TcpServer::start("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    let addr = server.local_addr();
    let admin = server.admin_addr().expect("admin endpoint is configured");

    let start = Barrier::new(sessions as usize + 1);
    let (clients, elapsed, data_plane_threads, peak_fds) = std::thread::scope(|scope| {
        let start = &start;
        let handles: Vec<_> = (0..sessions)
            .map(|id| scope.spawn(move || client_thread(addr, id, chunks, start)))
            .collect();
        start.wait();
        let t = Instant::now();
        // Mid-replay resource census: every client connected before the
        // barrier, so this snapshot sees the daemon at full fan-in.
        let data_plane_threads = data_plane_threads();
        let peak_fds = open_fds();
        // Live mid-replay scrape: the endpoint must answer while every
        // session is under load, and the fuse counter must already move.
        let (status, _) = avoc_obs::http::get(&admin.to_string(), "/healthz").expect("healthz");
        assert_eq!(status, 200, "daemon unhealthy mid-replay");
        let (status, text) =
            avoc_obs::http::get(&admin.to_string(), "/metrics").expect("scrape metrics");
        assert_eq!(status, 200);
        assert!(
            text.contains("avoc_rounds_fused_total"),
            "mid-replay scrape is missing the fuse counter"
        );
        let clients: Vec<ClientNumbers> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        (clients, t.elapsed(), data_plane_threads, peak_fds)
    });
    // All verdicts are in, so every tenant's histogram holds its final
    // count; scrape before shutdown while the endpoint is still live.
    let (scrape_sessions, scrape_fuse_count, fuse_latency_json) = scrape_fuse_histograms(admin);
    let run_reactors = server.reactor_count() as u64;
    let run_shards = service.shards() as u64;
    let backend = server.reactor_backend();
    let accept_mode = server.accept_mode();
    let snapshot = server.shutdown();

    RunNumbers {
        readings: clients.iter().map(|c| c.readings).sum(),
        elapsed_secs: elapsed.as_secs_f64(),
        feed_allocations: clients.iter().map(|c| c.feed_allocations).sum(),
        client_writes: clients.iter().map(|c| c.writes).sum(),
        client_frames: clients.iter().map(|c| c.frames_sent).sum(),
        client_bytes: clients.iter().map(|c| c.bytes_sent).sum(),
        data_plane_threads,
        peak_fds,
        snapshot,
        scrape_sessions,
        scrape_fuse_count,
        fuse_latency_json,
        reactors: run_reactors,
        shards: run_shards,
        total_fed: sessions * (WARMUP_CHUNKS + chunks) * CHUNK_ROUNDS * u64::from(MODULES),
        backend,
        accept_mode,
    }
}

/// One write per reading frame on the way in, one per result frame on the
/// way out: the syscall bill of the wire path this benchmark replaced.
fn baseline_syscalls_per_1k() -> f64 {
    (1.0 + 1.0 / MODULES as f64) * 1000.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_serve.json");
    let mut reactors_override: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out takes a path").clone();
            }
            "--reactors" => {
                i += 1;
                reactors_override = Some(
                    args.get(i)
                        .expect("--reactors takes a count")
                        .parse()
                        .expect("--reactors takes a number"),
                );
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let base_chunks: u64 = if quick { 12 } else { 64 };
    let baseline = baseline_syscalls_per_1k();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // The main sweep runs at the default (or overridden) reactor count;
    // with no override, variant rows at 256/1024 sessions pin R=1 and R=4
    // so the file records the multi-reactor speedup on this host.
    let sweep_r = reactors_override.unwrap_or(0);
    let mut plan: Vec<(u64, usize)> = [1u64, 4, 16, 64, 256, 1024]
        .iter()
        .map(|&s| (s, sweep_r))
        .collect();
    if reactors_override.is_none() {
        for r in [1usize, 4] {
            for s in [256u64, 1024] {
                plan.push((s, r));
            }
        }
    }

    let mut runs = Vec::new();
    let mut regressed = false;
    // (sessions, requested R, actual R, readings/s, census) per row — for
    // the cross-row scaling, census and reactor-speedup gates.
    struct RowStats {
        sessions: u64,
        requested_r: usize,
        reactors: u64,
        rps: f64,
        threads: u64,
    }
    let mut stats: Vec<RowStats> = Vec::new();
    let mut pool_backend = "";
    let mut pool_accept_mode = "";
    for (sessions, row_r) in plan {
        // Wide rows shrink per-session depth so total work stays bounded:
        // above 16 sessions the product `sessions * chunks` is held near
        // the 16-session row's (floored at two measured chunks each).
        let chunks = if sessions <= 16 {
            base_chunks
        } else {
            (base_chunks * 16 / sessions).max(2)
        };
        eprintln!(
            "driving {sessions} session(s) x {} rounds (reactors={row_r}{}) ...",
            chunks * CHUNK_ROUNDS,
            if row_r == 0 { " = default" } else { "" },
        );
        let run = run_sessions(sessions, chunks, row_r);
        let rps = run.readings as f64 / run.elapsed_secs;
        let allocs_per_reading = run.feed_allocations as f64 / run.readings as f64;
        let syscalls = run.client_writes + run.snapshot.writer_flushes;
        let syscalls_per_1k = syscalls as f64 * 1000.0 / run.readings as f64;
        let coalescing = baseline / syscalls_per_1k;
        // Burst handoff: a whole FeedBatch is one channel send, so the rate
        // is bounded by frames, not readings — at 512-reading chunks it sits
        // near 2 sends per 1k readings regardless of shard count.
        let hs_per_1k = run.snapshot.shard_handoff_sends as f64 * 1000.0 / run.total_fed as f64;
        eprintln!(
            "  {rps:.0} readings/s, {allocs_per_reading} alloc/reading on the feed path, \
             {syscalls_per_1k:.1} syscalls/1k readings ({coalescing:.1}x under baseline), \
             {hs_per_1k:.2} shard handoff sends/1k readings, \
             {threads} data-plane threads ({reactors} reactor(s), {mode}), {fds} peak fds",
            threads = run.data_plane_threads,
            reactors = run.reactors,
            mode = run.accept_mode,
            fds = run.peak_fds,
        );
        // The config block describes the default-configuration pool: the
        // main sweep runs first, so keep the first row's mode and ignore
        // the pinned R=1/R=4 variant rows that follow.
        if pool_backend.is_empty() {
            pool_backend = run.backend;
            pool_accept_mode = run.accept_mode;
        }
        stats.push(RowStats {
            sessions,
            requested_r: row_r,
            reactors: run.reactors,
            rps,
            threads: run.data_plane_threads,
        });
        if allocs_per_reading > 0.0 {
            eprintln!("REGRESSION: client feed path allocated in steady state");
            regressed = true;
        }
        if hs_per_1k > 2.0 * run.shards as f64 {
            eprintln!(
                "REGRESSION: {hs_per_1k:.2} shard handoff sends per 1k readings exceeds \
                 2x the shard count ({}) — batched handoff has degraded toward per-reading sends",
                run.shards
            );
            regressed = true;
        }
        if run.scrape_sessions != sessions || run.scrape_fuse_count != run.snapshot.rounds_fused {
            eprintln!(
                "REGRESSION: live scrape saw {} tenant histogram(s) summing to {} rounds, \
                 daemon fused {} across {sessions} session(s)",
                run.scrape_sessions, run.scrape_fuse_count, run.snapshot.rounds_fused
            );
            regressed = true;
        }
        runs.push(format!(
            "    {{\n      \"sessions\": {sessions},\n      \"reactors\": {reactors},\n      \
             \"readings\": {readings},\n      \
             \"readings_per_sec\": {rps:.1},\n      \"feed_allocations\": {fa},\n      \
             \"allocs_per_reading\": {apr},\n      \"client_writes\": {cw},\n      \
             \"client_frames_sent\": {cf},\n      \"client_bytes_sent\": {cb},\n      \
             \"server_writer_flushes\": {wf},\n      \"server_frames_sent\": {sf},\n      \
             \"server_result_batches\": {rb},\n      \"server_bytes_sent\": {sb},\n      \
             \"results_dropped\": {rd},\n      \"syscalls_per_1k_readings\": {spk:.1},\n      \
             \"coalescing_vs_baseline\": {coal:.1},\n      \
             \"handoff_sends_per_1k_readings\": {hspk:.2},\n      \
             \"data_plane_threads\": {dpt},\n      \"peak_fds\": {pfd},\n      \
             \"scrape_sessions\": {ss},\n      \"scrape_fuse_count\": {sfc},\n      \
             \"fuse_latency_ns\": {flj}\n    }}",
            reactors = run.reactors,
            readings = run.readings,
            fa = run.feed_allocations,
            apr = allocs_per_reading,
            cw = run.client_writes,
            cf = run.client_frames,
            cb = run.client_bytes,
            wf = run.snapshot.writer_flushes,
            sf = run.snapshot.frames_sent,
            rb = run.snapshot.result_batches,
            sb = run.snapshot.bytes_sent,
            rd = run.snapshot.results_dropped,
            spk = syscalls_per_1k,
            coal = coalescing,
            hspk = hs_per_1k,
            dpt = run.data_plane_threads,
            pfd = run.peak_fds,
            ss = run.scrape_sessions,
            sfc = run.scrape_fuse_count,
            flj = run.fuse_latency_json,
        ));
    }

    // Scaling gates, machine-independent by construction. Under the old
    // thread-per-connection front-end 256 tenants meant 512 daemon threads
    // thrashing the scheduler; the reactor must hold 256-session throughput
    // at or above the 16-session row, and its thread census must not move
    // between any two rows at the same reactor count.
    let sweep_rps_at = |n: u64| {
        stats
            .iter()
            .find(|r| r.sessions == n && r.requested_r == sweep_r)
            .map(|r| r.rps)
            .expect("row was measured")
    };
    // Both rows sit at the same saturation point, so a strict comparison
    // would flap on measurement noise — run-to-run spread between rows on
    // an oversubscribed CI core is ±15%. A thread-per-connection collapse
    // (512 threads thrashing one scheduler) loses integer factors, which
    // a 25% margin still catches while staying quiet on noise.
    if sweep_rps_at(256) < sweep_rps_at(16) * 0.75 {
        eprintln!(
            "REGRESSION: 256 sessions fused {:.0} readings/s, more than 25% below the \
             16-session {:.0} — throughput must not degrade with fan-in",
            sweep_rps_at(256),
            sweep_rps_at(16)
        );
        regressed = true;
    }
    // Census: shards + R exactly, so rows differing only in session count
    // must agree thread-for-thread, and an extra reactor must cost exactly
    // one extra thread.
    let mut reactor_counts: Vec<u64> = stats.iter().map(|r| r.reactors).collect();
    reactor_counts.sort_unstable();
    reactor_counts.dedup();
    for rc in &reactor_counts {
        let census: Vec<u64> = stats
            .iter()
            .filter(|r| r.reactors == *rc)
            .map(|r| r.threads)
            .collect();
        if census.windows(2).any(|w| w[0] != w[1]) {
            eprintln!(
                "REGRESSION: data-plane thread count moved with the session count \
                 at {rc} reactor(s): {census:?}"
            );
            regressed = true;
        }
    }
    if let [r_lo, r_hi] = reactor_counts[..] {
        let threads_at = |rc: u64| stats.iter().find(|r| r.reactors == rc).map(|r| r.threads);
        if let (Some(t_lo), Some(t_hi)) = (threads_at(r_lo), threads_at(r_hi)) {
            if t_hi != t_lo + (r_hi - r_lo) {
                eprintln!(
                    "REGRESSION: going from {r_lo} to {r_hi} reactor(s) moved the census \
                     from {t_lo} to {t_hi} threads — each reactor must cost exactly one"
                );
                regressed = true;
            }
        }
    }
    // Multi-reactor speedup gate: with both R=1 and R=4 rows measured, the
    // pool must not make fan-in *worse*. On a multicore host R=4 should win
    // outright (the BENCH file records by how much); the hard gate only
    // demands it stays within 10% of R=1, so scheduler noise on a busy
    // 2-core runner doesn't flap the build. One core can't host parallel
    // reactors at all — skip with a notice rather than fail.
    let variant_rps = |sessions: u64, r: usize| {
        stats
            .iter()
            .find(|row| row.sessions == sessions && row.requested_r == r)
            .map(|row| row.rps)
    };
    if let (Some(r1), Some(r4)) = (variant_rps(256, 1), variant_rps(256, 4)) {
        if cores == 1 {
            eprintln!(
                "notice: single-core host — skipping the R=4 >= 0.9x R=1 throughput gate \
                 (measured R=1 {r1:.0} vs R=4 {r4:.0} readings/s at 256 sessions)"
            );
        } else if r4 < r1 * 0.9 {
            eprintln!(
                "REGRESSION: 4 reactors fused {r4:.0} readings/s at 256 sessions, more than \
                 10% below the single-reactor {r1:.0} on a {cores}-core host"
            );
            regressed = true;
        }
    }

    let config_reactors = stats.first().map_or(0, |r| r.reactors);
    let json = format!(
        "{{\n  \"config\": {{\"base_chunks\": {base_chunks}, \"modules\": {MODULES}, \
         \"chunk_rounds\": {CHUNK_ROUNDS}, \"quick\": {quick}, \"cores\": {cores}, \
         \"reactors\": {config_reactors}, \"backend\": \"{pool_backend}\", \
         \"accept_mode\": \"{pool_accept_mode}\"}},\n  \
         \"baseline\": {{\n    \"syscalls_per_1k_readings\": {baseline:.1},\n    \
         \"note\": \"analytic per-frame wire path: one write(2) per reading frame plus one \
         per result frame at {MODULES} modules/round\"\n  }},\n  \"runs\": [\n{runs}\n  ]\n}}\n",
        runs = runs.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    print!("{json}");
    eprintln!("-> {out}");
    if regressed {
        std::process::exit(1);
    }
}
