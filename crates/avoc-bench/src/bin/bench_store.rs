//! The tiered-store benchmark behind `BENCH_store.json`: cold-resuming a
//! roster of sessions from columnar segments versus replaying their WALs.
//!
//! The setup writes an identical reference roster twice — per-session
//! JSON-lines WALs with one commit marker per round, exactly what a
//! persistent daemon leaves behind — then folds one copy into segments
//! (retiring its WALs) and leaves the other on the WAL tier. The measured
//! phase cold-resumes every session from each tier and reports:
//!
//! * **wal_replay_ms / segment_load_ms** — total resume wall time per tier
//!   (the same split the daemon's `avoc_wal_replay_ns_total` /
//!   `avoc_segment_load_ns_total` counters attribute live resumes to);
//! * **allocations per resumed session** on each path, through a counting
//!   global allocator;
//! * **bytes read per tier** — WAL bytes replayed versus segment footer +
//!   block bytes actually fetched.
//!
//! Both paths must reconstruct bit-identical per-module state (the binary
//! exits non-zero otherwise), and the segment path must be faster than the
//! WAL path — the number this subsystem is accountable for.
//!
//! ```text
//! cargo run -p avoc-bench --release --bin bench_store -- [--quick] [--out PATH]
//! ```

use avoc_core::history::HistoryStore;
use avoc_core::ModuleId;
use avoc_store::{session_wal_path, Durability, FileHistory, TieredStore, VerdictRecord};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Counts every heap allocation. Lives in the binary: the workspace
/// libraries forbid `unsafe`, and only the measurement harness needs an
/// allocator hook.
struct CountingAlloc;

static ALLOCATIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn allocations() -> u64 {
    ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed)
}

fn count_one() {
    ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Modules per session in the reference roster.
const MODULES: u32 = 8;

/// Writes one session's WAL the way a checkpoint-per-round daemon does:
/// a batched set per round, a verdict marker, a commit marker.
fn write_session(dir: &Path, session: u64, rounds: u64) {
    let mut wal = FileHistory::open_with(session_wal_path(dir, session), Durability::Flush)
        .expect("open session WAL");
    let mut batch = Vec::with_capacity(MODULES as usize);
    for r in 0..rounds {
        batch.clear();
        for m in 0..MODULES {
            // Deterministic per-module drift; the last module trends down
            // so the direction column has movement in both directions.
            let v = if m + 1 == MODULES {
                (1.0 - r as f64 / rounds as f64).clamp(0.0, 1.0)
            } else {
                (0.5 + ((r * 31 + u64::from(m) * 7) % 97) as f64 / 200.0).clamp(0.0, 1.0)
            };
            batch.push((ModuleId::new(m), v));
        }
        wal.set_batch(&batch);
        wal.append_markers(
            &[VerdictRecord {
                round: r,
                value: Some(18.0 + (r % 40) as f64 * 0.125),
                voted: true,
            }],
            Some(r),
        );
    }
}

fn build_roster(dir: &Path, sessions: u64, rounds: u64) {
    std::fs::create_dir_all(dir).expect("create roster dir");
    for s in 0..sessions {
        write_session(dir, s, rounds);
    }
}

fn dir_bytes(dir: &Path, ext: &str) -> u64 {
    std::fs::read_dir(dir)
        .expect("roster dir")
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == ext))
        .map(|e| e.metadata().map_or(0, |m| m.len()))
        .sum()
}

/// Latest per-module state as bit patterns, for the identity gate.
type Latest = Vec<(u32, u64)>;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_store.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out takes a path").clone();
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let sessions: u64 = if quick { 8 } else { 32 };
    let rounds: u64 = if quick { 256 } else { 2048 };

    let base = std::env::temp_dir().join(format!("avoc-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let wal_dir: PathBuf = base.join("wal-tier");
    let seg_dir: PathBuf = base.join("segment-tier");

    eprintln!("writing {sessions} session WALs x {rounds} rounds, twice ...");
    build_roster(&wal_dir, sessions, rounds);
    build_roster(&seg_dir, sessions, rounds);
    let wal_bytes = dir_bytes(&wal_dir, "wal");

    // Fold one copy into segments; its WALs retire.
    let fold_started = Instant::now();
    let tier = TieredStore::open(&seg_dir).expect("open segment tier");
    let report = tier.compact().expect("compact roster");
    let compaction_ms = fold_started.elapsed().as_secs_f64() * 1e3;
    drop(tier);
    assert_eq!(report.wals_retired as u64, sessions, "all WALs must fold");
    let seg_bytes = dir_bytes(&seg_dir, "avseg");

    // Measured phase 1: WAL replay — open + snapshot per session, cold.
    let allocs_before = allocations();
    let replay_started = Instant::now();
    let mut wal_latest: Vec<Latest> = Vec::with_capacity(sessions as usize);
    for s in 0..sessions {
        let wal = FileHistory::open_with(session_wal_path(&wal_dir, s), Durability::Flush)
            .expect("replay WAL");
        wal_latest.push(
            wal.snapshot()
                .into_iter()
                .map(|(m, v)| (m.index(), v.to_bits()))
                .collect(),
        );
    }
    let wal_replay_ms = replay_started.elapsed().as_secs_f64() * 1e3;
    let wal_allocs = allocations() - allocs_before;

    // Measured phase 2: segment cold-resume — one tier open (manifest +
    // footers), then a targeted summary read per session.
    let allocs_before = allocations();
    let segment_started = Instant::now();
    let tier = TieredStore::open(&seg_dir).expect("reopen segment tier");
    let mut seg_latest: Vec<Latest> = Vec::with_capacity(sessions as usize);
    for s in 0..sessions {
        let summary = tier
            .session_summary(s)
            .expect("segment summary")
            .expect("session folded");
        seg_latest.push(
            summary
                .latest
                .into_iter()
                .map(|(m, v)| (m.index(), v.to_bits()))
                .collect(),
        );
    }
    let segment_load_ms = segment_started.elapsed().as_secs_f64() * 1e3;
    let seg_allocs = allocations() - allocs_before;

    let mut failed = false;
    if wal_latest != seg_latest {
        eprintln!("REGRESSION: segment resume state differs from WAL replay state");
        failed = true;
    }
    if segment_load_ms >= wal_replay_ms {
        eprintln!(
            "REGRESSION: segment cold-resume ({segment_load_ms:.2} ms) is not faster than \
             WAL replay ({wal_replay_ms:.2} ms)"
        );
        failed = true;
    }

    let speedup = wal_replay_ms / segment_load_ms;
    eprintln!(
        "wal replay {wal_replay_ms:.2} ms vs segment load {segment_load_ms:.2} ms \
         ({speedup:.1}x), {wal_bytes} WAL bytes -> {seg_bytes} segment bytes"
    );

    let json = format!(
        "{{\n  \"config\": {{\"sessions\": {sessions}, \"rounds\": {rounds}, \
         \"modules\": {MODULES}, \"quick\": {quick}}},\n  \
         \"roster\": {{\n    \"wal_bytes\": {wal_bytes},\n    \"segment_bytes\": {seg_bytes},\n    \
         \"compression_vs_wal\": {compression:.2},\n    \
         \"history_rows_folded\": {hist_rows},\n    \"verdict_rows_folded\": {verd_rows},\n    \
         \"segments_written\": {segs},\n    \"compaction_ms\": {compaction_ms:.2}\n  }},\n  \
         \"cold_resume\": {{\n    \"wal_replay_ms\": {wal_replay_ms:.3},\n    \
         \"segment_load_ms\": {segment_load_ms:.3},\n    \"speedup\": {speedup:.2},\n    \
         \"wal_allocations\": {wal_allocs},\n    \"segment_allocations\": {seg_allocs},\n    \
         \"wal_allocs_per_session\": {wal_aps:.0},\n    \
         \"segment_allocs_per_session\": {seg_aps:.0}\n  }},\n  \
         \"identical_state\": {identical}\n}}\n",
        compression = wal_bytes as f64 / seg_bytes as f64,
        hist_rows = report.history_rows,
        verd_rows = report.verdict_rows,
        segs = report.segments_written,
        wal_aps = wal_allocs as f64 / sessions as f64,
        seg_aps = seg_allocs as f64 / sessions as f64,
        identical = wal_latest == seg_latest,
    );
    std::fs::write(&out, &json).expect("write BENCH_store.json");
    print!("{json}");
    eprintln!("-> {out}");
    let _ = std::fs::remove_dir_all(&base);
    if failed {
        std::process::exit(1);
    }
}
