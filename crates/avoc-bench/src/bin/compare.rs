//! The algorithm-comparison application (the paper's Fig. 5 shows an
//! interactive GUI; this is its terminal counterpart): run any subset of
//! algorithms side by side on a chosen scenario and inspect per-round
//! outputs plus a summary.
//!
//! ```text
//! cargo run -p avoc-bench --release --bin compare -- \
//!     [--scenario light|light-faulty|ble] [--rounds N] [--seed S] \
//!     [--head K] [algo ...]
//! ```

use avoc_bench::{run_voter, Fig6Config};
use avoc_metrics::{Summary, Table};
use avoc_sim::{BleScenario, RecordedTrace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario = "light-faulty".to_owned();
    let mut rounds = 500usize;
    let mut seed = 7u64;
    let mut head = 10usize;
    let mut algos: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scenario" => {
                i += 1;
                scenario = args[i].clone();
            }
            "--rounds" => {
                i += 1;
                rounds = args[i].parse().expect("--rounds takes a number");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes a number");
            }
            "--head" => {
                i += 1;
                head = args[i].parse().expect("--head takes a number");
            }
            other => algos.push(other.to_owned()),
        }
        i += 1;
    }
    if algos.is_empty() {
        algos = vec![
            "avg".into(),
            "standard".into(),
            "me".into(),
            "hybrid".into(),
            "clustering".into(),
            "avoc".into(),
        ];
    }

    let cfg = Fig6Config {
        seed,
        rounds,
        ..Fig6Config::default()
    };
    let trace: RecordedTrace = match scenario.as_str() {
        "light" => cfg.clean_trace(),
        "light-faulty" => cfg.faulty_trace(),
        "ble" => BleScenario::paper_default(seed).generate().stack_a,
        other => {
            eprintln!("unknown scenario `{other}`; use light|light-faulty|ble");
            std::process::exit(2);
        }
    };

    let runs: Vec<(String, Vec<Option<f64>>)> = algos
        .iter()
        .map(|name| {
            let mut voter = cfg.voter(name);
            (name.clone(), run_voter(voter.as_mut(), &trace))
        })
        .collect();

    // Head table: first K rounds side by side.
    let mut headers = vec!["round".to_owned()];
    headers.extend(runs.iter().map(|(n, _)| n.clone()));
    let mut t = Table::new(headers);
    for r in 0..head.min(trace.rounds()) {
        let mut row = vec![r.to_string()];
        for (_, series) in &runs {
            row.push(series[r].map_or("-".to_owned(), |v| format!("{v:.3}")));
        }
        t.row(row);
    }
    println!("== {scenario}: first {head} fused outputs ==");
    println!("{t}");

    // Summary table.
    let mut s = Table::new(vec![
        "algorithm".into(),
        "mean".into(),
        "sd".into(),
        "min".into(),
        "max".into(),
    ]);
    for (name, series) in &runs {
        match Summary::of(series) {
            Some(sum) => {
                s.row(vec![
                    name.clone(),
                    format!("{:.3}", sum.mean),
                    format!("{:.3}", sum.std_dev),
                    format!("{:.3}", sum.min),
                    format!("{:.3}", sum.max),
                ]);
            }
            None => {
                s.row(vec![
                    name.clone(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    println!("== summary over {} rounds ==", trace.rounds());
    println!("{s}");
}
