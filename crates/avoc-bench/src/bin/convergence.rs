//! The headline claim: "this method boosts the convergence of the
//! measurements by 4×" — AVOC's clustering bootstrap versus the
//! state-of-the-art history voters, across seeds.
//!
//! ```text
//! cargo run -p avoc-bench --release --bin convergence -- [--seeds N] [--rounds R]
//! ```

use avoc_bench::{run_voter, Fig6Config};
use avoc_metrics::{ConvergenceReport, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds = 5usize;
    let mut rounds = 2_000usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seeds = args[i].parse().expect("--seeds takes a number");
            }
            "--rounds" => {
                i += 1;
                rounds = args[i].parse().expect("--rounds takes a number");
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let epsilon = 0.15;
    let sustain = 8;
    let window = 8;
    let algorithms = ["standard", "me", "sdt", "hybrid", "avoc"];

    // rounds-to-converge per algorithm per seed (cost = index + 1).
    let mut costs: Vec<Vec<Option<usize>>> = vec![Vec::new(); algorithms.len()];
    for seed in 0..seeds as u64 {
        let cfg = Fig6Config {
            seed: 1000 + seed,
            rounds,
            ..Fig6Config::default()
        };
        let clean = cfg.clean_trace();
        let faulty = cfg.faulty_trace();
        for (ai, algo) in algorithms.iter().enumerate() {
            let mut vc = cfg.voter(algo);
            let mut vf = cfg.voter(algo);
            let clean_out = run_voter(vc.as_mut(), &clean);
            let faulty_out = run_voter(vf.as_mut(), &faulty);
            let rep = ConvergenceReport::compare_smoothed(
                *algo,
                &clean_out,
                &faulty_out,
                epsilon,
                sustain,
                window,
            );
            costs[ai].push(rep.rounds_to_converge.map(|r| r + 1));
        }
    }

    let mut t = Table::new(vec![
        "algorithm".into(),
        "median rounds".into(),
        "mean rounds".into(),
        "converged runs".into(),
        "AVOC boost (median)".into(),
    ]);
    let median = |xs: &mut Vec<usize>| -> Option<f64> {
        if xs.is_empty() {
            return None;
        }
        xs.sort_unstable();
        Some(if xs.len() % 2 == 1 {
            xs[xs.len() / 2] as f64
        } else {
            (xs[xs.len() / 2 - 1] + xs[xs.len() / 2]) as f64 / 2.0
        })
    };

    let avoc_idx = algorithms.iter().position(|a| *a == "avoc").expect("avoc");
    let mut avoc_conv: Vec<usize> = costs[avoc_idx].iter().flatten().copied().collect();
    let avoc_median = median(&mut avoc_conv).unwrap_or(f64::NAN);

    for (ai, algo) in algorithms.iter().enumerate() {
        let mut conv: Vec<usize> = costs[ai].iter().flatten().copied().collect();
        let converged = conv.len();
        let mean = conv.iter().sum::<usize>() as f64 / converged.max(1) as f64;
        let med = median(&mut conv);
        let boost = med.map_or("-".to_owned(), |m| format!("{:.1}x", m / avoc_median));
        t.row(vec![
            (*algo).into(),
            med.map_or("never".into(), |m| format!("{m}")),
            if converged > 0 {
                format!("{mean:.1}")
            } else {
                "never".into()
            },
            format!("{converged}/{seeds}"),
            boost,
        ]);
    }
    println!(
        "== AVOC convergence boost over {seeds} seeds × {rounds} rounds (ε = {epsilon} klm) =="
    );
    println!("{t}");
    println!(
        "(the paper reports AVOC boosting convergence by 4×; the boost column\n reports median rounds-to-converge relative to AVOC's)"
    );
}
