//! Writes the reference datasets to CSV — the reproducibility artefact the
//! paper promises to release ("the resulting data, which we plan to
//! publicly release").
//!
//! ```text
//! cargo run -p avoc-bench --release --bin datasets -- [out_dir] [--seed S]
//! ```
//!
//! Produces:
//! * `light_reference.csv` — UC-1, 5 sensors × 10 000 rounds (Fig. 6-a)
//! * `light_faulty_e4.csv` — UC-1 with the +6 klm injection (Fig. 6-c)
//! * `ble_stack_a.csv` / `ble_stack_b.csv` — UC-2, 9 beacons × 297 rounds
//! * `ble_positions.csv` — the robot's ground-truth position per round

use avoc_bench::Fig6Config;
use avoc_sim::BleScenario;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("datasets");
    let mut seed: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = Some(args[i].parse().expect("--seed takes a number"));
            }
            other => out_dir = PathBuf::from(other),
        }
        i += 1;
    }
    std::fs::create_dir_all(&out_dir)?;

    let mut cfg = Fig6Config::default();
    if let Some(s) = seed {
        cfg.seed = s;
    }

    let clean = cfg.clean_trace();
    let faulty = cfg.faulty_trace();
    clean.write_csv(BufWriter::new(File::create(
        out_dir.join("light_reference.csv"),
    )?))?;
    faulty.write_csv(BufWriter::new(File::create(
        out_dir.join("light_faulty_e4.csv"),
    )?))?;
    println!(
        "wrote {} ({clean})",
        out_dir.join("light_reference.csv").display()
    );
    println!(
        "wrote {} ({faulty})",
        out_dir.join("light_faulty_e4.csv").display()
    );

    let ble = BleScenario::paper_default(seed.unwrap_or(2022)).generate();
    ble.stack_a.write_csv(BufWriter::new(File::create(
        out_dir.join("ble_stack_a.csv"),
    )?))?;
    ble.stack_b.write_csv(BufWriter::new(File::create(
        out_dir.join("ble_stack_b.csv"),
    )?))?;
    let mut pos = BufWriter::new(File::create(out_dir.join("ble_positions.csv"))?);
    writeln!(pos, "round,position_m,closest_stack")?;
    for (r, p) in ble.positions.iter().enumerate() {
        writeln!(
            pos,
            "{r},{p},{}",
            if ble.stack_a_closer(r) { "A" } else { "B" }
        )?;
    }
    pos.flush()?;
    println!(
        "wrote {} and stack B + positions ({})",
        out_dir.join("ble_stack_a.csv").display(),
        ble.stack_a
    );
    Ok(())
}
