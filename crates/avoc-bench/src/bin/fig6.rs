//! Reproduces Figure 6 of the paper (UC-1: light sensors, error injection).
//!
//! ```text
//! cargo run -p avoc-bench --release --bin fig6 -- [a|b|c|d|e|f|table|all] [--rounds N] [--seed S]
//! ```
//!
//! * `a` — raw reference data (Fig. 6-a)
//! * `b` — voting output of every variant on clean data (Fig. 6-b)
//! * `c` — raw data with the +6 klm fault on E4 (Fig. 6-c)
//! * `d` — voting output under the fault (Fig. 6-d)
//! * `e` — per-algorithm output difference faulty-vs-clean (Fig. 6-e)
//! * `f` — zoom on the first 10 rounds (Fig. 6-f)
//! * `table` — convergence metrics and the AVOC boost ratios (§7 headline)

use avoc_bench::{downsample, run_voter, Fig6Config};
use avoc_metrics::series::max_abs;
use avoc_metrics::{diff_series, AsciiPlot, ConvergenceReport, Summary, Table};
use avoc_sim::RecordedTrace;

const PLOT_W: usize = 100;
const PLOT_H: usize = 16;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_owned();
    let mut cfg = Fig6Config::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rounds" => {
                i += 1;
                cfg.rounds = args[i].parse().expect("--rounds takes a number");
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed takes a number");
            }
            other => which = other.to_owned(),
        }
        i += 1;
    }

    let clean = cfg.clean_trace();
    let faulty = cfg.faulty_trace();

    match which.as_str() {
        "a" => fig_a(&clean),
        "b" => fig_b(&cfg, &clean),
        "c" => fig_a_faulty(&faulty),
        "d" => fig_d(&cfg, &faulty),
        "e" => fig_e(&cfg, &clean, &faulty, None),
        "f" => fig_e(&cfg, &clean, &faulty, Some(10)),
        "table" => table(&cfg, &clean, &faulty),
        "all" => {
            fig_a(&clean);
            fig_b(&cfg, &clean);
            fig_a_faulty(&faulty);
            fig_d(&cfg, &faulty);
            fig_e(&cfg, &clean, &faulty, None);
            fig_e(&cfg, &clean, &faulty, Some(10));
            table(&cfg, &clean, &faulty);
        }
        other => {
            eprintln!("unknown figure `{other}`; use a|b|c|d|e|f|table|all");
            std::process::exit(2);
        }
    }
}

fn sensor_glyph(i: usize) -> char {
    ['1', '2', '3', '4', '5', '6', '7', '8', '9'][i % 9]
}

fn algo_glyph(name: &str) -> char {
    match name {
        "avg" => 'a',
        "stateless" => 'w',
        "standard" => 's',
        "me" => 'm',
        "sdt" => 'd',
        "hybrid" => 'h',
        "clustering" => 'c',
        "avoc" => 'A',
        _ => '?',
    }
}

fn fig_a(clean: &RecordedTrace) {
    let mut plot = AsciiPlot::new(
        "Fig 6-a: raw sensor data (klm; glyph = sensor index)",
        PLOT_W,
        PLOT_H,
    );
    for s in 0..clean.modules().len() {
        plot.series(sensor_glyph(s), downsample(&clean.series(s), PLOT_W));
    }
    print!("{}", plot.render());
    for s in 0..clean.modules().len() {
        let summary = Summary::of(&clean.series(s)).expect("non-empty");
        println!("  {}: {}", clean.modules()[s], summary);
    }
    println!();
}

fn fig_a_faulty(faulty: &RecordedTrace) {
    let mut plot = AsciiPlot::new(
        "Fig 6-c: raw sensor data with E4 faulty (+6 klm)",
        PLOT_W,
        PLOT_H,
    );
    for s in 0..faulty.modules().len() {
        plot.series(sensor_glyph(s), downsample(&faulty.series(s), PLOT_W));
    }
    print!("{}", plot.render());
    println!();
}

/// Runs every roster algorithm over a trace, returning (name, outputs).
fn outputs_on(cfg: &Fig6Config, trace: &RecordedTrace) -> Vec<(&'static str, Vec<Option<f64>>)> {
    cfg.roster()
        .into_iter()
        .map(|(name, mut voter)| (name, run_voter(voter.as_mut(), trace)))
        .collect()
}

fn fig_b(cfg: &Fig6Config, clean: &RecordedTrace) {
    let runs = outputs_on(cfg, clean);
    let mut plot = AsciiPlot::new(
        "Fig 6-b: voting output on clean data (all variants coincide)",
        PLOT_W,
        PLOT_H,
    );
    for (name, series) in &runs {
        plot.series(algo_glyph(name), downsample(series, PLOT_W));
    }
    print!("{}", plot.render());

    let mut t = Table::new(vec![
        "algorithm".into(),
        "mean".into(),
        "sd".into(),
        "max |Δ vs avg|".into(),
    ]);
    let reference = &runs[0].1;
    for (name, series) in &runs {
        let s = Summary::of(series).expect("non-empty");
        let delta = max_abs(&diff_series(series, reference)).unwrap_or(0.0);
        t.row(vec![
            (*name).into(),
            format!("{:.4}", s.mean),
            format!("{:.4}", s.std_dev),
            format!("{delta:.4}"),
        ]);
    }
    println!("{t}");
}

fn fig_d(cfg: &Fig6Config, faulty: &RecordedTrace) {
    let runs = outputs_on(cfg, faulty);
    let mut plot = AsciiPlot::new("Fig 6-d: voting output under the E4 fault", PLOT_W, PLOT_H);
    for (name, series) in &runs {
        if matches!(
            *name,
            "hybrid" | "clustering" | "avoc" | "avg" | "standard" | "me"
        ) {
            plot.series(algo_glyph(name), downsample(series, PLOT_W));
        }
    }
    print!("{}", plot.render());
    println!();
}

fn fig_e(cfg: &Fig6Config, clean: &RecordedTrace, faulty: &RecordedTrace, zoom: Option<usize>) {
    let clean_runs = outputs_on(cfg, clean);
    let faulty_runs = outputs_on(cfg, faulty);

    let title = match zoom {
        Some(n) => format!("Fig 6-f: error-injection diff, first {n} rounds (bootstrap zoom)"),
        None => "Fig 6-e: error-injection effect on voting (faulty − clean)".to_owned(),
    };
    let mut plot = AsciiPlot::new(title, PLOT_W, PLOT_H);
    let mut t = Table::new(vec![
        "algorithm".into(),
        "mean |Δ|".into(),
        "peak Δ".into(),
        "final Δ".into(),
    ]);
    for ((name, clean_series), (_, faulty_series)) in clean_runs.iter().zip(&faulty_runs) {
        let mut diff = diff_series(faulty_series, clean_series);
        if let Some(n) = zoom {
            diff.truncate(n);
        }
        let abs: Vec<f64> = diff.iter().flatten().map(|v| v.abs()).collect();
        let mean_abs = abs.iter().sum::<f64>() / abs.len().max(1) as f64;
        let peak = max_abs(&diff).unwrap_or(0.0);
        let last = diff.iter().rev().flatten().next().copied().unwrap_or(0.0);
        t.row(vec![
            (*name).into(),
            format!("{mean_abs:.4}"),
            format!("{peak:.4}"),
            format!("{last:.4}"),
        ]);
        plot.series(algo_glyph(name), downsample(&diff, PLOT_W));
    }
    print!("{}", plot.render());
    println!("{t}");
}

fn table(cfg: &Fig6Config, clean: &RecordedTrace, faulty: &RecordedTrace) {
    let clean_runs = outputs_on(cfg, clean);
    let faulty_runs = outputs_on(cfg, faulty);
    let epsilon = 0.15; // klm band around the clean output
    let sustain = 8; // one second at 8 S/s
    let window = 8; // smoothing for selection-collation jitter

    let mut reports = Vec::new();
    for ((name, clean_series), (_, faulty_series)) in clean_runs.iter().zip(&faulty_runs) {
        reports.push(ConvergenceReport::compare_smoothed(
            *name,
            clean_series,
            faulty_series,
            epsilon,
            sustain,
            window,
        ));
    }

    let avoc = reports
        .iter()
        .find(|r| r.algorithm == "avoc")
        .expect("avoc in roster")
        .clone();
    let mut t = Table::new(vec![
        "algorithm".into(),
        "rounds to converge".into(),
        "stable |Δ|".into(),
        "peak |Δ|".into(),
        "AVOC boost".into(),
    ]);
    for r in &reports {
        let rounds = r
            .rounds_to_converge
            .map_or("never".to_owned(), |n| n.to_string());
        let boost = match (avoc.rounds_to_converge, r.rounds_to_converge) {
            (Some(a), Some(b)) => {
                // Convergence cost in rounds is index+1 so an instant
                // round-0 convergence is 1 round of cost, not 0.
                format!("{:.1}x", (b + 1) as f64 / (a + 1) as f64)
            }
            (Some(_), None) => "inf".to_owned(),
            _ => "-".to_owned(),
        };
        t.row(vec![
            r.algorithm.clone(),
            rounds,
            format!("{:.4}", r.stable_deviation),
            format!("{:.4}", r.peak_deviation),
            boost,
        ]);
    }
    println!(
        "== §7 UC-1 convergence (ε = {epsilon} klm, {window}-round smoothing, sustained {sustain} rounds) =="
    );
    println!("{t}");
}
