//! Reproduces Figure 7 of the paper (UC-2: BLE beacon stacks).
//!
//! ```text
//! cargo run -p avoc-bench --release --bin fig7 -- [a|b|c|groups|all] [--seed S] [--margin DB]
//! ```
//!
//! * `a` — single beacon per stack: closest stack mostly ambiguous
//! * `b` — 9-beacon plain average per stack: visibly less ambiguous
//! * `c` — 9-beacon AVOC (mean-NN) per stack
//! * `groups` — all algorithms: history method has no effect, the collation
//!   method splits them into two behavioural groups

use avoc_bench::{downsample, run_voter, Fig6Config};
use avoc_metrics::series::max_abs;
use avoc_metrics::{diff_series, AmbiguityReport, AsciiPlot, Table};
use avoc_sim::{BleScenario, BleTrace};

const PLOT_W: usize = 100;
const PLOT_H: usize = 14;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_owned();
    let mut seed = 2022u64;
    let mut margin = 2.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes a number");
            }
            "--margin" => {
                i += 1;
                margin = args[i].parse().expect("--margin takes dB");
            }
            other => which = other.to_owned(),
        }
        i += 1;
    }

    let trace = BleScenario::paper_default(seed).generate();
    match which.as_str() {
        "a" => fig_a(&trace, margin),
        "b" => fig_bc(&trace, margin, "avg", "Fig 7-b: 9-beacon average per stack"),
        "c" => fig_bc(
            &trace,
            margin,
            "avoc",
            "Fig 7-c: 9-beacon AVOC voting per stack",
        ),
        "groups" => groups(&trace, margin),
        "all" => {
            fig_a(&trace, margin);
            fig_bc(&trace, margin, "avg", "Fig 7-b: 9-beacon average per stack");
            fig_bc(
                &trace,
                margin,
                "avoc",
                "Fig 7-c: 9-beacon AVOC voting per stack",
            );
            groups(&trace, margin);
        }
        other => {
            eprintln!("unknown figure `{other}`; use a|b|c|groups|all");
            std::process::exit(2);
        }
    }
}

fn truth(trace: &BleTrace) -> Vec<bool> {
    (0..trace.rounds())
        .map(|r| trace.stack_a_closer(r))
        .collect()
}

fn plot_pair(title: &str, a: &[Option<f64>], b: &[Option<f64>]) {
    let mut plot = AsciiPlot::new(title, PLOT_W, PLOT_H);
    plot.series('A', downsample(a, PLOT_W));
    plot.series('B', downsample(b, PLOT_W));
    print!("{}", plot.render());
}

fn fig_a(trace: &BleTrace, margin: f64) {
    let a = trace.stack_a.series(0);
    let b = trace.stack_b.series(0);
    plot_pair("Fig 7-a: single beacon per stack (RSSI dBm)", &a, &b);
    let report = AmbiguityReport::evaluate(&a, &b, &truth(trace), margin);
    println!("  single-beacon: {report}\n");
}

/// Runs one roster algorithm over both stacks and reports ambiguity.
fn fused_outputs(trace: &BleTrace, algo: &str) -> (Vec<Option<f64>>, Vec<Option<f64>>) {
    let cfg = Fig6Config::default();
    let mut va = cfg.voter(algo);
    let mut vb = cfg.voter(algo);
    (
        run_voter(va.as_mut(), &trace.stack_a),
        run_voter(vb.as_mut(), &trace.stack_b),
    )
}

fn fig_bc(trace: &BleTrace, margin: f64, algo: &str, title: &str) {
    let (a, b) = fused_outputs(trace, algo);
    plot_pair(title, &a, &b);
    let report = AmbiguityReport::evaluate(&a, &b, &truth(trace), margin);
    println!("  {algo}: {report}\n");
}

fn groups(trace: &BleTrace, margin: f64) {
    let cfg = Fig6Config::default();
    let names: Vec<&str> = cfg.roster().iter().map(|(n, _)| *n).collect();
    let truth = truth(trace);

    let mut outputs = Vec::new();
    let mut t = Table::new(vec![
        "algorithm".into(),
        "collation".into(),
        "correct".into(),
        "ambiguous".into(),
        "misclassified".into(),
        "accuracy".into(),
    ]);
    for name in &names {
        let (a, b) = fused_outputs(trace, name);
        let report = AmbiguityReport::evaluate(&a, &b, &truth, margin);
        let collation = match *name {
            "hybrid" | "avoc" => "mean-NN",
            _ => "averaging",
        };
        t.row(vec![
            (*name).into(),
            collation.into(),
            report.correct.to_string(),
            report.ambiguous.to_string(),
            report.misclassified.to_string(),
            format!("{:.1}%", report.accuracy() * 100.0),
        ]);
        outputs.push((*name, a, b));
    }
    println!("== §7 UC-2: stack discrimination per algorithm (margin {margin} dB) ==");
    println!("{t}");

    // The paper's grouping claim: within a collation group the history
    // method has (almost) no effect; across groups the outputs differ.
    let mut g = Table::new(vec![
        "pair".into(),
        "max |Δ| stack A (dB)".into(),
        "same group?".into(),
    ]);
    let pairs = [
        ("standard", "me"),
        ("standard", "sdt"),
        ("me", "sdt"),
        ("avg", "standard"),
        ("hybrid", "avoc"),
        ("avg", "avoc"),
        ("standard", "hybrid"),
    ];
    for (x, y) in pairs {
        let ax = &outputs.iter().find(|(n, _, _)| *n == x).expect("roster").1;
        let ay = &outputs.iter().find(|(n, _, _)| *n == y).expect("roster").1;
        let d = max_abs(&diff_series(ax, ay)).unwrap_or(0.0);
        let same = matches!(
            (x, y),
            ("standard", "me")
                | ("standard", "sdt")
                | ("me", "sdt")
                | ("avg", "standard")
                | ("hybrid", "avoc")
        );
        g.row(vec![
            format!("{x} vs {y}"),
            format!("{d:.3}"),
            if same { "yes".into() } else { "no".into() },
        ]);
    }
    println!("== collation grouping (paper: history method has no effect; two groups) ==");
    println!("{g}");
}
