//! Reproduces the §7 implementation note: "the system can execute a
//! history-aware voting round in 1 millisecond and a stateless vote in 50
//! microseconds (datastore reads and writes being the bottleneck)".
//!
//! Rust absolute numbers are far lower than the paper's Python ones; the
//! *shape* to verify is (a) history-aware rounds cost a multiple of
//! stateless rounds, and (b) a durable datastore dominates the round cost.
//!
//! ```text
//! cargo run -p avoc-bench --release --bin latency -- [--rounds N]
//! ```

use avoc_bench::Fig6Config;
use avoc_core::algorithms::{HybridVoter, StandardVoter};
use avoc_core::{Collation, MemoryHistory, Round, Voter};
use avoc_metrics::Table;
use avoc_store::{CachedHistory, FileHistory};
use std::time::Instant;

fn time_per_round<V: Voter>(mut voter: V, rounds: &[Round]) -> f64 {
    // Warm-up pass to populate histories and caches.
    for r in rounds.iter().take(100) {
        let _ = voter.vote(r);
    }
    let start = Instant::now();
    for r in rounds {
        let _ = voter.vote(r);
    }
    start.elapsed().as_secs_f64() * 1e6 / rounds.len() as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n = 20_000usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rounds" => {
                i += 1;
                n = args[i].parse().expect("--rounds takes a number");
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cfg = Fig6Config {
        rounds: n,
        ..Fig6Config::default()
    };
    let trace = cfg.clean_trace();
    let rounds: Vec<Round> = trace.iter_rounds().collect();

    let mut t = Table::new(vec![
        "configuration".into(),
        "µs / round".into(),
        "vs stateless".into(),
    ]);

    let stateless = time_per_round(
        avoc_core::algorithms::StatelessWeightedVoter::new(
            cfg.voter_config(cfg.fast_rate, Collation::WeightedMean),
        ),
        &rounds,
    );
    let history_mem = time_per_round(
        StandardVoter::new(
            cfg.voter_config(cfg.fast_rate, Collation::WeightedMean),
            MemoryHistory::new(),
        ),
        &rounds,
    );
    let hybrid_mem = time_per_round(
        HybridVoter::new(
            cfg.voter_config(cfg.fast_rate, Collation::MeanNearestNeighbor),
            MemoryHistory::new(),
        ),
        &rounds,
    );

    let wal_path = std::env::temp_dir().join(format!("avoc-latency-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&wal_path);
    let history_file = time_per_round(
        StandardVoter::new(
            cfg.voter_config(cfg.fast_rate, Collation::WeightedMean),
            FileHistory::open(&wal_path).expect("temp file"),
        ),
        &rounds,
    );
    let _ = std::fs::remove_file(&wal_path);
    let history_cached = time_per_round(
        StandardVoter::new(
            cfg.voter_config(cfg.fast_rate, Collation::WeightedMean),
            CachedHistory::new(FileHistory::open(&wal_path).expect("temp file")),
        ),
        &rounds,
    );
    let _ = std::fs::remove_file(&wal_path);

    for (name, us) in [
        ("stateless weighted (no history)", stateless),
        ("history-aware, in-memory store", history_mem),
        ("hybrid, in-memory store", hybrid_mem),
        ("history-aware, file WAL store", history_file),
        ("history-aware, cached file store", history_cached),
    ] {
        t.row(vec![
            name.into(),
            format!("{us:.2}"),
            format!("{:.1}x", us / stateless),
        ]);
    }
    println!("== §7 implementation-note latency shape ({n} rounds, 5 candidates) ==");
    println!("{t}");
    println!(
        "(paper, Python 3.9: stateless ≈ 50 µs, history-aware ≈ 1000 µs — a ~20×\n gap dominated by the datastore; compare the file-WAL row against the\n in-memory and cached rows to see the same bottleneck and its mitigation)"
    );
}
