//! # avoc-bench — the experiment harness
//!
//! One binary per figure/table of the paper's evaluation (§7):
//!
//! | Target | Reproduces |
//! |---|---|
//! | `fig6 a..f` | Fig. 6: UC-1 light sensors, error injection |
//! | `fig6 table` / `convergence` | the 4× convergence-boost claim |
//! | `fig7 a/b/c/groups` | Fig. 7: UC-2 BLE stacks, collation grouping |
//! | `latency` | §7 implementation notes (history ≈ 1 ms vs stateless ≈ 50 µs, datastore-bound) |
//! | `compare` | the Fig. 5 algorithm-comparison application |
//! | `benches/*` | Criterion micro-benchmarks + ablations |
//!
//! The library half hosts the shared harness: the algorithm roster, trace
//! runners and experiment configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avoc_core::algorithms::{
    AverageVoter, AvocVoter, ClusteringOnlyVoter, HybridVoter, ModuleEliminationVoter,
    SoftDynamicVoter, StandardVoter, StatelessWeightedVoter,
};
use avoc_core::{
    AgreementParams, Collation, HistoryUpdate, MarginMode, MemoryHistory, RoundResult, Voter,
    VoterConfig, VotingEngine,
};
use avoc_sim::{FaultInjector, FaultKind, LightScenario, RecordedTrace};

pub mod replay;

/// Configuration of the UC-1 (Fig. 6) experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Config {
    /// Trace seed.
    pub seed: u64,
    /// Number of rounds (paper: 10 000).
    pub rounds: usize,
    /// The faulty sensor (paper: E4, index 3).
    pub fault_module: usize,
    /// Fault magnitude in klm (paper: +6).
    pub fault_klm: f64,
    /// Agreement error threshold (paper: 0.05 relative).
    pub error: f64,
    /// Soft-threshold multiplier (paper: 2).
    pub soft_multiplier: f64,
    /// History rate for the ME/Sdt/Hybrid/AVOC family. Their elimination is
    /// *relative* (below-average), so the rate only sets recovery speed.
    pub fast_rate: f64,
    /// History rate for the Standard voter. Its mitigation is *absolute*
    /// (skew shrinks only as the record decays), and the original HWA uses
    /// small reward/penalty steps — a small rate reproduces the paper's
    /// "slowly mitigated ... not eliminated completely after 10 000 rounds"
    /// shape.
    pub standard_rate: f64,
    /// Binary acceptance band for the binary-threshold voters (Standard and
    /// ME). HWA's threshold is calibrated to the application: it must cover
    /// the output skew a fault induces on healthy sensors (≈ fault/n ≈ 1.2
    /// klm here, i.e. ~7% of signal), otherwise healthy records decay
    /// alongside the faulty one and no discrimination happens. The graded
    /// voters (Sdt/Hybrid/AVOC) reach 2×error via the soft band and keep the
    /// paper's 5%.
    pub standard_error: f64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            seed: 1973,
            rounds: 10_000,
            fault_module: 3,
            fault_klm: 6.0,
            error: 0.05,
            soft_multiplier: 2.0,
            fast_rate: 0.1,
            standard_rate: 8e-5,
            standard_error: 0.08,
        }
    }
}

impl Fig6Config {
    /// A small variant for tests and smoke runs.
    pub fn smoke() -> Self {
        Fig6Config {
            rounds: 300,
            ..Self::default()
        }
    }

    /// The shared voter configuration (collation per algorithm).
    pub fn voter_config(&self, rate: f64, collation: Collation) -> VoterConfig {
        VoterConfig::new()
            .with_agreement(AgreementParams::new(
                self.error,
                self.soft_multiplier,
                MarginMode::Relative,
            ))
            .with_update(HistoryUpdate::new(rate))
            .with_collation(collation)
    }

    /// The clean reference trace.
    pub fn clean_trace(&self) -> RecordedTrace {
        LightScenario::new(5, self.rounds, self.seed).generate()
    }

    /// The error-injected trace (Fig. 6-c).
    pub fn faulty_trace(&self) -> RecordedTrace {
        FaultInjector::new(self.fault_module, FaultKind::Offset(self.fault_klm))
            .apply(&self.clean_trace(), self.seed)
    }

    /// The Fig. 6 algorithm roster, freshly constructed: `avg.`,
    /// `standard`, `ME`, `Sdt`, `Hybrid`, `Clustering` (COV), `AVOC`, plus
    /// the stateless-weighted baseline the COV discussion references.
    pub fn roster(&self) -> Vec<(&'static str, Box<dyn Voter>)> {
        let fast = self.fast_rate;
        let std_rate = self.standard_rate;
        vec![
            ("avg", Box::new(AverageVoter::new())),
            (
                "stateless",
                Box::new(StatelessWeightedVoter::new(
                    self.voter_config(fast, Collation::WeightedMean),
                )),
            ),
            (
                "standard",
                Box::new(StandardVoter::new(
                    VoterConfig::new()
                        .with_agreement(AgreementParams::new(
                            self.standard_error,
                            self.soft_multiplier,
                            MarginMode::Relative,
                        ))
                        .with_update(HistoryUpdate::new(std_rate))
                        .with_collation(Collation::WeightedMean),
                    MemoryHistory::new(),
                )),
            ),
            (
                "me",
                Box::new(ModuleEliminationVoter::new(
                    VoterConfig::new()
                        .with_agreement(AgreementParams::new(
                            self.standard_error,
                            self.soft_multiplier,
                            MarginMode::Relative,
                        ))
                        .with_update(HistoryUpdate::new(fast))
                        .with_collation(Collation::WeightedMean),
                    MemoryHistory::new(),
                )),
            ),
            (
                "sdt",
                Box::new(SoftDynamicVoter::new(
                    self.voter_config(fast, Collation::WeightedMean),
                    MemoryHistory::new(),
                )),
            ),
            (
                "hybrid",
                Box::new(HybridVoter::new(
                    self.voter_config(fast, Collation::MeanNearestNeighbor),
                    MemoryHistory::new(),
                )),
            ),
            (
                "clustering",
                Box::new(ClusteringOnlyVoter::new(
                    self.voter_config(fast, Collation::WeightedMean),
                )),
            ),
            (
                "avoc",
                Box::new(AvocVoter::new(
                    self.voter_config(fast, Collation::MeanNearestNeighbor),
                    MemoryHistory::new(),
                )),
            ),
        ]
    }

    /// Builds one roster entry by name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name — the roster is fixed by the figure.
    pub fn voter(&self, name: &str) -> Box<dyn Voter> {
        self.roster()
            .into_iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("unknown algorithm {name}"))
            .1
    }
}

/// Runs a voter over every round of a trace, returning the output series
/// (`None` where the voter errored, e.g. an all-missing round).
pub fn run_voter(voter: &mut dyn Voter, trace: &RecordedTrace) -> Vec<Option<f64>> {
    trace
        .iter_rounds()
        .map(|round| voter.vote(&round).ok().and_then(|v| v.number()))
        .collect()
}

/// Runs a [`VotingEngine`] over a trace, returning the per-round outputs
/// (`None` for skipped rounds or surfaced errors).
pub fn run_engine(engine: &mut VotingEngine, trace: &RecordedTrace) -> Vec<Option<f64>> {
    trace
        .iter_rounds()
        .map(|round| match engine.submit(&round) {
            Ok(RoundResult::Voted(v)) => v.number(),
            Ok(other) => other.number(),
            Err(_) => None,
        })
        .collect()
}

/// Downsamples a series to at most `n` evenly spaced points (for plotting).
pub fn downsample(series: &[Option<f64>], n: usize) -> Vec<Option<f64>> {
    if n == 0 || series.len() <= n {
        return series.to_vec();
    }
    (0..n)
        .map(|i| series[i * (series.len() - 1) / (n - 1)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_the_fig6_variants() {
        let cfg = Fig6Config::smoke();
        let names: Vec<&str> = cfg.roster().iter().map(|(n, _)| *n).collect();
        for expected in [
            "avg",
            "standard",
            "me",
            "sdt",
            "hybrid",
            "clustering",
            "avoc",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn run_voter_produces_one_output_per_round() {
        let cfg = Fig6Config::smoke();
        let trace = cfg.clean_trace();
        let mut voter = cfg.voter("avoc");
        let out = run_voter(voter.as_mut(), &trace);
        assert_eq!(out.len(), trace.rounds());
        assert!(out.iter().all(Option::is_some));
    }

    #[test]
    fn faulty_trace_shifts_only_the_fault_module() {
        let cfg = Fig6Config::smoke();
        let clean = cfg.clean_trace();
        let faulty = cfg.faulty_trace();
        let delta =
            faulty.row(5)[cfg.fault_module].unwrap() - clean.row(5)[cfg.fault_module].unwrap();
        assert!((delta - cfg.fault_klm).abs() < 1e-12);
        assert_eq!(faulty.row(5)[0], clean.row(5)[0]);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let series: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64)).collect();
        let ds = downsample(&series, 10);
        assert_eq!(ds.len(), 10);
        assert_eq!(ds[0], Some(0.0));
        assert_eq!(ds[9], Some(99.0));
        // Short series pass through unchanged.
        assert_eq!(downsample(&series, 200).len(), 100);
    }

    #[test]
    #[should_panic(expected = "unknown algorithm")]
    fn unknown_voter_panics() {
        let _ = Fig6Config::smoke().voter("nope");
    }
}
