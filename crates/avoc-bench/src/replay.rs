//! Roster replay: run every Fig. 6 algorithm over one trace, serially or
//! fanned out across threads.
//!
//! The parallel runner exists for wall-clock, not for different answers:
//! each algorithm's replay is an independent deterministic computation (the
//! trace is generated once from the experiment seed and shared read-only,
//! and every voter is constructed fresh inside its worker), so the parallel
//! output is bit-identical to the serial one — a property the test suite
//! pins down and `bench_fusion` re-verifies on every run.

use crate::{run_voter, Fig6Config};
use avoc_sim::RecordedTrace;

/// One algorithm's replay over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayResult {
    /// Roster name of the algorithm (`avg`, `standard`, … `avoc`).
    pub name: &'static str,
    /// Per-round outputs; `None` where the voter errored.
    pub outputs: Vec<Option<f64>>,
}

/// The roster names, in roster order (the order both runners report in).
pub fn roster_names(cfg: &Fig6Config) -> Vec<&'static str> {
    cfg.roster().into_iter().map(|(n, _)| n).collect()
}

/// Replays every roster algorithm over `trace`, one after another.
pub fn replay_serial(cfg: &Fig6Config, trace: &RecordedTrace) -> Vec<ReplayResult> {
    cfg.roster()
        .into_iter()
        .map(|(name, mut voter)| ReplayResult {
            name,
            outputs: run_voter(voter.as_mut(), trace),
        })
        .collect()
}

/// Replays every roster algorithm over `trace` on scoped threads, one
/// worker per algorithm, returning results in roster order.
///
/// Each worker builds its own voter from `cfg` (fresh history, same
/// configuration the serial runner uses) and reads the shared trace, so the
/// outputs are bit-identical to [`replay_serial`] — threads change when the
/// work happens, never what it computes.
pub fn replay_parallel(cfg: &Fig6Config, trace: &RecordedTrace) -> Vec<ReplayResult> {
    let names = roster_names(cfg);
    std::thread::scope(|scope| {
        let handles: Vec<_> = names
            .iter()
            .map(|&name| {
                scope.spawn(move || ReplayResult {
                    name,
                    outputs: run_voter(cfg.voter(name).as_mut(), trace),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay worker"))
            .collect()
    })
}

/// `true` when two replays agree bit-for-bit: same roster order, and every
/// output pair has identical f64 bits (`NaN`s compare equal to themselves,
/// `0.0` and `-0.0` do not — stricter than `==`).
pub fn replays_bit_identical(a: &[ReplayResult], b: &[ReplayResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.name == y.name
                && x.outputs.len() == y.outputs.len()
                && x.outputs.iter().zip(&y.outputs).all(|(p, q)| match (p, q) {
                    (Some(u), Some(v)) => u.to_bits() == v.to_bits(),
                    (None, None) => true,
                    _ => false,
                })
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_replay_is_bit_identical_to_serial() {
        let cfg = Fig6Config::smoke();
        for trace in [cfg.clean_trace(), cfg.faulty_trace()] {
            let serial = replay_serial(&cfg, &trace);
            let parallel = replay_parallel(&cfg, &trace);
            assert!(
                replays_bit_identical(&serial, &parallel),
                "thread-scoped replay must not change a single bit"
            );
        }
    }

    #[test]
    fn replay_covers_the_whole_roster_and_trace() {
        let cfg = Fig6Config::smoke();
        let trace = cfg.clean_trace();
        let results = replay_serial(&cfg, &trace);
        assert_eq!(
            results.iter().map(|r| r.name).collect::<Vec<_>>(),
            roster_names(&cfg)
        );
        assert!(results.iter().all(|r| r.outputs.len() == trace.rounds()));
    }

    #[test]
    fn bit_identity_check_is_strict() {
        let a = vec![ReplayResult {
            name: "avg",
            outputs: vec![Some(0.0)],
        }];
        let mut b = a.clone();
        assert!(replays_bit_identical(&a, &b));
        b[0].outputs[0] = Some(-0.0);
        assert!(
            !replays_bit_identical(&a, &b),
            "-0.0 differs from 0.0 bitwise"
        );
    }
}
