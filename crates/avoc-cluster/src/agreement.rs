//! AVOC's simplified agreement clustering (§5 of the paper).
//!
//! The clustering step mirrors the agreement calculation of the voting
//! algorithms: two values agree when they lie within a *scaling threshold* of
//! each other, and agreement is closed transitively (single-link grouping, the
//! same connectivity logic as DBSCAN with `min_points = 1`). The output value
//! of a bootstrap round is then derived from the **largest** group — either
//! its mean or its closest real member, depending on the collation method of
//! the surrounding voter.
//!
//! The paper stresses *self-calibration*: instead of a costly parameter
//! tuning phase, the margin is soft-dynamic, i.e. scales with a reference
//! value ([`MarginMode::Relative`]). An absolute margin is also provided for
//! data whose magnitude carries no meaning (e.g. RSSI in dBm).

use crate::stats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the agreement margin between two values is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(rename_all = "SCREAMING_SNAKE_CASE")]
pub enum MarginMode {
    /// `tolerance = threshold × max(|a|, |b|)` — the paper's soft-dynamic
    /// margin, which self-calibrates to the magnitude of the data.
    #[default]
    Relative,
    /// `tolerance = threshold` — a fixed margin in data units.
    Absolute,
}

/// A group of mutually agreeing values produced by [`AgreementClusterer`].
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl Cluster {
    /// Indices (into the original input slice) of the cluster's members.
    pub fn members(&self) -> &[usize] {
        &self.indices
    }

    /// The member values themselves.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the cluster is empty (never true for clusters produced by
    /// [`AgreementClusterer::cluster`]).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Mean of the member values.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is empty.
    pub fn mean(&self) -> f64 {
        stats::mean(&self.values).expect("cluster is never empty")
    }

    /// The member value closest to the cluster mean — the "closest real
    /// value" used by mean-nearest-neighbour collation.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is empty.
    pub fn nearest_real_value(&self) -> f64 {
        let m = self.mean();
        *self
            .values
            .iter()
            .min_by(|a, b| {
                (*a - m)
                    .abs()
                    .partial_cmp(&(*b - m).abs())
                    .expect("finite values")
            })
            .expect("cluster is never empty")
    }

    /// Population variance of the member values.
    pub fn variance(&self) -> f64 {
        stats::variance(&self.values).unwrap_or(0.0)
    }
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cluster({} members, mean {:.4})",
            self.len(),
            self.mean()
        )
    }
}

/// The result of clustering one round of candidate values.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    clusters: Vec<Cluster>,
    n_input: usize,
}

impl Clustering {
    /// All clusters, ordered by descending size (ties: ascending variance,
    /// then first member index — deterministic).
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of values that were clustered.
    pub fn input_len(&self) -> usize {
        self.n_input
    }

    /// The largest cluster, or `None` for empty input.
    ///
    /// Size ties are broken towards the tighter (lower-variance) cluster —
    /// with equal evidence, the more self-consistent group is the more
    /// trustworthy internal ground truth.
    pub fn largest_cluster(&self) -> Option<&Cluster> {
        self.clusters.first()
    }

    /// The largest cluster, breaking *size* ties by proximity of the cluster
    /// mean to `reference` (the paper's tie-breaking mechanism: "proximity to
    /// the previous output").
    pub fn largest_cluster_near(&self, reference: f64) -> Option<&Cluster> {
        let best_len = self.clusters.first()?.len();
        self.clusters
            .iter()
            .take_while(|c| c.len() == best_len)
            .min_by(|a, b| {
                (a.mean() - reference)
                    .abs()
                    .partial_cmp(&(b.mean() - reference).abs())
                    .expect("finite means")
            })
    }

    /// Indices of values that are *not* in the largest cluster — the outliers
    /// the bootstrap eliminates in-place.
    pub fn outliers(&self) -> Vec<usize> {
        match self.largest_cluster() {
            None => Vec::new(),
            Some(top) => {
                let mut out: Vec<usize> = self
                    .clusters
                    .iter()
                    .skip(1)
                    .flat_map(|c| c.members().iter().copied())
                    .collect();
                debug_assert!(top.len() + out.len() == self.n_input);
                out.sort_unstable();
                out
            }
        }
    }

    /// Fraction of input values that ended up in the largest cluster
    /// (a confidence signal in `[0, 1]`; `0` for empty input).
    pub fn majority_fraction(&self) -> f64 {
        match (self.largest_cluster(), self.n_input) {
            (Some(c), n) if n > 0 => c.len() as f64 / n as f64,
            _ => 0.0,
        }
    }
}

/// AVOC's self-calibrating agreement clusterer for one-dimensional values.
///
/// # Example
///
/// ```
/// use avoc_cluster::{AgreementClusterer, MarginMode};
///
/// // 5% soft-dynamic margin, as in the paper's UC-1 configuration.
/// let c = AgreementClusterer::new(0.05, MarginMode::Relative);
/// let clustering = c.cluster(&[18.2, 18.3, 24.4, 18.25, 18.1]);
/// assert_eq!(clustering.clusters().len(), 2);
/// assert_eq!(clustering.outliers(), vec![2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgreementClusterer {
    threshold: f64,
    mode: MarginMode,
}

impl AgreementClusterer {
    /// Creates a clusterer with the given threshold and margin mode.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not finite and non-negative.
    pub fn new(threshold: f64, mode: MarginMode) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be finite and non-negative, got {threshold}"
        );
        AgreementClusterer { threshold, mode }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The configured margin mode.
    pub fn mode(&self) -> MarginMode {
        self.mode
    }

    /// Whether two values agree under this clusterer's margin.
    pub fn agrees(&self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.tolerance(a, b)
    }

    fn tolerance(&self, a: f64, b: f64) -> f64 {
        match self.mode {
            MarginMode::Relative => self.threshold * a.abs().max(b.abs()),
            MarginMode::Absolute => self.threshold,
        }
    }

    /// Groups `values` into agreement clusters (transitive closure of the
    /// pairwise agreement relation), ordered by descending size.
    ///
    /// Non-finite values are treated as their own singleton outlier clusters
    /// so a stray NaN cannot poison the grouping.
    pub fn cluster(&self, values: &[f64]) -> Clustering {
        let n = values.len();
        // Union-find over indices.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], i: usize) -> usize {
            let mut root = i;
            while parent[root] != root {
                root = parent[root];
            }
            // Path compression.
            let mut cur = i;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for i in 0..n {
            if !values[i].is_finite() {
                continue;
            }
            for j in (i + 1)..n {
                if !values[j].is_finite() {
                    continue;
                }
                if self.agrees(values[i], values[j]) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[rj] = ri;
                    }
                }
            }
        }

        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            let r = find(&mut parent, i);
            groups[r].push(i);
        }
        let mut clusters: Vec<Cluster> = groups
            .into_iter()
            .filter(|g| !g.is_empty())
            .map(|indices| {
                let values: Vec<f64> = indices.iter().map(|&i| values[i]).collect();
                Cluster { indices, values }
            })
            .collect();
        clusters.sort_by(|a, b| {
            b.len()
                .cmp(&a.len())
                .then_with(|| {
                    a.variance()
                        .partial_cmp(&b.variance())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.indices[0].cmp(&b.indices[0]))
        });
        Clustering {
            clusters,
            n_input: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(t: f64) -> AgreementClusterer {
        AgreementClusterer::new(t, MarginMode::Relative)
    }

    #[test]
    fn empty_input() {
        let c = rel(0.05).cluster(&[]);
        assert!(c.largest_cluster().is_none());
        assert!(c.outliers().is_empty());
        assert_eq!(c.majority_fraction(), 0.0);
    }

    #[test]
    fn single_value_is_its_own_cluster() {
        let c = rel(0.05).cluster(&[7.0]);
        assert_eq!(c.clusters().len(), 1);
        assert_eq!(c.largest_cluster().unwrap().values(), &[7.0]);
        assert_eq!(c.majority_fraction(), 1.0);
    }

    #[test]
    fn outlier_is_separated() {
        let c = rel(0.05).cluster(&[18.0, 18.2, 18.1, 24.0, 17.9]);
        assert_eq!(c.clusters().len(), 2);
        assert_eq!(c.largest_cluster().unwrap().len(), 4);
        assert_eq!(c.outliers(), vec![3]);
    }

    #[test]
    fn transitive_chaining_merges_clusters() {
        // 10 and 11 agree (10%), 11 and 12.05 agree, but 10 and 12.05 do not:
        // single-link still puts all three together.
        let c = rel(0.10).cluster(&[10.0, 11.0, 12.05]);
        assert_eq!(c.clusters().len(), 1);
        assert_eq!(c.largest_cluster().unwrap().len(), 3);
    }

    #[test]
    fn absolute_margin() {
        let c = AgreementClusterer::new(0.5, MarginMode::Absolute);
        let clustering = c.cluster(&[-80.0, -80.4, -60.0]);
        assert_eq!(clustering.clusters().len(), 2);
        assert_eq!(clustering.largest_cluster().unwrap().len(), 2);
    }

    #[test]
    fn agreement_is_symmetric() {
        let c = rel(0.05);
        for (a, b) in [(18.0, 18.5), (18.5, 18.0), (-3.0, -2.9), (0.0, 0.0)] {
            assert_eq!(c.agrees(a, b), c.agrees(b, a));
        }
    }

    #[test]
    fn zero_values_only_agree_exactly_in_relative_mode() {
        let c = rel(0.05);
        assert!(c.agrees(0.0, 0.0));
        assert!(!c.agrees(0.0, 0.1));
    }

    #[test]
    fn size_tie_broken_by_variance() {
        // Two clusters of two; the tighter pair must come first.
        let c = rel(0.05).cluster(&[100.0, 104.0, 200.0, 200.1]);
        let first = c.largest_cluster().unwrap();
        assert_eq!(first.len(), 2);
        assert!(first.values().contains(&200.0));
    }

    #[test]
    fn size_tie_broken_by_reference_proximity() {
        let c = rel(0.05).cluster(&[100.0, 104.0, 200.0, 200.1]);
        let near = c.largest_cluster_near(102.0).unwrap();
        assert!(near.values().contains(&100.0));
        let near2 = c.largest_cluster_near(199.0).unwrap();
        assert!(near2.values().contains(&200.0));
    }

    #[test]
    fn nearest_real_value_is_a_member() {
        let c = rel(0.05).cluster(&[18.0, 18.4, 18.1]);
        let top = c.largest_cluster().unwrap();
        let nrv = top.nearest_real_value();
        assert!(top.values().contains(&nrv));
        // mean is ~18.1667 → nearest member is 18.1
        assert_eq!(nrv, 18.1);
    }

    #[test]
    fn nan_is_isolated() {
        let c = rel(0.05).cluster(&[18.0, f64::NAN, 18.1]);
        assert_eq!(c.largest_cluster().unwrap().len(), 2);
        assert_eq!(c.outliers(), vec![1]);
    }

    #[test]
    fn majority_fraction_reflects_consensus() {
        let c = rel(0.05).cluster(&[18.0, 18.1, 18.05, 25.0]);
        assert_eq!(c.majority_fraction(), 0.75);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_panics() {
        let _ = AgreementClusterer::new(-0.1, MarginMode::Relative);
    }

    #[test]
    fn all_identical_values_form_one_cluster() {
        let c = rel(0.0).cluster(&[5.0, 5.0, 5.0]);
        assert_eq!(c.clusters().len(), 1);
        assert_eq!(c.largest_cluster().unwrap().mean(), 5.0);
    }
}
