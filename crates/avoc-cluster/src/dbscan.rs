//! A from-scratch DBSCAN implementation (Ester et al., KDD '96).
//!
//! The paper notes that AVOC's grouping logic "is similar to DBSCAN"; this
//! module provides the real thing for multi-dimensional bootstrap scenarios
//! and for the ablation benches that compare grouping strategies.

use crate::point::Point;

/// Per-point label assigned by [`Dbscan::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbscanLabel {
    /// Point belongs to the cluster with the given id (0-based).
    Cluster(usize),
    /// Point is density-noise.
    Noise,
}

impl DbscanLabel {
    /// The cluster id, if the point is not noise.
    pub fn cluster_id(self) -> Option<usize> {
        match self {
            DbscanLabel::Cluster(id) => Some(id),
            DbscanLabel::Noise => None,
        }
    }

    /// Whether the point was labelled noise.
    pub fn is_noise(self) -> bool {
        matches!(self, DbscanLabel::Noise)
    }
}

/// Density-based spatial clustering of applications with noise.
///
/// # Example
///
/// ```
/// use avoc_cluster::{Dbscan, Point};
///
/// let points: Vec<Point> = [0.0, 0.1, 0.2, 9.0, 9.1, 50.0]
///     .iter().map(|&v| Point::scalar(v)).collect();
/// let labels = Dbscan::new(0.5, 2).fit(&points);
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[3]);
/// assert!(labels[5].is_noise());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dbscan {
    eps: f64,
    min_points: usize,
}

impl Dbscan {
    /// Creates a DBSCAN instance with neighbourhood radius `eps` and core
    /// density `min_points` (a point is *core* when at least `min_points`
    /// points, itself included, lie within `eps`).
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not finite and positive, or `min_points == 0`.
    pub fn new(eps: f64, min_points: usize) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be positive, got {eps}"
        );
        assert!(min_points > 0, "min_points must be at least 1");
        Dbscan { eps, min_points }
    }

    /// The neighbourhood radius.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The core-point density requirement.
    pub fn min_points(&self) -> usize {
        self.min_points
    }

    /// Clusters `points`, returning one label per input point.
    ///
    /// # Panics
    ///
    /// Panics if the points do not all share the same dimensionality.
    pub fn fit(&self, points: &[Point]) -> Vec<DbscanLabel> {
        const UNVISITED: isize = -2;
        const NOISE: isize = -1;
        let n = points.len();
        let mut labels = vec![UNVISITED; n];
        let mut next_cluster: isize = 0;

        for i in 0..n {
            if labels[i] != UNVISITED {
                continue;
            }
            let neighbours = self.region_query(points, i);
            if neighbours.len() < self.min_points {
                labels[i] = NOISE;
                continue;
            }
            let cluster = next_cluster;
            next_cluster += 1;
            labels[i] = cluster;
            // Expand cluster with a worklist.
            let mut queue: Vec<usize> = neighbours;
            let mut qi = 0;
            while qi < queue.len() {
                let p = queue[qi];
                qi += 1;
                if labels[p] == NOISE {
                    labels[p] = cluster; // border point
                }
                if labels[p] != UNVISITED {
                    continue;
                }
                labels[p] = cluster;
                let p_neighbours = self.region_query(points, p);
                if p_neighbours.len() >= self.min_points {
                    queue.extend(p_neighbours);
                }
            }
        }

        labels
            .into_iter()
            .map(|l| {
                if l < 0 {
                    DbscanLabel::Noise
                } else {
                    DbscanLabel::Cluster(l as usize)
                }
            })
            .collect()
    }

    /// Returns the points of the largest cluster (by member count), or `None`
    /// when every point is noise or the input is empty.
    pub fn largest_cluster_members(&self, points: &[Point]) -> Option<Vec<usize>> {
        let labels = self.fit(points);
        let max_id = labels.iter().filter_map(|l| l.cluster_id()).max()?;
        let mut best: Option<Vec<usize>> = None;
        for id in 0..=max_id {
            let members: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter(|(_, l)| l.cluster_id() == Some(id))
                .map(|(i, _)| i)
                .collect();
            if best.as_ref().is_none_or(|b| members.len() > b.len()) {
                best = Some(members);
            }
        }
        best
    }

    fn region_query(&self, points: &[Point], i: usize) -> Vec<usize> {
        let eps_sq = self.eps * self.eps;
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| points[i].distance_sq(p) <= eps_sq)
            .map(|(j, _)| j)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(vs: &[f64]) -> Vec<Point> {
        vs.iter().map(|&v| Point::scalar(v)).collect()
    }

    #[test]
    fn empty_input_yields_no_labels() {
        assert!(Dbscan::new(1.0, 2).fit(&[]).is_empty());
    }

    #[test]
    fn two_blobs_and_noise() {
        let points = pts(&[0.0, 0.1, 0.2, 10.0, 10.1, 10.2, 100.0]);
        let labels = Dbscan::new(0.5, 2).fit(&points);
        assert_eq!(labels[0].cluster_id(), labels[1].cluster_id());
        assert_eq!(labels[1].cluster_id(), labels[2].cluster_id());
        assert_eq!(labels[3].cluster_id(), labels[4].cluster_id());
        assert_ne!(labels[0].cluster_id(), labels[3].cluster_id());
        assert!(labels[6].is_noise());
    }

    #[test]
    fn all_noise_when_sparse() {
        let points = pts(&[0.0, 10.0, 20.0]);
        let labels = Dbscan::new(1.0, 2).fit(&points);
        assert!(labels.iter().all(|l| l.is_noise()));
        assert!(Dbscan::new(1.0, 2)
            .largest_cluster_members(&points)
            .is_none());
    }

    #[test]
    fn min_points_one_clusters_everything() {
        let points = pts(&[0.0, 100.0]);
        let labels = Dbscan::new(1.0, 1).fit(&points);
        assert!(labels.iter().all(|l| !l.is_noise()));
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn border_points_join_a_cluster() {
        // 0.0 .. 0.4 chain with min_points 3: ends are border points.
        let points = pts(&[0.0, 0.1, 0.2, 0.3, 0.4]);
        let labels = Dbscan::new(0.15, 3).fit(&points);
        let id = labels[2].cluster_id().expect("middle is core");
        assert!(labels.iter().all(|l| l.cluster_id() == Some(id)));
    }

    #[test]
    fn largest_cluster_members_picks_biggest() {
        let points = pts(&[0.0, 0.1, 0.2, 5.0, 5.1]);
        let members = Dbscan::new(0.3, 2)
            .largest_cluster_members(&points)
            .unwrap();
        assert_eq!(members, vec![0, 1, 2]);
    }

    #[test]
    fn works_in_two_dimensions() {
        let points = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![0.1, 0.1]),
            Point::new(vec![5.0, 5.0]),
            Point::new(vec![5.1, 5.0]),
        ];
        let labels = Dbscan::new(0.5, 2).fit(&points);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_eps_panics() {
        let _ = Dbscan::new(0.0, 2);
    }
}
