//! Lloyd's k-means with k-means++ seeding.
//!
//! Building block for [`crate::xmeans`] and available directly for
//! multi-dimensional bootstrap experiments.

use crate::point::{centroid, Point};
use rand::Rng;

/// Result of a k-means fit.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final cluster centroids (`<= k` of them if clusters emptied out).
    pub centroids: Vec<Point>,
    /// For each input point, the index of its centroid in `centroids`.
    pub assignments: Vec<usize>,
    /// Total residual sum of squared distances point→assigned centroid.
    pub rss: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Sizes of each cluster, indexed like `centroids`.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Indices of the points assigned to cluster `id`.
    pub fn members_of(&self, id: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == id)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Configurable k-means clusterer.
///
/// # Example
///
/// ```
/// use avoc_cluster::{KMeans, Point};
/// use rand::SeedableRng;
///
/// let points: Vec<Point> = [1.0, 1.1, 0.9, 8.0, 8.2, 7.9]
///     .iter().map(|&v| Point::scalar(v)).collect();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let fit = KMeans::new(2).fit(&points, &mut rng).expect("k <= n");
/// assert_eq!(fit.cluster_sizes().iter().sum::<usize>(), 6);
/// assert!(fit.rss < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeans {
    k: usize,
    max_iter: usize,
}

impl KMeans {
    /// Creates a k-means clusterer for `k` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        KMeans { k, max_iter: 100 }
    }

    /// Sets the Lloyd-iteration cap (default 100).
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }

    /// The requested number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Fits the model. Returns `None` when there are fewer points than
    /// clusters requested.
    ///
    /// # Panics
    ///
    /// Panics if points have mixed dimensionality.
    pub fn fit<R: Rng + ?Sized>(&self, points: &[Point], rng: &mut R) -> Option<KMeansResult> {
        if points.len() < self.k {
            return None;
        }
        let mut centroids = self.seed_plus_plus(points, rng);
        let mut assignments = vec![0usize; points.len()];
        let mut iterations = 0;

        for _ in 0..self.max_iter {
            iterations += 1;
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let best = nearest(p, &centroids);
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            // Recompute centroids; keep an emptied cluster's previous
            // centroid so indices stay stable.
            for (id, c) in centroids.iter_mut().enumerate() {
                let members: Vec<Point> = points
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| assignments[*i] == id)
                    .map(|(_, p)| p.clone())
                    .collect();
                if let Some(new_c) = centroid(&members) {
                    *c = new_c;
                }
            }
            if !changed && iterations > 1 {
                break;
            }
        }

        let rss = points
            .iter()
            .zip(&assignments)
            .map(|(p, &a)| p.distance_sq(&centroids[a]))
            .sum();
        Some(KMeansResult {
            centroids,
            assignments,
            rss,
            iterations,
        })
    }

    /// k-means++ seeding: first centre uniform, subsequent centres sampled
    /// proportionally to squared distance from the nearest chosen centre.
    fn seed_plus_plus<R: Rng + ?Sized>(&self, points: &[Point], rng: &mut R) -> Vec<Point> {
        let mut centroids: Vec<Point> = Vec::with_capacity(self.k);
        let first = rng.random_range(0..points.len());
        centroids.push(points[first].clone());
        while centroids.len() < self.k {
            let d2: Vec<f64> = points
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| p.distance_sq(c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = d2.iter().sum();
            if total <= 0.0 {
                // All remaining points coincide with chosen centres; duplicate
                // an arbitrary point to keep k centroids.
                centroids.push(points[0].clone());
                continue;
            }
            let mut target = rng.random_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            centroids.push(points[chosen].clone());
        }
        centroids
    }
}

fn nearest(p: &Point, centroids: &[Point]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = p.distance_sq(c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pts(vs: &[f64]) -> Vec<Point> {
        vs.iter().map(|&v| Point::scalar(v)).collect()
    }

    #[test]
    fn separates_two_blobs() {
        let points = pts(&[1.0, 1.2, 0.8, 10.0, 10.2, 9.8]);
        let mut rng = StdRng::seed_from_u64(42);
        let fit = KMeans::new(2).fit(&points, &mut rng).unwrap();
        assert_eq!(fit.assignments[0], fit.assignments[1]);
        assert_eq!(fit.assignments[0], fit.assignments[2]);
        assert_eq!(fit.assignments[3], fit.assignments[4]);
        assert_ne!(fit.assignments[0], fit.assignments[3]);
        assert!(fit.rss < 0.2, "rss = {}", fit.rss);
    }

    #[test]
    fn too_few_points_returns_none() {
        let points = pts(&[1.0]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(KMeans::new(2).fit(&points, &mut rng).is_none());
    }

    #[test]
    fn k_equals_n_gives_zero_rss() {
        let points = pts(&[1.0, 5.0, 9.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let fit = KMeans::new(3).fit(&points, &mut rng).unwrap();
        assert!(fit.rss < 1e-12);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let points = pts(&[2.0, 4.0, 6.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let fit = KMeans::new(1).fit(&points, &mut rng).unwrap();
        assert!((fit.centroids[0][0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let points = pts(&[3.0, 3.0, 3.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(9);
        let fit = KMeans::new(2).fit(&points, &mut rng).unwrap();
        assert!(fit.rss < 1e-12);
        assert_eq!(fit.assignments.len(), 4);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let points = pts(&[1.0, 2.0, 8.0, 9.0, 15.0, 16.0]);
        let fit_a = KMeans::new(3)
            .fit(&points, &mut StdRng::seed_from_u64(11))
            .unwrap();
        let fit_b = KMeans::new(3)
            .fit(&points, &mut StdRng::seed_from_u64(11))
            .unwrap();
        assert_eq!(fit_a.assignments, fit_b.assignments);
    }

    #[test]
    fn members_of_and_sizes_agree() {
        let points = pts(&[1.0, 1.1, 9.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let fit = KMeans::new(2).fit(&points, &mut rng).unwrap();
        let sizes = fit.cluster_sizes();
        for (id, &size) in sizes.iter().enumerate() {
            assert_eq!(fit.members_of(id).len(), size);
        }
        assert_eq!(sizes.iter().sum::<usize>(), 3);
    }

    #[test]
    fn two_dimensional_blobs() {
        let points = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![0.2, -0.1]),
            Point::new(vec![10.0, 10.0]),
            Point::new(vec![10.1, 9.9]),
        ];
        let mut rng = StdRng::seed_from_u64(4);
        let fit = KMeans::new(2).fit(&points, &mut rng).unwrap();
        assert_eq!(fit.assignments[0], fit.assignments[1]);
        assert_eq!(fit.assignments[2], fit.assignments[3]);
        assert_ne!(fit.assignments[0], fit.assignments[2]);
    }
}
