//! Clustering substrate for the AVOC voting system.
//!
//! The AVOC paper (§5) bootstraps history-based voting with a *simplified
//! clustering algorithm*: values within a (soft-dynamic) scaling threshold of
//! each other are grouped, and the largest group wins. That algorithm lives in
//! [`agreement`] and is the one the voting core uses.
//!
//! For the multi-dimensional generalisation the paper points at unsupervised
//! algorithms such as Mean-shift and X-means; this crate provides from-scratch
//! implementations of [`dbscan`], [`kmeans`], [`xmeans`] and [`meanshift`] so
//! that downstream users can swap the bootstrap strategy.
//!
//! # Example
//!
//! ```
//! use avoc_cluster::agreement::{AgreementClusterer, MarginMode};
//!
//! let clusterer = AgreementClusterer::new(0.05, MarginMode::Relative);
//! let values = [18.0, 18.1, 18.05, 25.0, 17.95];
//! let clustering = clusterer.cluster(&values);
//! let largest = clustering.largest_cluster().expect("non-empty input");
//! assert_eq!(largest.members().len(), 4); // the 18-ish group; 25.0 is an outlier
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreement;
pub mod dbscan;
pub mod kmeans;
pub mod meanshift;
pub mod point;
pub mod silhouette;
pub mod stats;
pub mod xmeans;

pub use agreement::{AgreementClusterer, Cluster, Clustering, MarginMode};
pub use dbscan::{Dbscan, DbscanLabel};
pub use kmeans::{KMeans, KMeansResult};
pub use meanshift::{MeanShift, MeanShiftResult};
pub use point::{euclidean, euclidean_sq, Point};
pub use silhouette::silhouette_score;
pub use xmeans::{XMeans, XMeansResult};
