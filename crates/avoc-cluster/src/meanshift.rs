//! Mean-shift clustering (Comaniciu & Meer, 2002) with a flat (uniform)
//! kernel.
//!
//! Mean-shift is the second algorithm the AVOC paper names for generalising
//! the clustering bootstrap to multi-dimensional data (§5). It needs no
//! cluster-count parameter — only a bandwidth — which fits AVOC's
//! self-calibration goal.

use crate::point::{centroid, Point};

/// Result of a mean-shift fit.
#[derive(Debug, Clone, PartialEq)]
pub struct MeanShiftResult {
    /// The discovered modes (cluster centres).
    pub modes: Vec<Point>,
    /// For each input point, the index of its mode in `modes`.
    pub assignments: Vec<usize>,
}

impl MeanShiftResult {
    /// The number of discovered modes.
    pub fn k(&self) -> usize {
        self.modes.len()
    }

    /// Sizes of each mode's basin, indexed like `modes`.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.modes.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Indices of the points attracted to the most popular mode.
    pub fn largest_cluster_members(&self) -> Vec<usize> {
        let sizes = self.cluster_sizes();
        let best = sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == best)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Flat-kernel mean-shift clusterer.
///
/// # Example
///
/// ```
/// use avoc_cluster::{MeanShift, Point};
///
/// let points: Vec<Point> = [1.0, 1.1, 0.9, 9.0, 9.2]
///     .iter().map(|&v| Point::scalar(v)).collect();
/// let fit = MeanShift::new(1.0).fit(&points);
/// assert_eq!(fit.k(), 2);
/// assert_eq!(fit.assignments[0], fit.assignments[1]);
/// assert_ne!(fit.assignments[0], fit.assignments[3]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanShift {
    bandwidth: f64,
    max_iter: usize,
    tol: f64,
}

impl MeanShift {
    /// Creates a mean-shift clusterer with the given kernel bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not finite and positive.
    pub fn new(bandwidth: f64) -> Self {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "bandwidth must be positive, got {bandwidth}"
        );
        MeanShift {
            bandwidth,
            max_iter: 300,
            tol: 1e-6,
        }
    }

    /// Sets the iteration cap per point (default 300).
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }

    /// The kernel bandwidth.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Runs mean-shift: every point ascends to its density mode; modes within
    /// half a bandwidth of each other are merged.
    pub fn fit(&self, points: &[Point]) -> MeanShiftResult {
        if points.is_empty() {
            return MeanShiftResult {
                modes: Vec::new(),
                assignments: Vec::new(),
            };
        }
        let bw_sq = self.bandwidth * self.bandwidth;
        let mut converged: Vec<Point> = Vec::with_capacity(points.len());
        for p in points {
            let mut x = p.clone();
            for _ in 0..self.max_iter {
                let in_window: Vec<Point> = points
                    .iter()
                    .filter(|q| x.distance_sq(q) <= bw_sq)
                    .cloned()
                    .collect();
                let next = centroid(&in_window).expect("window contains x itself");
                let shift = x.distance(&next);
                x = next;
                if shift < self.tol {
                    break;
                }
            }
            converged.push(x);
        }

        // Merge modes closer than bandwidth/2.
        let merge_d = self.bandwidth / 2.0;
        let mut modes: Vec<Point> = Vec::new();
        let mut assignments = vec![0usize; points.len()];
        for (i, m) in converged.iter().enumerate() {
            match modes
                .iter()
                .position(|existing| existing.distance(m) <= merge_d)
            {
                Some(id) => assignments[i] = id,
                None => {
                    modes.push(m.clone());
                    assignments[i] = modes.len() - 1;
                }
            }
        }
        MeanShiftResult { modes, assignments }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(vs: &[f64]) -> Vec<Point> {
        vs.iter().map(|&v| Point::scalar(v)).collect()
    }

    #[test]
    fn empty_input() {
        let fit = MeanShift::new(1.0).fit(&[]);
        assert_eq!(fit.k(), 0);
        assert!(fit.assignments.is_empty());
    }

    #[test]
    fn one_blob_one_mode() {
        let fit = MeanShift::new(1.0).fit(&pts(&[5.0, 5.1, 4.9, 5.05]));
        assert_eq!(fit.k(), 1);
        assert!((fit.modes[0][0] - 5.0).abs() < 0.2);
    }

    #[test]
    fn two_blobs_two_modes() {
        let fit = MeanShift::new(1.0).fit(&pts(&[1.0, 1.1, 0.9, 9.0, 9.1, 8.9]));
        assert_eq!(fit.k(), 2);
        let sizes = fit.cluster_sizes();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn bandwidth_controls_granularity() {
        let points = pts(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let coarse = MeanShift::new(10.0).fit(&points);
        assert_eq!(coarse.k(), 1);
        let fine = MeanShift::new(0.1).fit(&points);
        assert_eq!(fine.k(), 5);
    }

    #[test]
    fn largest_cluster_is_majority() {
        let fit = MeanShift::new(1.0).fit(&pts(&[1.0, 1.1, 0.95, 1.05, 50.0]));
        let members = fit.largest_cluster_members();
        assert_eq!(members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn modes_match_assignment_count() {
        let fit = MeanShift::new(2.0).fit(&pts(&[0.0, 0.5, 20.0, 20.5, 40.0]));
        assert_eq!(fit.assignments.len(), 5);
        assert!(fit.assignments.iter().all(|&a| a < fit.k()));
    }

    #[test]
    fn two_dimensional_modes() {
        let points = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![0.1, 0.0]),
            Point::new(vec![8.0, 8.0]),
            Point::new(vec![8.0, 8.1]),
        ];
        let fit = MeanShift::new(1.0).fit(&points);
        assert_eq!(fit.k(), 2);
        assert_eq!(fit.assignments[0], fit.assignments[1]);
        assert_eq!(fit.assignments[2], fit.assignments[3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_bandwidth_panics() {
        let _ = MeanShift::new(0.0);
    }
}
