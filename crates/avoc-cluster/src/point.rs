//! Multi-dimensional points and distance helpers shared by the clustering
//! algorithms.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A point in `d`-dimensional Euclidean space.
///
/// `Point` is a thin, validated wrapper around a `Vec<f64>`; all clustering
/// algorithms in this crate operate on slices of `Point`s of equal dimension.
///
/// # Example
///
/// ```
/// use avoc_cluster::Point;
///
/// let a = Point::new(vec![0.0, 0.0]);
/// let b = Point::new(vec![3.0, 4.0]);
/// assert_eq!(a.distance(&b), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Point(Vec<f64>);

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `coords` is empty or contains a non-finite value: clustering
    /// over NaN/infinite coordinates has no meaningful result and failing
    /// early keeps every algorithm in the crate panic-free internally.
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(!coords.is_empty(), "a point needs at least one coordinate");
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "point coordinates must be finite"
        );
        Point(coords)
    }

    /// Creates a one-dimensional point.
    pub fn scalar(v: f64) -> Self {
        Point::new(vec![v])
    }

    /// The dimensionality of the point.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Coordinates as a slice.
    pub fn coords(&self) -> &[f64] {
        &self.0
    }

    /// Consumes the point, returning the coordinate vector.
    pub fn into_coords(self) -> Vec<f64> {
        self.0
    }

    /// Euclidean distance to another point.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn distance(&self, other: &Point) -> f64 {
        euclidean(self.coords(), other.coords())
    }

    /// Squared Euclidean distance to another point (avoids the `sqrt`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn distance_sq(&self, other: &Point) -> f64 {
        euclidean_sq(self.coords(), other.coords())
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl From<f64> for Point {
    fn from(v: f64) -> Self {
        Point::scalar(v)
    }
}

impl Index<usize> for Point {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Point {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

/// Squared Euclidean distance between two coordinate slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dimension mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two coordinate slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    euclidean_sq(a, b).sqrt()
}

/// Component-wise mean of a non-empty set of points, i.e. their centroid.
///
/// Returns `None` for an empty input.
pub fn centroid(points: &[Point]) -> Option<Point> {
    let first = points.first()?;
    let dim = first.dim();
    let mut acc = vec![0.0; dim];
    for p in points {
        assert_eq!(p.dim(), dim, "dimension mismatch in centroid");
        for (a, c) in acc.iter_mut().zip(p.coords()) {
            *a += c;
        }
    }
    let n = points.len() as f64;
    for a in &mut acc {
        *a /= n;
    }
    Some(Point::new(acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(vec![1.0, 2.0, 3.0]);
        let b = Point::new(vec![4.0, 6.0, 3.0]);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), 0.0);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn scalar_point_has_dim_one() {
        let p = Point::scalar(42.0);
        assert_eq!(p.dim(), 1);
        assert_eq!(p[0], 42.0);
    }

    #[test]
    #[should_panic(expected = "at least one coordinate")]
    fn empty_point_panics() {
        let _ = Point::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_point_panics() {
        let _ = Point::new(vec![f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mixed_dims_panic() {
        let a = Point::scalar(1.0);
        let b = Point::new(vec![1.0, 2.0]);
        let _ = a.distance(&b);
    }

    #[test]
    fn centroid_of_square() {
        let pts = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![2.0, 0.0]),
            Point::new(vec![2.0, 2.0]),
            Point::new(vec![0.0, 2.0]),
        ];
        let c = centroid(&pts).unwrap();
        assert_eq!(c.coords(), &[1.0, 1.0]);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(centroid(&[]).is_none());
    }

    #[test]
    fn display_formats_coordinates() {
        let p = Point::new(vec![1.0, 2.5]);
        assert_eq!(p.to_string(), "(1, 2.5)");
    }

    #[test]
    fn from_conversions() {
        let p: Point = 3.0.into();
        assert_eq!(p, Point::scalar(3.0));
        let q: Point = vec![1.0, 2.0].into();
        assert_eq!(q.dim(), 2);
    }
}
