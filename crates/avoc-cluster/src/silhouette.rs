//! Silhouette analysis: a label-free quality score for a clustering,
//! used by the ablation harness to compare bootstrap grouping strategies
//! and to sanity-check bandwidth/k choices for the §5 multi-dimensional
//! generalisation.

use crate::point::Point;

/// Mean silhouette coefficient of a clustering, in `[-1, 1]`
/// (higher = tighter, better-separated clusters).
///
/// `assignments[i]` is point `i`'s cluster id. Singleton clusters
/// contribute a coefficient of `0`, per the standard convention. Returns
/// `None` when there are fewer than two clusters or fewer than two points
/// — separation is undefined then.
///
/// # Example
///
/// ```
/// use avoc_cluster::{silhouette::silhouette_score, Point};
///
/// let points: Vec<Point> = [0.0, 0.1, 10.0, 10.1]
///     .iter().map(|&v| Point::scalar(v)).collect();
/// let good = silhouette_score(&points, &[0, 0, 1, 1]).unwrap();
/// let bad = silhouette_score(&points, &[0, 1, 0, 1]).unwrap();
/// assert!(good > 0.9);
/// assert!(bad < 0.0);
/// ```
///
/// # Panics
///
/// Panics when `points` and `assignments` differ in length.
pub fn silhouette_score(points: &[Point], assignments: &[usize]) -> Option<f64> {
    assert_eq!(
        points.len(),
        assignments.len(),
        "points/assignments length mismatch"
    );
    if points.len() < 2 {
        return None;
    }
    let max_id = *assignments.iter().max()?;
    let mut sizes = vec![0usize; max_id + 1];
    for &a in assignments {
        sizes[a] += 1;
    }
    if sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return None;
    }

    let mut total = 0.0;
    for (i, p) in points.iter().enumerate() {
        let own = assignments[i];
        if sizes[own] <= 1 {
            continue; // singleton contributes 0
        }
        // Mean distance to each cluster.
        let mut sums = vec![0.0f64; max_id + 1];
        for (j, q) in points.iter().enumerate() {
            if i != j {
                sums[assignments[j]] += p.distance(q);
            }
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..=max_id)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    Some(total / points.len() as f64)
}

/// Silhouette score of a one-dimensional [`crate::Clustering`] produced by
/// the agreement clusterer, against its original values.
///
/// Returns `None` under the same conditions as [`silhouette_score`].
pub fn clustering_silhouette(values: &[f64], clustering: &crate::Clustering) -> Option<f64> {
    let points: Vec<Point> = values.iter().map(|&v| Point::scalar(v)).collect();
    let mut assignments = vec![0usize; values.len()];
    for (id, cluster) in clustering.clusters().iter().enumerate() {
        for &i in cluster.members() {
            assignments[i] = id;
        }
    }
    silhouette_score(&points, &assignments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AgreementClusterer, MarginMode};

    fn pts(vs: &[f64]) -> Vec<Point> {
        vs.iter().map(|&v| Point::scalar(v)).collect()
    }

    #[test]
    fn well_separated_blobs_score_high() {
        let points = pts(&[0.0, 0.1, 0.2, 10.0, 10.1, 10.2]);
        let s = silhouette_score(&points, &[0, 0, 0, 1, 1, 1]).unwrap();
        assert!(s > 0.9, "score {s}");
    }

    #[test]
    fn shuffled_labels_score_poorly() {
        let points = pts(&[0.0, 0.1, 0.2, 10.0, 10.1, 10.2]);
        let s = silhouette_score(&points, &[0, 1, 0, 1, 0, 1]).unwrap();
        assert!(s < 0.0, "score {s}");
    }

    #[test]
    fn single_cluster_is_undefined() {
        let points = pts(&[1.0, 2.0, 3.0]);
        assert!(silhouette_score(&points, &[0, 0, 0]).is_none());
    }

    #[test]
    fn tiny_inputs_are_undefined() {
        assert!(silhouette_score(&pts(&[1.0]), &[0]).is_none());
        assert!(silhouette_score(&[], &[]).is_none());
    }

    #[test]
    fn singletons_contribute_zero() {
        // Two tight points + one singleton: the singleton drags the mean
        // towards zero but not below the pair's positive score.
        let points = pts(&[0.0, 0.1, 50.0]);
        let s = silhouette_score(&points, &[0, 0, 1]).unwrap();
        assert!(s > 0.5 && s < 1.0, "score {s}");
    }

    #[test]
    fn agreement_clustering_of_voting_round_scores_well() {
        let values = [18.0, 18.1, 17.95, 24.0, 24.2];
        let clustering = AgreementClusterer::new(0.05, MarginMode::Relative).cluster(&values);
        let s = clustering_silhouette(&values, &clustering).unwrap();
        assert!(s > 0.8, "score {s}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = silhouette_score(&pts(&[1.0]), &[0, 1]);
    }
}
