//! Small statistics helpers used by the clustering algorithms (and exported
//! for reuse by the rest of the workspace).

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance of a slice. Returns `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Median of a slice (average of the two middle elements for even lengths).
/// Returns `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in median input"));
    let n = sorted.len();
    if n % 2 == 1 {
        Some(sorted[n / 2])
    } else {
        Some((sorted[n / 2 - 1] + sorted[n / 2]) / 2.0)
    }
}

/// Bayesian Information Criterion for a set of spherical-Gaussian clusters
/// in the X-means style (Pelleg & Moore), with a *per-cluster* variance
/// estimate — the variant used by practical X-means implementations, which is
/// markedly more robust for greedy centroid splitting than a single shared
/// variance.
///
/// `clusters[i] = (size, rss)` gives, for cluster `i`, its point count and
/// its residual sum of squared distances to its own centroid. `dim` is the
/// data dimensionality.
///
/// Larger is better. Returns `f64::NEG_INFINITY` for degenerate inputs (no
/// points). Zero-variance clusters are handled by a variance floor.
pub fn bic(clusters: &[(usize, f64)], dim: usize) -> f64 {
    let k = clusters.len();
    let n: usize = clusters.iter().map(|(s, _)| s).sum();
    if n == 0 || k == 0 {
        return f64::NEG_INFINITY;
    }
    let n_f = n as f64;
    let d = dim as f64;

    let mut log_likelihood = 0.0;
    for &(size, rss) in clusters {
        if size == 0 {
            continue;
        }
        let r = size as f64;
        // Maximum-likelihood variance with a floor to dodge log(0) for
        // perfectly tight clusters.
        let sigma_sq = (rss / r).max(1e-12);
        log_likelihood += r * (r.ln() - n_f.ln())
            - (r * d / 2.0) * (2.0 * std::f64::consts::PI * sigma_sq).ln()
            - r * d / 2.0;
    }
    // Free parameters: k-1 mixture weights, k*d centroid coords, k variances.
    let params = (k as f64 - 1.0) + k as f64 * d + k as f64;
    log_likelihood - params / 2.0 * n_f.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_basic() {
        assert_eq!(variance(&[2.0, 2.0, 2.0]), Some(0.0));
        assert_eq!(variance(&[1.0, 3.0]), Some(1.0));
        assert_eq!(variance(&[]), None);
    }

    #[test]
    fn std_dev_basic() {
        assert_eq!(std_dev(&[1.0, 3.0]), Some(1.0));
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn bic_prefers_true_structure() {
        // Two well-separated tight blobs: splitting into 2 clusters must give
        // a higher BIC than lumping into 1.
        let lump_rss = 2.0 * (5.0f64.powi(2) + 4.9f64.powi(2));
        let one = bic(&[(4, lump_rss)], 1);
        let pair_rss = 2.0 * 0.05f64.powi(2);
        let two = bic(&[(2, pair_rss), (2, pair_rss)], 1);
        assert!(two > one, "two={two} one={one}");
    }

    #[test]
    fn bic_penalises_needless_split() {
        // One tight blob: splitting it should NOT raise BIC.
        // 10 evenly spaced points in [0, 0.9]: rss = sum (x - 0.45)^2.
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
        let m = mean(&xs).unwrap();
        let rss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
        let one = bic(&[(10, rss)], 1);
        // Split into halves [0,0.4] and [0.5,0.9].
        let half_rss: f64 = (0..5)
            .map(|i| {
                let x = i as f64 * 0.1;
                (x - 0.2) * (x - 0.2)
            })
            .sum();
        let two = bic(&[(5, half_rss), (5, half_rss)], 1);
        assert!(one > two, "one={one} two={two}");
    }

    #[test]
    fn bic_degenerate() {
        assert_eq!(bic(&[], 1), f64::NEG_INFINITY);
        assert!(bic(&[(3, 0.0)], 1).is_finite());
    }
}
