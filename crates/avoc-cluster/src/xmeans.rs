//! X-means (Pelleg & Moore, ICML '00): k-means with automatic estimation of
//! the number of clusters via BIC-scored centroid splitting.
//!
//! The AVOC paper names X-means as a candidate for generalising the clustering
//! bootstrap to multi-dimensional data (§5).

use crate::kmeans::KMeans;
use crate::point::{centroid, Point};
use crate::stats::bic;
use rand::Rng;

/// Result of an X-means fit.
#[derive(Debug, Clone, PartialEq)]
pub struct XMeansResult {
    /// Final centroids; `centroids.len()` is the estimated cluster count.
    pub centroids: Vec<Point>,
    /// Assignment of each input point to a centroid index.
    pub assignments: Vec<usize>,
    /// BIC score of the final model (larger is better).
    pub bic: f64,
}

impl XMeansResult {
    /// The estimated number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Indices of the points in the largest cluster.
    pub fn largest_cluster_members(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        let best = sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == best)
            .map(|(i, _)| i)
            .collect()
    }
}

/// X-means estimator searching `k` in `[k_min, k_max]`.
///
/// # Example
///
/// ```
/// use avoc_cluster::{Point, XMeans};
/// use rand::SeedableRng;
///
/// let mut points = Vec::new();
/// for i in 0..20 {
///     points.push(Point::scalar(i as f64 * 0.01));        // blob at ~0
///     points.push(Point::scalar(100.0 + i as f64 * 0.01)); // blob at ~100
/// }
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let fit = XMeans::new(1, 6).fit(&points, &mut rng).expect("enough points");
/// assert_eq!(fit.k(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XMeans {
    k_min: usize,
    k_max: usize,
    max_iter: usize,
}

impl XMeans {
    /// Creates an X-means estimator searching between `k_min` and `k_max`
    /// clusters (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `k_min == 0` or `k_min > k_max`.
    pub fn new(k_min: usize, k_max: usize) -> Self {
        assert!(k_min > 0, "k_min must be at least 1");
        assert!(k_min <= k_max, "k_min must not exceed k_max");
        XMeans {
            k_min,
            k_max,
            max_iter: 100,
        }
    }

    /// Sets the per-k-means Lloyd-iteration cap (default 100).
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }

    /// Fits the model; `None` when there are fewer points than `k_min`.
    pub fn fit<R: Rng + ?Sized>(&self, points: &[Point], rng: &mut R) -> Option<XMeansResult> {
        if points.len() < self.k_min {
            return None;
        }
        let dim = points[0].dim();
        // Start with k_min clusters.
        let base = KMeans::new(self.k_min)
            .with_max_iter(self.max_iter)
            .fit(points, rng)?;
        let mut centroids = base.centroids;
        let mut assignments = base.assignments;

        // Improve-structure loop: try splitting each centroid in two; keep
        // the split when the local BIC of the pair beats the single parent.
        loop {
            if centroids.len() >= self.k_max {
                break;
            }
            let mut new_centroids: Vec<Point> = Vec::new();
            let mut split_any = false;
            for (id, c) in centroids.iter().enumerate() {
                let member_pts: Vec<Point> = points
                    .iter()
                    .zip(&assignments)
                    .filter(|(_, &a)| a == id)
                    .map(|(p, _)| p.clone())
                    .collect();
                if member_pts.len() < 4
                    || centroids.len() + (new_centroids.len().saturating_sub(id)) >= self.k_max
                {
                    new_centroids.push(c.clone());
                    continue;
                }
                let parent_rss: f64 = member_pts.iter().map(|p| p.distance_sq(c)).sum();
                let parent_bic = bic(&[(member_pts.len(), parent_rss)], dim);

                match KMeans::new(2)
                    .with_max_iter(self.max_iter)
                    .fit(&member_pts, rng)
                {
                    Some(split) => {
                        let sizes = split.cluster_sizes();
                        if sizes.contains(&0) {
                            new_centroids.push(c.clone());
                            continue;
                        }
                        let per_cluster: Vec<(usize, f64)> = (0..split.centroids.len())
                            .map(|id| {
                                let rss = member_pts
                                    .iter()
                                    .zip(&split.assignments)
                                    .filter(|(_, &a)| a == id)
                                    .map(|(p, _)| p.distance_sq(&split.centroids[id]))
                                    .sum();
                                (sizes[id], rss)
                            })
                            .collect();
                        let child_bic = bic(&per_cluster, dim);
                        if child_bic > parent_bic {
                            new_centroids.extend(split.centroids);
                            split_any = true;
                        } else {
                            new_centroids.push(c.clone());
                        }
                    }
                    None => new_centroids.push(c.clone()),
                }
            }
            if !split_any {
                break;
            }
            centroids = new_centroids.into_iter().take(self.k_max).collect();
            // Global refinement pass with the new k.
            if let Some(refit) = KMeans::new(centroids.len())
                .with_max_iter(self.max_iter)
                .fit(points, rng)
            {
                centroids = refit.centroids;
                assignments = refit.assignments;
            }
        }

        // Final assignment + global BIC.
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (j, c) in centroids.iter().enumerate() {
                let d = p.distance_sq(c);
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            assignments[i] = best;
        }
        // Recompute centroids for the final assignment to keep them honest.
        for (id, c) in centroids.iter_mut().enumerate() {
            let members: Vec<Point> = points
                .iter()
                .zip(&assignments)
                .filter(|(_, &a)| a == id)
                .map(|(p, _)| p.clone())
                .collect();
            if let Some(m) = centroid(&members) {
                *c = m;
            }
        }
        let mut per_cluster = vec![(0usize, 0.0f64); centroids.len()];
        for (p, &a) in points.iter().zip(&assignments) {
            per_cluster[a].0 += 1;
            per_cluster[a].1 += p.distance_sq(&centroids[a]);
        }
        let score = bic(&per_cluster, dim);
        Some(XMeansResult {
            centroids,
            assignments,
            bic: score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob(center: f64, n: usize, spread: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::scalar(center + spread * (i as f64 / n as f64 - 0.5)))
            .collect()
    }

    #[test]
    fn finds_two_blobs() {
        let mut points = blob(0.0, 20, 0.5);
        points.extend(blob(100.0, 20, 0.5));
        let mut rng = StdRng::seed_from_u64(1);
        let fit = XMeans::new(1, 8).fit(&points, &mut rng).unwrap();
        assert_eq!(fit.k(), 2, "expected 2 clusters, got {}", fit.k());
    }

    #[test]
    fn finds_three_blobs() {
        let mut points = blob(0.0, 15, 0.4);
        points.extend(blob(50.0, 15, 0.4));
        points.extend(blob(100.0, 15, 0.4));
        let mut rng = StdRng::seed_from_u64(2);
        let fit = XMeans::new(1, 8).fit(&points, &mut rng).unwrap();
        assert_eq!(fit.k(), 3, "expected 3 clusters, got {}", fit.k());
    }

    #[test]
    fn single_tight_blob_stays_one_cluster() {
        let points = blob(10.0, 30, 0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let fit = XMeans::new(1, 8).fit(&points, &mut rng).unwrap();
        assert_eq!(fit.k(), 1, "expected 1 cluster, got {}", fit.k());
    }

    #[test]
    fn respects_k_max() {
        let mut points = Vec::new();
        for c in [0.0, 30.0, 60.0, 90.0, 120.0] {
            points.extend(blob(c, 10, 0.2));
        }
        let mut rng = StdRng::seed_from_u64(4);
        let fit = XMeans::new(1, 3).fit(&points, &mut rng).unwrap();
        assert!(fit.k() <= 3);
    }

    #[test]
    fn too_few_points_is_none() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(XMeans::new(2, 4)
            .fit(&[Point::scalar(1.0)], &mut rng)
            .is_none());
    }

    #[test]
    fn largest_cluster_members_covers_majority_blob() {
        let mut points = blob(0.0, 25, 0.3);
        points.extend(blob(100.0, 5, 0.3));
        let mut rng = StdRng::seed_from_u64(6);
        let fit = XMeans::new(1, 6).fit(&points, &mut rng).unwrap();
        let members = fit.largest_cluster_members();
        assert!(members.len() >= 25, "members: {}", members.len());
        assert!(members.contains(&0));
    }

    #[test]
    fn two_dimensional_structure() {
        let mut points = Vec::new();
        for i in 0..15u64 {
            // Deterministic jitter, decorrelated across the two dimensions.
            let ox = ((i * 7) % 15) as f64 * 0.01;
            let oy = ((i * 11) % 15) as f64 * 0.01;
            points.push(Point::new(vec![ox, oy]));
            points.push(Point::new(vec![50.0 + ox, 50.0 - oy]));
        }
        let mut rng = StdRng::seed_from_u64(7);
        let fit = XMeans::new(1, 5).fit(&points, &mut rng).unwrap();
        assert_eq!(fit.k(), 2);
    }
}
