//! Agreement scoring between candidate values (§4 of the paper).
//!
//! The *Standard* history-based voter uses a binary notion of agreement: two
//! values agree when they lie within an accepted error threshold. The
//! *Soft-Dynamic-Threshold* variant (Das & Bhattacharya) grades agreement: a
//! score of `1` within the threshold, decaying linearly to `0` at a
//! configurable multiple of it. The *Hybrid* voter and AVOC's clustering
//! bootstrap both reuse this soft score.

use avoc_cluster::MarginMode;
use serde::{Deserialize, Serialize};

/// Parameters governing how two scalar values are compared for agreement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgreementParams {
    /// The accepted error threshold (relative fraction or absolute units
    /// depending on `margin`). Paper UC-1 uses `0.05` relative.
    pub error: f64,
    /// The soft-threshold multiplier: values are in *graded* agreement up to
    /// `soft_multiplier × error`. `1.0` collapses to binary agreement.
    /// Paper UC-1 uses `2`.
    pub soft_multiplier: f64,
    /// Whether `error` scales with the magnitude of the compared values
    /// (soft-dynamic) or is a fixed distance.
    pub margin: MarginMode,
}

impl AgreementParams {
    /// Creates agreement parameters.
    ///
    /// # Panics
    ///
    /// Panics if `error` is negative/non-finite or `soft_multiplier < 1`.
    pub fn new(error: f64, soft_multiplier: f64, margin: MarginMode) -> Self {
        assert!(
            error.is_finite() && error >= 0.0,
            "error must be finite and non-negative, got {error}"
        );
        assert!(
            soft_multiplier.is_finite() && soft_multiplier >= 1.0,
            "soft_multiplier must be at least 1, got {soft_multiplier}"
        );
        AgreementParams {
            error,
            soft_multiplier,
            margin,
        }
    }

    /// The paper's UC-1 configuration: 5% relative error, soft multiplier 2.
    pub fn paper_default() -> Self {
        AgreementParams::new(0.05, 2.0, MarginMode::Relative)
    }

    /// The tolerance for comparing `a` and `b`.
    pub fn tolerance(&self, a: f64, b: f64) -> f64 {
        match self.margin {
            MarginMode::Relative => self.error * a.abs().max(b.abs()),
            MarginMode::Absolute => self.error,
        }
    }

    /// Binary agreement: `1.0` when within tolerance, else `0.0`.
    pub fn binary_score(&self, a: f64, b: f64) -> f64 {
        if (a - b).abs() <= self.tolerance(a, b) {
            1.0
        } else {
            0.0
        }
    }

    /// Soft-dynamic-threshold agreement score in `[0, 1]`:
    ///
    /// * `1.0` within the accepted threshold,
    /// * linear decay between the threshold and `soft_multiplier ×` it,
    /// * `0.0` beyond.
    pub fn soft_score(&self, a: f64, b: f64) -> f64 {
        let d = (a - b).abs();
        let tol = self.tolerance(a, b);
        if d <= tol {
            return 1.0;
        }
        let soft_edge = tol * self.soft_multiplier;
        if d >= soft_edge || soft_edge <= tol {
            return 0.0;
        }
        1.0 - (d - tol) / (soft_edge - tol)
    }

    /// Builds an [`avoc_cluster::AgreementClusterer`] mirroring these
    /// parameters — "the clustering step ... is selected to mirror the
    /// parameters of the given algorithm" (§5).
    pub fn clusterer(&self) -> avoc_cluster::AgreementClusterer {
        avoc_cluster::AgreementClusterer::new(self.error, self.margin)
    }
}

impl Default for AgreementParams {
    fn default() -> Self {
        AgreementParams::paper_default()
    }
}

/// Pairwise agreement scores among one round's candidates.
///
/// Row `i`, column `j` holds the score between candidates `i` and `j`; the
/// diagonal is `1.0`. Used by the Hybrid voter's agreement-based weights.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AgreementMatrix {
    n: usize,
    scores: Vec<f64>,
}

impl AgreementMatrix {
    /// An empty matrix, ready to be filled in place by
    /// [`AgreementMatrix::soft_in_place`] / [`AgreementMatrix::binary_in_place`].
    pub fn empty() -> Self {
        AgreementMatrix {
            n: 0,
            scores: Vec::new(),
        }
    }

    /// Computes the soft-score matrix for `values`.
    pub fn soft(params: &AgreementParams, values: &[f64]) -> Self {
        let mut m = Self::empty();
        m.soft_in_place(params, values);
        m
    }

    /// Computes the binary-score matrix for `values`.
    pub fn binary(params: &AgreementParams, values: &[f64]) -> Self {
        let mut m = Self::empty();
        m.binary_in_place(params, values);
        m
    }

    /// Recomputes this matrix as the soft-score matrix for `values`, reusing
    /// the existing buffer — the hot-path variant of [`AgreementMatrix::soft`]
    /// that only allocates while the candidate count is still growing.
    pub fn soft_in_place(&mut self, params: &AgreementParams, values: &[f64]) {
        self.fill(values, |a, b| params.soft_score(a, b));
    }

    /// Recomputes this matrix as the binary-score matrix for `values`,
    /// reusing the existing buffer.
    pub fn binary_in_place(&mut self, params: &AgreementParams, values: &[f64]) {
        self.fill(values, |a, b| params.binary_score(a, b));
    }

    fn fill(&mut self, values: &[f64], score: impl Fn(f64, f64) -> f64) {
        let n = values.len();
        self.n = n;
        self.scores.clear();
        self.scores.resize(n * n, 1.0);
        for i in 0..n {
            for j in (i + 1)..n {
                let s = score(values[i], values[j]);
                self.scores[i * n + j] = s;
                self.scores[j * n + i] = s;
            }
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The score between candidates `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn score(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.scores[i * self.n + j]
    }

    /// Candidate `i`'s total agreement with its peers (diagonal excluded),
    /// i.e. the Hybrid voter's per-round agreement weight.
    pub fn peer_support(&self, i: usize) -> f64 {
        assert!(i < self.n, "index out of bounds");
        (0..self.n)
            .filter(|&j| j != i)
            .map(|j| self.score(i, j))
            .sum()
    }

    /// Peer support restricted to non-excluded peers; used when module
    /// elimination removes candidates from the agreement pool.
    pub fn peer_support_among(&self, i: usize, included: &[bool]) -> f64 {
        assert_eq!(included.len(), self.n, "inclusion mask length mismatch");
        (0..self.n)
            .filter(|&j| j != i && included[j])
            .map(|j| self.score(i, j))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_score_thresholds() {
        let p = AgreementParams::new(0.05, 2.0, MarginMode::Relative);
        // tol = 0.05 × max(|a|, |b|)
        assert_eq!(p.binary_score(100.0, 104.0), 1.0); // tol 5.2, d 4.0
        assert_eq!(p.binary_score(100.0, 106.0), 0.0); // tol 5.3, d 6.0
                                                       // symmetric
        assert_eq!(p.binary_score(104.0, 100.0), 1.0);
    }

    #[test]
    fn soft_score_decays_linearly() {
        let p = AgreementParams::new(0.05, 2.0, MarginMode::Relative);
        // tol = 5.25 (max |a|,|b| = 105), soft edge = 10.5
        assert_eq!(p.soft_score(100.0, 105.0), 1.0);
        let mid = p.soft_score(100.0, 107.5);
        assert!(mid > 0.0 && mid < 1.0, "mid = {mid}");
        assert_eq!(p.soft_score(100.0, 112.0), 0.0);
    }

    #[test]
    fn soft_score_halfway_point() {
        let p = AgreementParams::new(1.0, 3.0, MarginMode::Absolute);
        // tol = 1, soft edge = 3; distance 2 is halfway through the decay.
        assert!((p.soft_score(0.0, 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn soft_multiplier_one_is_binary() {
        let p = AgreementParams::new(1.0, 1.0, MarginMode::Absolute);
        assert_eq!(p.soft_score(0.0, 0.5), 1.0);
        assert_eq!(p.soft_score(0.0, 1.5), 0.0);
    }

    #[test]
    fn absolute_margin_ignores_magnitude() {
        let p = AgreementParams::new(2.0, 2.0, MarginMode::Absolute);
        assert_eq!(p.binary_score(-80.0, -78.5), 1.0);
        assert_eq!(p.binary_score(-80.0, -77.0), 0.0);
    }

    #[test]
    fn paper_default_matches_listing_1() {
        let p = AgreementParams::paper_default();
        assert_eq!(p.error, 0.05);
        assert_eq!(p.soft_multiplier, 2.0);
        assert_eq!(p.margin, MarginMode::Relative);
    }

    #[test]
    fn matrix_diagonal_and_symmetry() {
        let p = AgreementParams::paper_default();
        let m = AgreementMatrix::soft(&p, &[18.0, 18.2, 25.0]);
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m.score(i, i), 1.0);
            for j in 0..3 {
                assert_eq!(m.score(i, j), m.score(j, i));
            }
        }
    }

    #[test]
    fn peer_support_identifies_outlier() {
        let p = AgreementParams::paper_default();
        let m = AgreementMatrix::soft(&p, &[18.0, 18.1, 18.2, 25.0]);
        let outlier = m.peer_support(3);
        for i in 0..3 {
            assert!(m.peer_support(i) > outlier);
        }
        assert_eq!(outlier, 0.0);
    }

    #[test]
    fn peer_support_among_respects_mask() {
        let p = AgreementParams::new(1.0, 1.0, MarginMode::Absolute);
        let m = AgreementMatrix::binary(&p, &[0.0, 0.5, 0.6]);
        let full = m.peer_support(0);
        let masked = m.peer_support_among(0, &[true, false, true]);
        assert_eq!(full, 2.0);
        assert_eq!(masked, 1.0);
    }

    #[test]
    fn empty_matrix() {
        let p = AgreementParams::paper_default();
        let m = AgreementMatrix::soft(&p, &[]);
        assert!(m.is_empty());
    }

    #[test]
    fn in_place_rebuild_matches_fresh_build() {
        let p = AgreementParams::paper_default();
        let mut reused = AgreementMatrix::empty();
        // Shrinking then growing must fully overwrite stale scores.
        for values in [
            &[18.0, 18.1, 25.0, 18.2][..],
            &[1.0, 2.0][..],
            &[18.0, 18.05, 18.1][..],
        ] {
            reused.soft_in_place(&p, values);
            assert_eq!(reused, AgreementMatrix::soft(&p, values));
            reused.binary_in_place(&p, values);
            assert_eq!(reused, AgreementMatrix::binary(&p, values));
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn soft_multiplier_below_one_panics() {
        let _ = AgreementParams::new(0.05, 0.5, MarginMode::Relative);
    }

    #[test]
    fn clusterer_mirrors_params() {
        let p = AgreementParams::new(0.07, 2.0, MarginMode::Relative);
        let c = p.clusterer();
        assert_eq!(c.threshold(), 0.07);
        assert_eq!(c.mode(), MarginMode::Relative);
    }
}
