//! Plain (unweighted) averaging — the stateless baseline every history-aware
//! algorithm is compared against, and the fallback the §4 algorithms revert
//! to "on the first round until a historical record is established or when
//! the weights become 0".

use super::{Verdict, Voter};
use crate::error::VoteError;
use crate::round::Round;

/// Stateless plain-average voter (`avg.` in Fig. 6).
///
/// # Example
///
/// ```
/// use avoc_core::algorithms::{AverageVoter, Voter};
/// use avoc_core::Round;
///
/// let mut voter = AverageVoter::new();
/// let verdict = voter.vote(&Round::from_numbers(0, &[18.0, 18.4, 18.2]))?;
/// assert_eq!(verdict.number(), Some(18.2));
/// # Ok::<(), avoc_core::VoteError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AverageVoter {
    _priv: (),
}

impl AverageVoter {
    /// Creates a plain-average voter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Voter for AverageVoter {
    fn name(&self) -> &'static str {
        "average"
    }

    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        let mut out = Verdict::empty();
        self.vote_into(round, &mut out)?;
        Ok(out)
    }

    fn vote_into(&mut self, round: &Round, out: &mut Verdict) -> Result<(), VoteError> {
        // Single streaming pass instead of collecting candidate vectors:
        // the plain average needs no per-candidate state at all.
        let mut sum = 0.0;
        let mut n = 0usize;
        for b in &round.ballots {
            if let Some(v) = &b.value {
                match v.as_number() {
                    Some(x) => {
                        sum += x;
                        n += 1;
                    }
                    None => {
                        return Err(VoteError::TypeMismatch {
                            expected: "number",
                            got: v.kind(),
                        })
                    }
                }
            }
        }
        if n == 0 {
            return Err(VoteError::EmptyRound);
        }
        let output = sum / n as f64;
        // Confidence: with uniform weights this is the fraction of candidates
        // within the default agreement band of the mean.
        let params = crate::agreement::AgreementParams::paper_default();
        let agreeing = round
            .present_numbers()
            .filter(|&(_, v)| params.binary_score(v, output) > 0.0)
            .count();
        out.value = output.into();
        out.weights.clear();
        out.weights
            .extend(round.present_numbers().map(|(m, _)| (m, 1.0 / n as f64)));
        out.excluded.clear();
        out.confidence = agreeing as f64 / n as f64;
        out.bootstrapped = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::{Ballot, ModuleId};

    #[test]
    fn averages_present_values_only() {
        let mut v = AverageVoter::new();
        let round = Round::from_sparse_numbers(0, &[Some(10.0), None, Some(20.0)]);
        let verdict = v.vote(&round).unwrap();
        assert_eq!(verdict.number(), Some(15.0));
        assert_eq!(verdict.weights.len(), 2);
    }

    #[test]
    fn empty_round_is_an_error() {
        let mut v = AverageVoter::new();
        let round = Round::from_sparse_numbers(0, &[None, None]);
        assert!(matches!(v.vote(&round), Err(VoteError::EmptyRound)));
    }

    #[test]
    fn skew_is_proportional_to_outlier() {
        let mut v = AverageVoter::new();
        let clean = v.vote(&Round::from_numbers(0, &[18.0; 5])).unwrap();
        let faulty = v
            .vote(&Round::from_numbers(1, &[18.0, 18.0, 18.0, 18.0, 24.0]))
            .unwrap();
        let skew = faulty.number().unwrap() - clean.number().unwrap();
        assert!((skew - 1.2).abs() < 1e-12); // 6/5
    }

    #[test]
    fn rejects_text_ballots() {
        let mut v = AverageVoter::new();
        let round = Round::new(0, vec![Ballot::new(ModuleId::new(0), "x")]);
        assert!(matches!(
            v.vote(&round),
            Err(VoteError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn is_stateless() {
        let v = AverageVoter::new();
        assert!(!v.is_stateful());
        assert!(v.histories().is_empty());
    }
}
