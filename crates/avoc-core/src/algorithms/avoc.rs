//! AVOC — Accurate Voting with Clustering (§5, the paper's contribution).
//!
//! AVOC "builds atop the Hybrid algorithm by applying a simplified
//! clustering algorithm during the first round when the weights are all 0"
//! (or all at the initial value — the two flat-history conditions: "all
//! records are 1 (indicating a new set) or 0 (indicating a failure of the
//! system or an extreme data spike)"). The clustering round:
//!
//! 1. eliminates obvious outliers *in-place*, improving that round's output
//!    over the plain-mean fallback the other algorithms use, and
//! 2. adjusts the historical records from the cluster membership, so the
//!    voter "already learns to exclude [the outlier] from round 2" —
//!    the bootstrap boost behind the paper's 4× convergence claim.

use super::clustering_only::cluster_vote;
use super::common;
use super::hybrid::HybridVoter;
use super::{Verdict, Voter, VoterConfig};
use crate::collation::Collation;
use crate::error::VoteError;
use crate::history::{HistoryStore, MemoryHistory, INITIAL_HISTORY};
use crate::round::{ModuleId, Round};

/// The AVOC voter: Hybrid plus clustering bootstrap.
///
/// # Example
///
/// ```
/// use avoc_core::algorithms::{AvocVoter, Voter};
/// use avoc_core::Round;
///
/// let mut voter = AvocVoter::with_defaults();
/// // Fresh history → the first round is a clustering round, so the
/// // outlier never touches the output.
/// let verdict = voter.vote(&Round::from_numbers(0, &[18.0, 18.1, 24.0, 17.9]))?;
/// assert!(verdict.bootstrapped);
/// assert!(verdict.number().unwrap() < 19.0);
/// # Ok::<(), avoc_core::VoteError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AvocVoter<S: HistoryStore = MemoryHistory> {
    inner: HybridVoter<S>,
    last_output: Option<f64>,
}

impl AvocVoter<MemoryHistory> {
    /// Creates an AVOC voter with the paper's Listing-1 configuration:
    /// error 0.05, soft threshold 2, hybrid history, mean-nearest-neighbour
    /// collation, bootstrapping enabled.
    pub fn with_defaults() -> Self {
        Self::new(
            VoterConfig::default().with_collation(Collation::MeanNearestNeighbor),
            MemoryHistory::new(),
        )
    }
}

impl<S: HistoryStore> AvocVoter<S> {
    /// Creates an AVOC voter over the given history store.
    pub fn new(config: VoterConfig, store: S) -> Self {
        AvocVoter {
            inner: HybridVoter::new(config, store),
            last_output: None,
        }
    }

    /// The voter's configuration.
    pub fn config(&self) -> &VoterConfig {
        self.inner.config()
    }

    /// Whether the next round would trigger the clustering bootstrap: every
    /// candidate record is still at its initial state (a new set — the
    /// paper's "all records are 1") or every record has collapsed to `0`
    /// (a system failure or extreme data spike).
    pub fn bootstrap_pending(&self, round: &Round) -> bool {
        // One keyed store lookup per ballot — not a linear scan over a
        // freshly allocated snapshot, which made this check O(n²) and put
        // an allocation in front of every single vote.
        let store = self.inner.store();
        let mut any = false;
        let mut all_new = true;
        let mut all_zero = true;
        for ballot in &round.ballots {
            any = true;
            match store.get(ballot.module) {
                None => all_zero = false, // unrecorded ≠ collapsed
                Some(h) => {
                    all_new = false;
                    if h.abs() > 1e-12 {
                        all_zero = false;
                    }
                }
            }
        }
        any && (all_new || all_zero)
    }
}

impl<S: HistoryStore + Send> Voter for AvocVoter<S> {
    fn name(&self) -> &'static str {
        "avoc"
    }

    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        let mut out = Verdict::empty();
        self.vote_into(round, &mut out)?;
        Ok(out)
    }

    fn vote_into(&mut self, round: &Round, out: &mut Verdict) -> Result<(), VoteError> {
        if !self.bootstrap_pending(round) {
            self.inner.vote_inner_into(round, out)?;
            self.last_output = out.number();
            return Ok(());
        }

        // Clustering bootstrap round — fires once per (re)start, so its
        // allocations are off the steady-state hot path.
        let cand = common::candidates(round)?;
        let values: Vec<f64> = cand.iter().map(|(_, v)| *v).collect();
        let verdict = cluster_vote(self.inner.config(), &cand, &values, self.last_output)?;

        // "Better history adjustment in round 1": cluster membership seeds
        // the records — members of the winning group keep full trust,
        // outliers are zeroed so the ME step of Hybrid excludes them from
        // round 2 onward.
        let member_score: Vec<f64> = verdict
            .weights
            .iter()
            .map(|(_, w)| if *w > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let store = self.inner.store_mut();
        for ((m, _), &s) in cand.iter().zip(&member_score) {
            store.set(*m, if s > 0.0 { INITIAL_HISTORY } else { 0.0 });
        }

        self.last_output = verdict.number();
        *out = verdict;
        Ok(())
    }

    fn histories(&self) -> Vec<(ModuleId, f64)> {
        self.inner.histories()
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.last_output = None;
    }

    fn seed_history(&mut self, records: &[(ModuleId, f64)]) {
        // Warm records suppress the clustering bootstrap by construction:
        // `bootstrap_pending` is derived purely from store flatness, so a
        // seeded non-flat store resumes Hybrid voting directly (the whole
        // point of restoring a checkpoint). `last_output` is only consulted
        // inside a bootstrap round, so it needs no restoration here.
        self.inner.seed_history(records);
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> ModuleId {
        ModuleId::new(i)
    }

    fn faulty_round(round: u64) -> Round {
        Round::from_numbers(round, &[18.0, 18.1, 17.9, 24.0, 18.05])
    }

    #[test]
    fn first_round_is_bootstrapped() {
        let mut v = AvocVoter::with_defaults();
        let verdict = v.vote(&faulty_round(0)).unwrap();
        assert!(verdict.bootstrapped);
        assert!(verdict.excluded.contains(&m(3)));
    }

    #[test]
    fn second_round_uses_hybrid_with_seeded_history() {
        let mut v = AvocVoter::with_defaults();
        v.vote(&faulty_round(0)).unwrap();
        // Bootstrap zeroed the outlier's record...
        assert_eq!(v.histories()[3].1, 0.0);
        // ...so round 2 is a regular Hybrid round that excludes it.
        let r2 = v.vote(&faulty_round(1)).unwrap();
        assert!(!r2.bootstrapped);
        assert!(r2.excluded.contains(&m(3)));
    }

    #[test]
    fn bootstrap_fires_once_on_healthy_data() {
        let mut v = AvocVoter::with_defaults();
        let r1 = v
            .vote(&Round::from_numbers(0, &[18.0, 18.1, 18.05]))
            .unwrap();
        assert!(r1.bootstrapped);
        // The bootstrap seeded records for every member, so "new set" no
        // longer holds: round 2 onwards is regular Hybrid.
        let r2 = v
            .vote(&Round::from_numbers(1, &[18.0, 18.1, 18.05]))
            .unwrap();
        assert!(!r2.bootstrapped);
        let r3 = v
            .vote(&Round::from_numbers(2, &[18.0, 18.1, 18.05]))
            .unwrap();
        assert!(!r3.bootstrapped);
        assert!((r2.number().unwrap() - r3.number().unwrap()).abs() < 0.11);
    }

    #[test]
    fn collapse_triggers_fallback_clustering() {
        let store = MemoryHistory::with_records([(m(0), 0.0), (m(1), 0.0), (m(2), 0.0)]);
        let cfg = VoterConfig::default().with_collation(Collation::MeanNearestNeighbor);
        let mut v = AvocVoter::new(cfg, store);
        let round = Round::from_numbers(0, &[18.0, 18.1, 30.0]);
        let verdict = v.vote(&round).unwrap();
        assert!(
            verdict.bootstrapped,
            "all-zero records must trigger fallback"
        );
        assert!(verdict.number().unwrap() < 19.0);
    }

    #[test]
    fn mixed_histories_do_not_bootstrap() {
        let store = MemoryHistory::with_records([(m(0), 1.0), (m(1), 0.6)]);
        let cfg = VoterConfig::default().with_collation(Collation::MeanNearestNeighbor);
        let mut v = AvocVoter::new(cfg, store);
        let verdict = v.vote(&Round::from_numbers(0, &[18.0, 18.1])).unwrap();
        assert!(!verdict.bootstrapped);
    }

    #[test]
    fn converges_faster_than_plain_hybrid_after_injection() {
        // The 4× claim, in miniature: rounds until the output returns to the
        // clean value after a fault appears at bootstrap time.
        let base = [18.0, 18.1, 17.9, 18.2, 18.05];
        let clean_out = {
            let mut v = HybridVoter::with_defaults();
            let mut out = 0.0;
            for r in 0..5 {
                out = v
                    .vote(&Round::from_numbers(r, &base))
                    .unwrap()
                    .number()
                    .unwrap();
            }
            out
        };

        let rounds_to_converge = |mut voter: Box<dyn Voter>| -> usize {
            let mut with_fault = base;
            with_fault[3] += 6.0;
            for r in 0..100 {
                let out = voter
                    .vote(&Round::from_numbers(r, &with_fault))
                    .unwrap()
                    .number()
                    .unwrap();
                if (out - clean_out).abs() < 0.1 {
                    return r as usize;
                }
            }
            100
        };

        let avoc_rounds = rounds_to_converge(Box::new(AvocVoter::with_defaults()));
        let hybrid_rounds = rounds_to_converge(Box::new(HybridVoter::with_defaults()));
        assert!(
            avoc_rounds <= hybrid_rounds,
            "avoc {avoc_rounds} vs hybrid {hybrid_rounds}"
        );
        assert_eq!(avoc_rounds, 0, "bootstrap should fix round 1 already");
    }

    #[test]
    fn reset_restores_bootstrap() {
        let mut v = AvocVoter::with_defaults();
        v.vote(&faulty_round(0)).unwrap();
        v.vote(&faulty_round(1)).unwrap();
        v.reset();
        let verdict = v.vote(&faulty_round(2)).unwrap();
        assert!(verdict.bootstrapped);
    }

    #[test]
    fn name_and_statefulness() {
        let v = AvocVoter::with_defaults();
        assert_eq!(v.name(), "avoc");
        assert!(v.is_stateful());
    }

    #[test]
    fn bootstrap_pending_scales_to_many_modules() {
        // Regression for the O(n²) snapshot scan: with hundreds of modules
        // the keyed lookup must stay correct for all three regimes (fresh,
        // mixed, collapsed).
        let n = 512u32;
        let values: Vec<f64> = (0..n).map(|i| 18.0 + (i % 7) as f64 * 0.01).collect();
        let round = Round::from_numbers(0, &values);

        let mut fresh = AvocVoter::with_defaults();
        assert!(fresh.bootstrap_pending(&round), "fresh set must bootstrap");
        fresh.vote(&round).unwrap();
        assert!(
            !fresh.bootstrap_pending(&Round::new(1, round.ballots.clone())),
            "seeded records must stop bootstrapping"
        );

        let collapsed = AvocVoter::new(
            VoterConfig::default().with_collation(Collation::MeanNearestNeighbor),
            MemoryHistory::with_records((0..n).map(|i| (m(i), 0.0))),
        );
        assert!(
            collapsed.bootstrap_pending(&round),
            "all-zero records must bootstrap"
        );

        let mut mixed_records: Vec<(ModuleId, f64)> = (0..n).map(|i| (m(i), 0.0)).collect();
        mixed_records[300].1 = 0.7;
        let mixed = AvocVoter::new(
            VoterConfig::default().with_collation(Collation::MeanNearestNeighbor),
            MemoryHistory::with_records(mixed_records),
        );
        assert!(
            !mixed.bootstrap_pending(&round),
            "one live record must veto the bootstrap"
        );
    }
}
