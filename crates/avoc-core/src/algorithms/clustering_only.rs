//! Clustering-Only Voting (`COV` / `Clustering` in Fig. 6): AVOC's
//! agreement-clustering step used standalone, every round, with no history.
//!
//! The paper finds COV "significantly outperforms [the] other stateless
//! approach, i.e., weighted average without history", making it the right
//! fit for "scenarios where maintaining historical result records is
//! impractical: short-lived sensor measurements, one-time comparisons of
//! datasets, etc." (§7).

use super::common;
use super::{Verdict, Voter, VoterConfig};
use crate::collation::Collation;
use crate::error::VoteError;
use crate::round::Round;

/// Stateless clustering-only voter.
///
/// Every round: group the candidates with the agreement clusterer mirroring
/// the configured parameters, take the largest group, and emit its mean
/// (amalgamation) or its member nearest the mean (selection), per the
/// configured collation.
///
/// # Example
///
/// ```
/// use avoc_core::algorithms::{ClusteringOnlyVoter, Voter};
/// use avoc_core::Round;
///
/// let mut voter = ClusteringOnlyVoter::new(Default::default());
/// // The 25.0 outlier is excluded in the very first round.
/// let verdict = voter.vote(&Round::from_numbers(0, &[18.0, 18.2, 25.0, 18.1]))?;
/// assert!((verdict.number().unwrap() - 18.1).abs() < 1e-9);
/// # Ok::<(), avoc_core::VoteError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClusteringOnlyVoter {
    config: VoterConfig,
    last_output: Option<f64>,
}

impl ClusteringOnlyVoter {
    /// Creates a clustering-only voter.
    pub fn new(config: VoterConfig) -> Self {
        ClusteringOnlyVoter {
            config,
            last_output: None,
        }
    }

    /// The voter's configuration.
    pub fn config(&self) -> &VoterConfig {
        &self.config
    }
}

impl Voter for ClusteringOnlyVoter {
    fn name(&self) -> &'static str {
        "clustering-only"
    }

    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        let cand = common::candidates(round)?;
        let values: Vec<f64> = cand.iter().map(|(_, v)| *v).collect();
        let verdict = cluster_vote(&self.config, &cand, &values, self.last_output)?;
        self.last_output = verdict.number();
        Ok(verdict)
    }
}

/// The clustering round shared by [`ClusteringOnlyVoter`] and
/// [`super::AvocVoter`]'s bootstrap: cluster, pick the largest group (ties
/// broken near `reference` when available), collate within it.
pub(crate) fn cluster_vote(
    config: &VoterConfig,
    cand: &[(crate::ModuleId, f64)],
    values: &[f64],
    reference: Option<f64>,
) -> Result<Verdict, VoteError> {
    let clusterer = config.agreement.clusterer();
    let clustering = clusterer.cluster(values);
    let winner = match reference {
        Some(r) => clustering.largest_cluster_near(r),
        None => clustering.largest_cluster(),
    }
    .ok_or(VoteError::EmptyRound)?;

    let output = match config.collation {
        Collation::MeanNearestNeighbor => winner.nearest_real_value(),
        // Median of the winning group degenerates to its mean-ish middle;
        // WeightedMean and Median both emit the group mean here because the
        // group members are unweighted peers.
        Collation::WeightedMean | Collation::Median => winner.mean(),
    };

    let member_set: Vec<bool> = {
        let mut mask = vec![false; values.len()];
        for &i in winner.members() {
            mask[i] = true;
        }
        mask
    };
    let weights: Vec<f64> = member_set
        .iter()
        .map(|&m| if m { 1.0 } else { 0.0 })
        .collect();
    Ok(Verdict {
        value: output.into(),
        excluded: common::excluded_modules(cand, &weights),
        weights: cand
            .iter()
            .zip(&weights)
            .map(|((m, _), &w)| (*m, w))
            .collect(),
        confidence: clustering.majority_fraction(),
        bootstrapped: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::ModuleId;

    fn m(i: u32) -> ModuleId {
        ModuleId::new(i)
    }

    #[test]
    fn outlier_excluded_from_first_round() {
        let mut v = ClusteringOnlyVoter::new(Default::default());
        let verdict = v
            .vote(&Round::from_numbers(0, &[18.0, 18.1, 17.9, 24.0, 18.05]))
            .unwrap();
        assert_eq!(verdict.excluded, vec![m(3)]);
        assert!((verdict.number().unwrap() - 18.0125).abs() < 1e-9);
        assert!(verdict.bootstrapped);
    }

    #[test]
    fn confidence_is_majority_fraction() {
        let mut v = ClusteringOnlyVoter::new(Default::default());
        let verdict = v
            .vote(&Round::from_numbers(0, &[18.0, 18.1, 25.0, 18.05]))
            .unwrap();
        assert_eq!(verdict.confidence, 0.75);
    }

    #[test]
    fn mean_nearest_neighbor_selects_member() {
        let cfg =
            VoterConfig::default().with_collation(crate::collation::Collation::MeanNearestNeighbor);
        let mut v = ClusteringOnlyVoter::new(cfg);
        let out = v
            .vote(&Round::from_numbers(0, &[18.0, 18.4, 18.1, 30.0]))
            .unwrap()
            .number()
            .unwrap();
        assert!([18.0, 18.4, 18.1].contains(&out));
    }

    #[test]
    fn ties_break_towards_previous_output() {
        let mut v = ClusteringOnlyVoter::new(Default::default());
        // Establish a previous output near 10.
        v.vote(&Round::from_numbers(0, &[10.0, 10.1, 10.05]))
            .unwrap();
        // Two equal camps: near-10 wins because of the previous output.
        let verdict = v
            .vote(&Round::from_numbers(1, &[10.0, 10.1, 50.0, 50.1]))
            .unwrap();
        assert!(verdict.number().unwrap() < 20.0);
    }

    #[test]
    fn no_state_in_histories() {
        let mut v = ClusteringOnlyVoter::new(Default::default());
        v.vote(&Round::from_numbers(0, &[1.0, 1.0])).unwrap();
        assert!(v.histories().is_empty());
        assert!(!v.is_stateful());
    }

    #[test]
    fn all_disagreeing_values_pick_singleton_cluster() {
        let mut v = ClusteringOnlyVoter::new(Default::default());
        // Every value is its own cluster; ties broken by variance then index.
        let verdict = v
            .vote(&Round::from_numbers(0, &[0.0, 100.0, 200.0]))
            .unwrap();
        assert_eq!(verdict.weights.iter().filter(|(_, w)| *w > 0.0).count(), 1);
        assert!(verdict.confidence < 0.5);
    }

    #[test]
    fn empty_round_errors() {
        let mut v = ClusteringOnlyVoter::new(Default::default());
        assert!(matches!(
            v.vote(&Round::from_sparse_numbers(0, &[None])),
            Err(VoteError::EmptyRound)
        ));
    }
}
