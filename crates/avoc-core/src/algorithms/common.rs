//! Shared plumbing for the history-aware voters.

use super::Verdict;
use crate::agreement::{AgreementMatrix, AgreementParams};
use crate::error::VoteError;
use crate::history::HistoryStore;
use crate::round::{ModuleId, Round};
use crate::value::Value;

/// Tolerance used when comparing a history value against the mean: a module
/// exactly *at* the average is not "below average".
pub(crate) const ELIMINATION_EPS: f64 = 1e-9;

/// Reusable per-voter scratch buffers for the fusion hot path.
///
/// Every buffer is cleared and refilled each round; once the candidate count
/// stops growing, no call that writes only into a `Scratch` touches the
/// allocator again.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scratch {
    /// Numeric candidates of the current round.
    pub cand: Vec<(ModuleId, f64)>,
    /// Candidate values, aligned with `cand`.
    pub values: Vec<f64>,
    /// Per-candidate history records, aligned with `cand`.
    pub histories: Vec<f64>,
    /// Module-Elimination inclusion mask, aligned with `cand`.
    pub mask: Vec<bool>,
    /// Per-candidate vote weights, aligned with `cand`.
    pub weights: Vec<f64>,
    /// Per-candidate agreement scores driving history updates.
    pub scores: Vec<f64>,
    /// Pairwise agreement matrix, rebuilt in place each round.
    pub matrix: AgreementMatrix,
}

/// Extracts the numeric candidates of a round, failing on an entirely
/// missing round.
pub(crate) fn candidates(round: &Round) -> Result<Vec<(ModuleId, f64)>, VoteError> {
    let mut cand = Vec::new();
    candidates_into(round, &mut cand)?;
    Ok(cand)
}

/// [`candidates`] into a reusable buffer (cleared first).
pub(crate) fn candidates_into(
    round: &Round,
    out: &mut Vec<(ModuleId, f64)>,
) -> Result<(), VoteError> {
    round.numeric_candidates_into(out)?;
    if out.is_empty() {
        Err(VoteError::EmptyRound)
    } else {
        Ok(())
    }
}

/// Fetches (initialising when absent) the history of each candidate module.
pub(crate) fn fetch_histories<S: HistoryStore>(
    store: &mut S,
    cand: &[(ModuleId, f64)],
) -> Vec<f64> {
    cand.iter().map(|(m, _)| store.get_or_init(*m)).collect()
}

/// [`fetch_histories`] into a reusable buffer (cleared first).
pub(crate) fn fetch_histories_into<S: HistoryStore>(
    store: &mut S,
    cand: &[(ModuleId, f64)],
    out: &mut Vec<f64>,
) {
    out.clear();
    out.extend(cand.iter().map(|(m, _)| store.get_or_init(*m)));
}

/// The Module-Elimination inclusion mask, allocating flavour (test-only —
/// the voters go through [`elimination_mask_into`]).
#[cfg(test)]
pub(crate) fn elimination_mask(histories: &[f64]) -> Vec<bool> {
    let mut mask = Vec::new();
    elimination_mask_into(histories, &mut mask);
    mask
}

/// The Module-Elimination inclusion mask into a reusable buffer (cleared
/// first): a candidate participates when its history is not strictly below
/// the average history of this round's candidates.
pub(crate) fn elimination_mask_into(histories: &[f64], out: &mut Vec<bool>) {
    out.clear();
    if histories.is_empty() {
        return;
    }
    let mean = histories.iter().sum::<f64>() / histories.len() as f64;
    out.extend(histories.iter().map(|&h| h >= mean - ELIMINATION_EPS));
}

/// Writes updated history records: `h ← update(h, score)` for each candidate.
pub(crate) fn apply_updates<S: HistoryStore>(
    store: &mut S,
    update: crate::history::HistoryUpdate,
    cand: &[(ModuleId, f64)],
    histories: &[f64],
    scores: &[f64],
) {
    for (((m, _), &h), &s) in cand.iter().zip(histories).zip(scores) {
        store.set(*m, update.apply(h, s));
    }
}

/// Fraction of total vote weight whose candidate value binary-agrees with
/// the output — the uniform confidence measure reported in verdicts.
pub(crate) fn weighted_confidence(
    params: &AgreementParams,
    cand: &[(ModuleId, f64)],
    weights: &[f64],
    output: f64,
) -> f64 {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let agreeing: f64 = cand
        .iter()
        .zip(weights)
        .filter(|(_, &w)| w > 0.0)
        .map(|((_, v), &w)| w * params.binary_score(*v, output))
        .sum();
    agreeing / total
}

/// Modules carrying zero weight this round, i.e. the verdict's `excluded`.
pub(crate) fn excluded_modules(cand: &[(ModuleId, f64)], weights: &[f64]) -> Vec<ModuleId> {
    cand.iter()
        .zip(weights)
        .filter(|(_, &w)| w <= 0.0)
        .map(|((m, _), _)| *m)
        .collect()
}

/// Writes a numeric verdict into `out`, reusing its `weights`/`excluded`
/// buffers — the common tail of every scratch-based [`super::Voter::vote_into`].
pub(crate) fn fill_verdict(
    out: &mut Verdict,
    cand: &[(ModuleId, f64)],
    weights: &[f64],
    output: f64,
    confidence: f64,
    bootstrapped: bool,
) {
    out.value = Value::Number(output);
    out.weights.clear();
    out.weights
        .extend(cand.iter().zip(weights).map(|((m, _), &w)| (*m, w)));
    out.excluded.clear();
    out.excluded.extend(
        cand.iter()
            .zip(weights)
            .filter(|(_, &w)| w <= 0.0)
            .map(|((m, _), _)| *m),
    );
    out.confidence = confidence;
    out.bootstrapped = bootstrapped;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryUpdate, MemoryHistory};

    fn m(i: u32) -> ModuleId {
        ModuleId::new(i)
    }

    #[test]
    fn candidates_rejects_all_missing() {
        let round = Round::from_sparse_numbers(0, &[None, None]);
        assert!(matches!(candidates(&round), Err(VoteError::EmptyRound)));
    }

    #[test]
    fn elimination_mask_drops_below_average_only() {
        // mean = 0.7; 0.4 is below, 0.7 and 1.0 are not.
        let mask = elimination_mask(&[1.0, 0.7, 0.4]);
        assert_eq!(mask, vec![true, true, false]);
    }

    #[test]
    fn elimination_mask_keeps_everyone_when_flat() {
        let mask = elimination_mask(&[0.8, 0.8, 0.8]);
        assert_eq!(mask, vec![true, true, true]);
        let zeros = elimination_mask(&[0.0, 0.0]);
        assert_eq!(zeros, vec![true, true]);
    }

    #[test]
    fn fetch_initialises_unknown_modules() {
        let mut store = MemoryHistory::new();
        let cand = vec![(m(0), 1.0), (m(5), 2.0)];
        let hs = fetch_histories(&mut store, &cand);
        assert_eq!(hs, vec![1.0, 1.0]);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn apply_updates_moves_records() {
        let mut store = MemoryHistory::new();
        let cand = vec![(m(0), 10.0), (m(1), 20.0)];
        let hs = fetch_histories(&mut store, &cand);
        apply_updates(
            &mut store,
            HistoryUpdate::default(),
            &cand,
            &hs,
            &[1.0, 0.0],
        );
        assert_eq!(store.get(m(0)), Some(1.0)); // clamped at 1
        assert!((store.get(m(1)).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn confidence_counts_agreeing_weight() {
        let params = AgreementParams::paper_default();
        let cand = vec![(m(0), 100.0), (m(1), 101.0), (m(2), 200.0)];
        let conf = weighted_confidence(&params, &cand, &[1.0, 1.0, 1.0], 100.5);
        assert!((conf - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_zero_weights() {
        let params = AgreementParams::paper_default();
        assert_eq!(weighted_confidence(&params, &[], &[], 0.0), 0.0);
    }

    #[test]
    fn excluded_modules_lists_zero_weight() {
        let cand = vec![(m(0), 1.0), (m(1), 2.0), (m(2), 3.0)];
        assert_eq!(excluded_modules(&cand, &[1.0, 0.0, 0.5]), vec![m(1)]);
    }
}
