//! Shared plumbing for the history-aware voters.

use crate::agreement::AgreementParams;
use crate::error::VoteError;
use crate::history::{mean_history, HistoryStore};
use crate::round::{ModuleId, Round};

/// Tolerance used when comparing a history value against the mean: a module
/// exactly *at* the average is not "below average".
pub(crate) const ELIMINATION_EPS: f64 = 1e-9;

/// Extracts the numeric candidates of a round, failing on an entirely
/// missing round.
pub(crate) fn candidates(round: &Round) -> Result<Vec<(ModuleId, f64)>, VoteError> {
    let cand = round.numeric_candidates()?;
    if cand.is_empty() {
        Err(VoteError::EmptyRound)
    } else {
        Ok(cand)
    }
}

/// Fetches (initialising when absent) the history of each candidate module.
pub(crate) fn fetch_histories<S: HistoryStore>(
    store: &mut S,
    cand: &[(ModuleId, f64)],
) -> Vec<f64> {
    cand.iter().map(|(m, _)| store.get_or_init(*m)).collect()
}

/// The Module-Elimination inclusion mask: a candidate participates when its
/// history is not strictly below the average history of this round's
/// candidates.
pub(crate) fn elimination_mask(histories: &[f64]) -> Vec<bool> {
    match mean_history(
        &histories
            .iter()
            .enumerate()
            .map(|(i, &h)| (ModuleId::new(i as u32), h))
            .collect::<Vec<_>>(),
    ) {
        None => Vec::new(),
        Some(mean) => histories
            .iter()
            .map(|&h| h >= mean - ELIMINATION_EPS)
            .collect(),
    }
}

/// Writes updated history records: `h ← update(h, score)` for each candidate.
pub(crate) fn apply_updates<S: HistoryStore>(
    store: &mut S,
    update: crate::history::HistoryUpdate,
    cand: &[(ModuleId, f64)],
    histories: &[f64],
    scores: &[f64],
) {
    for (((m, _), &h), &s) in cand.iter().zip(histories).zip(scores) {
        store.set(*m, update.apply(h, s));
    }
}

/// Fraction of total vote weight whose candidate value binary-agrees with
/// the output — the uniform confidence measure reported in verdicts.
pub(crate) fn weighted_confidence(
    params: &AgreementParams,
    cand: &[(ModuleId, f64)],
    weights: &[f64],
    output: f64,
) -> f64 {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let agreeing: f64 = cand
        .iter()
        .zip(weights)
        .filter(|(_, &w)| w > 0.0)
        .map(|((_, v), &w)| w * params.binary_score(*v, output))
        .sum();
    agreeing / total
}

/// Modules carrying zero weight this round, i.e. the verdict's `excluded`.
pub(crate) fn excluded_modules(cand: &[(ModuleId, f64)], weights: &[f64]) -> Vec<ModuleId> {
    cand.iter()
        .zip(weights)
        .filter(|(_, &w)| w <= 0.0)
        .map(|((m, _), _)| *m)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryUpdate, MemoryHistory};

    fn m(i: u32) -> ModuleId {
        ModuleId::new(i)
    }

    #[test]
    fn candidates_rejects_all_missing() {
        let round = Round::from_sparse_numbers(0, &[None, None]);
        assert!(matches!(candidates(&round), Err(VoteError::EmptyRound)));
    }

    #[test]
    fn elimination_mask_drops_below_average_only() {
        // mean = 0.7; 0.4 is below, 0.7 and 1.0 are not.
        let mask = elimination_mask(&[1.0, 0.7, 0.4]);
        assert_eq!(mask, vec![true, true, false]);
    }

    #[test]
    fn elimination_mask_keeps_everyone_when_flat() {
        let mask = elimination_mask(&[0.8, 0.8, 0.8]);
        assert_eq!(mask, vec![true, true, true]);
        let zeros = elimination_mask(&[0.0, 0.0]);
        assert_eq!(zeros, vec![true, true]);
    }

    #[test]
    fn fetch_initialises_unknown_modules() {
        let mut store = MemoryHistory::new();
        let cand = vec![(m(0), 1.0), (m(5), 2.0)];
        let hs = fetch_histories(&mut store, &cand);
        assert_eq!(hs, vec![1.0, 1.0]);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn apply_updates_moves_records() {
        let mut store = MemoryHistory::new();
        let cand = vec![(m(0), 10.0), (m(1), 20.0)];
        let hs = fetch_histories(&mut store, &cand);
        apply_updates(
            &mut store,
            HistoryUpdate::default(),
            &cand,
            &hs,
            &[1.0, 0.0],
        );
        assert_eq!(store.get(m(0)), Some(1.0)); // clamped at 1
        assert!((store.get(m(1)).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn confidence_counts_agreeing_weight() {
        let params = AgreementParams::paper_default();
        let cand = vec![(m(0), 100.0), (m(1), 101.0), (m(2), 200.0)];
        let conf = weighted_confidence(&params, &cand, &[1.0, 1.0, 1.0], 100.5);
        assert!((conf - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_zero_weights() {
        let params = AgreementParams::paper_default();
        assert_eq!(weighted_confidence(&params, &[], &[], 0.0), 0.0);
    }

    #[test]
    fn excluded_modules_lists_zero_weight() {
        let cand = vec![(m(0), 1.0), (m(1), 2.0), (m(2), 3.0)];
        assert_eq!(excluded_modules(&cand, &[1.0, 0.0, 0.5]), vec![m(1)]);
    }
}
