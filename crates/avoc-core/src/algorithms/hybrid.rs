//! Hybrid History-Based Weighted Average
//! (Alahmadi & Soh, 2012 — reference [7] of the paper).
//!
//! Combines Module-Elimination and Soft-Dynamic-Threshold "while utilising
//! agreement-based and not history-based weights" (§4): history records are
//! maintained (with graded agreement) solely to *eliminate* below-average
//! modules, while the surviving candidates are weighted by their soft
//! agreement with one another in the current round. The output is chosen by
//! mean-nearest-neighbour — "a winning value rather than ... the resulting
//! average".

use super::common;
use super::{Verdict, Voter, VoterConfig};
use crate::collation::{collate, Collation};
use crate::error::VoteError;
use crate::history::{HistoryStore, MemoryHistory};
use crate::round::{ModuleId, Round};

/// Hybrid voter: ME elimination + Sdt agreement + agreement-based weights.
///
/// # Example
///
/// ```
/// use avoc_core::algorithms::{HybridVoter, Voter};
/// use avoc_core::Round;
///
/// let mut voter = HybridVoter::with_defaults();
/// let verdict = voter.vote(&Round::from_numbers(0, &[18.0, 18.2, 18.1]))?;
/// // Mean-nearest-neighbour: the output is one of the submitted values.
/// assert_eq!(verdict.number(), Some(18.1));
/// # Ok::<(), avoc_core::VoteError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HybridVoter<S: HistoryStore = MemoryHistory> {
    config: VoterConfig,
    store: S,
    scratch: common::Scratch,
}

impl HybridVoter<MemoryHistory> {
    /// Creates a Hybrid voter with the paper's defaults (mean-nearest-
    /// neighbour collation) and in-memory history.
    pub fn with_defaults() -> Self {
        Self::new(
            VoterConfig::default().with_collation(Collation::MeanNearestNeighbor),
            MemoryHistory::new(),
        )
    }
}

impl<S: HistoryStore> HybridVoter<S> {
    /// Creates a Hybrid voter over the given history store.
    pub fn new(config: VoterConfig, store: S) -> Self {
        HybridVoter {
            config,
            store,
            scratch: common::Scratch::default(),
        }
    }

    /// The voter's configuration.
    pub fn config(&self) -> &VoterConfig {
        &self.config
    }

    /// Borrows the underlying history store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutably borrows the underlying history store (used by
    /// [`super::AvocVoter`] to seed records from cluster membership).
    pub(crate) fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Runs one Hybrid round into `out`, reusing the voter's scratch
    /// buffers. Shared with [`super::AvocVoter`], which layers the
    /// clustering bootstrap on top.
    pub(crate) fn vote_inner_into(
        &mut self,
        round: &Round,
        out: &mut Verdict,
    ) -> Result<(), VoteError>
    where
        S: Send,
    {
        common::candidates_into(round, &mut self.scratch.cand)?;
        self.scratch.values.clear();
        self.scratch
            .values
            .extend(self.scratch.cand.iter().map(|(_, v)| *v));
        let n = self.scratch.values.len();

        // §5: "history-based algorithms typically fall back to standard
        // average (or a similar unweighted approach) on the first round
        // until a historical record is established" — no stored record for
        // any candidate means no evidence exists to weight or eliminate by.
        // This is the startup spike AVOC's clustering bootstrap removes.
        let store = &self.store;
        let flat_at_initial = self
            .scratch
            .cand
            .iter()
            .all(|(m, _)| store.get(*m).is_none());
        common::fetch_histories_into(
            &mut self.store,
            &self.scratch.cand,
            &mut self.scratch.histories,
        );

        self.scratch.weights.clear();
        if flat_at_initial {
            self.scratch.weights.resize(n, 1.0);
        } else {
            // ME step: below-average records are eliminated from the round.
            common::elimination_mask_into(&self.scratch.histories, &mut self.scratch.mask);

            // Agreement-based weights among the survivors.
            self.scratch
                .matrix
                .soft_in_place(&self.config.agreement, &self.scratch.values);
            for i in 0..n {
                let w = if self.scratch.mask[i] {
                    self.scratch
                        .matrix
                        .peer_support_among(i, &self.scratch.mask)
                } else {
                    0.0
                };
                self.scratch.weights.push(w);
            }
            // A single surviving candidate has no peers to agree with.
            if self.scratch.mask.iter().filter(|&&k| k).count() == 1 {
                if let Some(i) = self.scratch.mask.iter().position(|&k| k) {
                    self.scratch.weights[i] = 1.0;
                }
            }
        }

        // The flat-history fallback is literally the "standard average":
        // the configured collation only applies once records exist.
        let collation = if flat_at_initial {
            Collation::WeightedMean
        } else {
            self.config.collation
        };
        let output = match collate(collation, &self.scratch.values, &self.scratch.weights) {
            Some(v) => v,
            // Everyone eliminated or in total disagreement: plain mean.
            None => self.scratch.values.iter().sum::<f64>() / n as f64,
        };

        // Graded agreement with the output drives the records (Sdt step) —
        // for every module, eliminated ones included, so they can recover.
        self.scratch.scores.clear();
        let agreement = self.config.agreement;
        self.scratch.scores.extend(
            self.scratch
                .values
                .iter()
                .map(|&v| agreement.soft_score(v, output)),
        );
        common::apply_updates(
            &mut self.store,
            self.config.update,
            &self.scratch.cand,
            &self.scratch.histories,
            &self.scratch.scores,
        );

        let confidence = common::weighted_confidence(
            &self.config.agreement,
            &self.scratch.cand,
            &self.scratch.weights,
            output,
        );
        common::fill_verdict(
            out,
            &self.scratch.cand,
            &self.scratch.weights,
            output,
            confidence,
            false,
        );
        Ok(())
    }
}

impl<S: HistoryStore + Send> Voter for HybridVoter<S> {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        let mut out = Verdict::empty();
        self.vote_inner_into(round, &mut out)?;
        Ok(out)
    }

    fn vote_into(&mut self, round: &Round, out: &mut Verdict) -> Result<(), VoteError> {
        self.vote_inner_into(round, out)
    }

    fn histories(&self) -> Vec<(ModuleId, f64)> {
        self.store.snapshot()
    }

    fn reset(&mut self) {
        self.store.clear();
    }

    fn seed_history(&mut self, records: &[(ModuleId, f64)]) {
        for &(m, v) in records {
            self.store.set(m, v);
        }
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> ModuleId {
        ModuleId::new(i)
    }

    fn faulty_round(round: u64) -> Round {
        Round::from_numbers(round, &[18.0, 18.1, 17.9, 24.0, 18.05])
    }

    #[test]
    fn output_is_a_submitted_value_once_history_exists() {
        let mut v = HybridVoter::with_defaults();
        let round = Round::from_numbers(0, &[18.0, 18.4, 18.2, 17.9]);
        v.vote(&round).unwrap(); // round 0: standard-average fallback
        let out = v
            .vote(&Round::from_numbers(1, &[18.0, 18.4, 18.2, 17.9]))
            .unwrap()
            .number()
            .unwrap();
        assert!([18.0, 18.4, 18.2, 17.9].contains(&out));
    }

    #[test]
    fn first_round_falls_back_to_standard_average() {
        // §5: with no historical record established, the Hybrid voter votes
        // a plain average — this is the startup spike of Fig. 6-f.
        let mut v = HybridVoter::with_defaults();
        let verdict = v.vote(&faulty_round(0)).unwrap();
        let plain_mean = (18.0 + 18.1 + 17.9 + 24.0 + 18.05) / 5.0;
        assert!((verdict.number().unwrap() - plain_mean).abs() < 1e-9);
        assert!(verdict.excluded.is_empty());
    }

    #[test]
    fn outlier_has_zero_agreement_weight_from_round_two() {
        let mut v = HybridVoter::with_defaults();
        v.vote(&faulty_round(0)).unwrap();
        // Round 2: records exist; the +6 outlier is both history-eliminated
        // and agreement-isolated.
        let verdict = v.vote(&faulty_round(1)).unwrap();
        assert_eq!(verdict.weights[3].1, 0.0);
        assert!(verdict.excluded.contains(&m(3)));
        assert!((verdict.number().unwrap() - 18.05).abs() < 0.1);
    }

    #[test]
    fn faulty_module_eliminated_by_history_in_round_two() {
        let mut v = HybridVoter::with_defaults();
        v.vote(&faulty_round(0)).unwrap();
        let hs = v.histories();
        assert!(hs[3].1 < hs[0].1, "faulty record must decay first round");
        let r2 = v.vote(&faulty_round(1)).unwrap();
        assert!(r2.excluded.contains(&m(3)));
    }

    #[test]
    fn matches_pre_error_output_under_fault() {
        // The Fig. 6-e claim: Hybrid's faulty-run output is (nearly)
        // identical to its clean-run output — after the round-0 startup
        // spike, which is exactly what AVOC's bootstrap removes.
        let mut clean = HybridVoter::with_defaults();
        let mut faulty = HybridVoter::with_defaults();
        for r in 0..50 {
            let base = [18.0, 18.1, 17.9, 18.2, 18.05];
            let mut with_fault = base;
            with_fault[3] += 6.0;
            let c = clean
                .vote(&Round::from_numbers(r, &base))
                .unwrap()
                .number()
                .unwrap();
            let f = faulty
                .vote(&Round::from_numbers(r, &with_fault))
                .unwrap()
                .number()
                .unwrap();
            if r == 0 {
                assert!((c - f).abs() > 1.0, "round 0 must show the spike");
            } else {
                assert!((c - f).abs() < 0.25, "round {r}: clean {c} vs faulty {f}");
            }
        }
    }

    #[test]
    fn single_survivor_wins() {
        // Histories: module 1 far below average → eliminated; module 0 the
        // only survivor.
        let store = MemoryHistory::with_records([(m(0), 1.0), (m(1), 0.1)]);
        let cfg = VoterConfig::default().with_collation(Collation::MeanNearestNeighbor);
        let mut v = HybridVoter::new(cfg, store);
        let verdict = v.vote(&Round::from_numbers(0, &[18.0, 99.0])).unwrap();
        assert_eq!(verdict.number(), Some(18.0));
    }

    #[test]
    fn everyone_eliminated_falls_back_to_plain_mean() {
        // Total mutual disagreement with flat histories: all weights 0.
        let mut v = HybridVoter::with_defaults();
        let verdict = v
            .vote(&Round::from_numbers(0, &[0.0, 100.0, 500.0]))
            .unwrap();
        assert_eq!(verdict.number(), Some(200.0));
    }

    #[test]
    fn weighted_mean_collation_is_supported_too() {
        let cfg = VoterConfig::default().with_collation(Collation::WeightedMean);
        let mut v = HybridVoter::new(cfg, MemoryHistory::new());
        let out = v
            .vote(&Round::from_numbers(0, &[18.0, 18.2]))
            .unwrap()
            .number()
            .unwrap();
        assert!((out - 18.1).abs() < 1e-9);
    }

    #[test]
    fn histories_snapshot_reset() {
        let mut v = HybridVoter::with_defaults();
        assert!(v.is_stateful());
        v.vote(&faulty_round(0)).unwrap();
        assert_eq!(v.histories().len(), 5);
        v.reset();
        assert!(v.histories().is_empty());
    }
}
