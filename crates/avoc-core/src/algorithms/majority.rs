//! History-weighted majority voting on categorical values.
//!
//! VDX extends VDL with "the ability to vote on categorical i.e.,
//! non-numeric values, such as character strings and JSON blobs" (§6), with
//! restrictions: no value-based exclusion, no hybrid history, no clustering
//! bootstrap, and weighted-majority as the only collation. The 'standard'
//! and 'module-elimination' history algorithms remain available, and a
//! custom [`TextMetric`] can re-introduce graded agreement.

use super::common::ELIMINATION_EPS;
use super::{Verdict, Voter};
use crate::error::VoteError;
use crate::history::{mean_history, HistoryStore, HistoryUpdate, MemoryHistory};
use crate::round::{ModuleId, Round};
use crate::value::{ExactMatch, TextMetric};
use std::sync::Arc;

/// Which history algorithm backs the majority vote. The hybrid algorithm
/// is *not* available for categorical values — "the fine-grained agreement
/// definition cannot be applied to non-numeric values" (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MajorityHistory {
    /// No history: every ballot carries unit weight.
    None,
    /// Standard history-based weighting.
    #[default]
    Standard,
    /// Standard weighting plus below-average module elimination.
    ModuleElimination,
}

/// History-weighted majority voter over categorical values.
///
/// Ballots are grouped by metric-equality (`distance ≤ tolerance`, default
/// exact match with tolerance 0); the group with the largest total weight
/// wins; the verdict value is the group's representative (its first-seen
/// member). Ties are reported as [`VoteError::Tie`] for the engine's
/// tie-break policy to resolve.
///
/// # Example
///
/// ```
/// use avoc_core::algorithms::{MajorityVoter, Voter};
/// use avoc_core::{Ballot, ModuleId, Round};
///
/// let mut voter = MajorityVoter::with_defaults();
/// let round = Round::new(0, vec![
///     Ballot::new(ModuleId::new(0), "open"),
///     Ballot::new(ModuleId::new(1), "open"),
///     Ballot::new(ModuleId::new(2), "closed"),
/// ]);
/// let verdict = voter.vote(&round)?;
/// assert_eq!(verdict.value.as_text(), Some("open"));
/// # Ok::<(), avoc_core::VoteError>(())
/// ```
pub struct MajorityVoter<S: HistoryStore = MemoryHistory> {
    history: MajorityHistory,
    update: HistoryUpdate,
    metric: Arc<dyn TextMetric>,
    tolerance: f64,
    store: S,
    require_absolute_majority: bool,
}

impl std::fmt::Debug for MajorityVoter<MemoryHistory> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MajorityVoter")
            .field("history", &self.history)
            .field("tolerance", &self.tolerance)
            .field("require_absolute_majority", &self.require_absolute_majority)
            .finish_non_exhaustive()
    }
}

impl MajorityVoter<MemoryHistory> {
    /// Creates a majority voter with standard history, exact matching and
    /// in-memory records.
    pub fn with_defaults() -> Self {
        Self::new(MajorityHistory::Standard, MemoryHistory::new())
    }
}

impl<S: HistoryStore> MajorityVoter<S> {
    /// Creates a majority voter with the given history mode and store.
    pub fn new(history: MajorityHistory, store: S) -> Self {
        MajorityVoter {
            history,
            update: HistoryUpdate::default(),
            metric: Arc::new(ExactMatch),
            tolerance: 0.0,
            store,
            require_absolute_majority: false,
        }
    }

    /// Installs a custom distance metric and agreement tolerance, enabling
    /// graded grouping of near-identical strings.
    pub fn with_metric(mut self, metric: Arc<dyn TextMetric>, tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "tolerance must be finite and non-negative"
        );
        self.metric = metric;
        self.tolerance = tolerance;
        self
    }

    /// Sets the history update rate.
    pub fn with_update(mut self, update: HistoryUpdate) -> Self {
        self.update = update;
        self
    }

    /// Requires the winning group to hold an *absolute* majority of the
    /// voting weight; otherwise the vote fails with
    /// [`VoteError::NoMajority`] — the paper's "relative majority ... but
    /// overall minority" conflict scenario.
    pub fn with_absolute_majority(mut self, required: bool) -> Self {
        self.require_absolute_majority = required;
        self
    }

    /// The configured history mode.
    pub fn history_mode(&self) -> MajorityHistory {
        self.history
    }
}

impl<S: HistoryStore + Send> Voter for MajorityVoter<S> {
    fn name(&self) -> &'static str {
        "weighted-majority"
    }

    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        let cand: Vec<(ModuleId, String)> = round
            .text_candidates()?
            .into_iter()
            .map(|(m, s)| (m, s.to_owned()))
            .collect();
        if cand.is_empty() {
            return Err(VoteError::EmptyRound);
        }

        // Fetch/initialise records.
        let histories: Vec<f64> = match self.history {
            MajorityHistory::None => vec![1.0; cand.len()],
            _ => cand
                .iter()
                .map(|(m, _)| self.store.get_or_init(*m))
                .collect(),
        };

        // Module elimination (below-average records), where enabled.
        let weights: Vec<f64> = match self.history {
            MajorityHistory::ModuleElimination => {
                let records: Vec<(ModuleId, f64)> = cand
                    .iter()
                    .zip(&histories)
                    .map(|((m, _), &h)| (*m, h))
                    .collect();
                let mean = mean_history(&records).unwrap_or(1.0);
                histories
                    .iter()
                    .map(|&h| if h >= mean - ELIMINATION_EPS { h } else { 0.0 })
                    .collect()
            }
            _ => histories.clone(),
        };

        // Group ballots by metric-equality against a group representative.
        struct Group {
            representative: usize,
            members: Vec<usize>,
            weight: f64,
        }
        let mut groups: Vec<Group> = Vec::new();
        for (i, (_, s)) in cand.iter().enumerate() {
            let w = weights[i];
            match groups
                .iter_mut()
                .find(|g| self.metric.distance(&cand[g.representative].1, s) <= self.tolerance)
            {
                Some(g) => {
                    g.members.push(i);
                    g.weight += w;
                }
                None => groups.push(Group {
                    representative: i,
                    members: vec![i],
                    weight: w,
                }),
            }
        }

        let total_weight: f64 = weights.iter().sum();
        if total_weight <= 0.0 {
            // All records collapsed: unweighted plurality fallback.
            for g in &mut groups {
                g.weight = g.members.len() as f64;
            }
        }
        let effective_total: f64 = groups.iter().map(|g| g.weight).sum();

        let best_weight = groups
            .iter()
            .map(|g| g.weight)
            .fold(f64::NEG_INFINITY, f64::max);
        let winners: Vec<&Group> = groups
            .iter()
            .filter(|g| (g.weight - best_weight).abs() < 1e-12)
            .collect();
        if winners.len() > 1 {
            return Err(VoteError::Tie {
                candidates: winners
                    .iter()
                    .map(|g| cand[g.representative].1.clone())
                    .collect(),
            });
        }
        let winner = winners[0];

        if self.require_absolute_majority && winner.weight * 2.0 <= effective_total {
            return Err(VoteError::NoMajority {
                largest_group: winner.members.len(),
                total: cand.len(),
            });
        }

        let output = cand[winner.representative].1.clone();

        // Record update: members of the winning group agreed (score from the
        // metric distance to the representative), everyone else scores 0.
        if self.history != MajorityHistory::None {
            for (i, (m, s)) in cand.iter().enumerate() {
                let agreed = self.metric.distance(s, &output) <= self.tolerance;
                let score = if agreed { 1.0 } else { 0.0 };
                self.store.set(*m, self.update.apply(histories[i], score));
            }
        }

        let confidence = if effective_total > 0.0 {
            winner.weight / effective_total
        } else {
            0.0
        };
        Ok(Verdict {
            value: output.into(),
            excluded: cand
                .iter()
                .zip(&weights)
                .filter(|(_, &w)| w <= 0.0)
                .map(|((m, _), _)| *m)
                .collect(),
            weights: cand
                .iter()
                .zip(&weights)
                .map(|((m, _), &w)| (*m, w))
                .collect(),
            confidence,
            bootstrapped: false,
        })
    }

    fn histories(&self) -> Vec<(ModuleId, f64)> {
        match self.history {
            MajorityHistory::None => Vec::new(),
            _ => self.store.snapshot(),
        }
    }

    fn reset(&mut self) {
        self.store.clear();
    }

    fn seed_history(&mut self, records: &[(ModuleId, f64)]) {
        for &(m, v) in records {
            self.store.set(m, v);
        }
    }

    fn is_stateful(&self) -> bool {
        self.history != MajorityHistory::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::Ballot;
    use crate::value::NormalizedLevenshtein;

    fn m(i: u32) -> ModuleId {
        ModuleId::new(i)
    }

    fn round_of(round: u64, values: &[&str]) -> Round {
        Round::new(
            round,
            values
                .iter()
                .enumerate()
                .map(|(i, s)| Ballot::new(m(i as u32), *s))
                .collect(),
        )
    }

    #[test]
    fn plurality_wins() {
        let mut v = MajorityVoter::with_defaults();
        let verdict = v.vote(&round_of(0, &["a", "a", "b"])).unwrap();
        assert_eq!(verdict.value.as_text(), Some("a"));
        assert!((verdict.confidence - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tie_is_an_error() {
        let mut v = MajorityVoter::with_defaults();
        let err = v.vote(&round_of(0, &["a", "a", "b", "b"])).unwrap_err();
        assert!(matches!(err, VoteError::Tie { candidates } if candidates.len() == 2));
    }

    #[test]
    fn history_breaks_future_ties() {
        let mut v = MajorityVoter::with_defaults();
        // Module 2 disagrees twice; its record decays.
        v.vote(&round_of(0, &["x", "x", "y"])).unwrap();
        v.vote(&round_of(1, &["x", "x", "y"])).unwrap();
        // Now a 2-2 split in raw counts — but the "y" camp includes the
        // distrusted module, so "x" wins on weight.
        let round = Round::new(
            2,
            vec![
                Ballot::new(m(0), "x"),
                Ballot::new(m(1), "y"),
                Ballot::new(m(2), "y"),
                Ballot::new(m(3), "x"),
            ],
        );
        let verdict = v.vote(&round).unwrap();
        assert_eq!(verdict.value.as_text(), Some("x"));
    }

    #[test]
    fn absolute_majority_requirement() {
        let mut v = MajorityVoter::with_defaults().with_absolute_majority(true);
        // Relative majority (2 of 5) but overall minority.
        let err = v
            .vote(&round_of(0, &["a", "a", "b", "c", "d"]))
            .unwrap_err();
        assert!(matches!(
            err,
            VoteError::NoMajority {
                largest_group: 2,
                total: 5
            }
        ));
        // A genuine absolute majority passes.
        let verdict = v.vote(&round_of(1, &["a", "a", "a", "b", "c"])).unwrap();
        assert_eq!(verdict.value.as_text(), Some("a"));
    }

    #[test]
    fn module_elimination_excludes_bad_module() {
        let mut v = MajorityVoter::new(MajorityHistory::ModuleElimination, MemoryHistory::new());
        v.vote(&round_of(0, &["a", "a", "z"])).unwrap();
        let verdict = v.vote(&round_of(1, &["a", "a", "z"])).unwrap();
        assert_eq!(verdict.excluded, vec![m(2)]);
    }

    #[test]
    fn custom_metric_groups_near_strings() {
        let mut v =
            MajorityVoter::with_defaults().with_metric(Arc::new(NormalizedLevenshtein), 0.3);
        let verdict = v
            .vote(&round_of(0, &["lane-3", "lane-3", "lane-E", "junction"]))
            .unwrap();
        // "lane-3", "lane-3" and "lane-E" group together (distance ≤ 0.3).
        assert_eq!(verdict.value.as_text(), Some("lane-3"));
        assert!((verdict.confidence - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stateless_mode_has_no_history() {
        let mut v = MajorityVoter::new(MajorityHistory::None, MemoryHistory::new());
        v.vote(&round_of(0, &["a", "b", "a"])).unwrap();
        assert!(v.histories().is_empty());
        assert!(!v.is_stateful());
    }

    #[test]
    fn all_records_zero_falls_back_to_plurality() {
        let store = MemoryHistory::with_records([(m(0), 0.0), (m(1), 0.0), (m(2), 0.0)]);
        let mut v = MajorityVoter::new(MajorityHistory::Standard, store);
        let verdict = v.vote(&round_of(0, &["p", "p", "q"])).unwrap();
        assert_eq!(verdict.value.as_text(), Some("p"));
    }

    #[test]
    fn numeric_ballot_is_a_type_error() {
        let mut v = MajorityVoter::with_defaults();
        let round = Round::new(0, vec![Ballot::new(m(0), 1.0)]);
        assert!(matches!(
            v.vote(&round),
            Err(VoteError::TypeMismatch {
                expected: "text",
                ..
            })
        ));
    }

    #[test]
    fn empty_round_errors() {
        let mut v = MajorityVoter::with_defaults();
        let round = Round::new(0, vec![Ballot::missing(m(0))]);
        assert!(matches!(v.vote(&round), Err(VoteError::EmptyRound)));
    }
}
