//! Maximum Likelihood Voting (Leung, 1995 — reference [20] of the paper).
//!
//! The paper's §6 limitation: "VDX currently cannot define algorithms that
//! use parameters for the candidate values, e.g., MLV". This module
//! implements MLV anyway — as a library voter outside the VDX factory — so
//! the boundary of the specification is demonstrated against working code.
//!
//! MLV treats each module as a noisy channel with reliability `p`: it
//! outputs the correct value with probability `p` and any of the other
//! `m − 1` values of a finite output space uniformly otherwise. Given one
//! round of candidates, the winning value is the one maximising the joint
//! likelihood. Reliabilities are learned online from the module's history
//! record, which is exactly the per-candidate parameterisation VDX cannot
//! express.

use super::common;
use super::{Verdict, Voter, VoterConfig};
use crate::collation::collate;
use crate::error::VoteError;
use crate::history::{HistoryStore, MemoryHistory};
use crate::round::{ModuleId, Round};

/// Maximum-likelihood voter over (agreement-grouped) numeric candidates.
///
/// Candidates are partitioned into agreement groups (the finite output
/// space of the round); the group maximising `Σ log` likelihood wins, and
/// the output is collated within it. Module reliabilities are the history
/// records clamped away from 0/1 so the log-likelihood stays finite.
///
/// # Example
///
/// ```
/// use avoc_core::algorithms::{MlvVoter, Voter};
/// use avoc_core::Round;
///
/// let mut voter = MlvVoter::with_defaults();
/// // Round 1: 20.4 disagrees; its reliability estimate decays.
/// voter.vote(&Round::from_numbers(0, &[18.0, 18.1, 17.9, 20.4]))?;
/// // A 2-2 split: the camp containing the distrusted module loses.
/// let verdict = voter.vote(&Round::from_numbers(1, &[18.0, 18.1, 20.4, 20.5]))?;
/// assert!(verdict.number().unwrap() < 19.0);
/// # Ok::<(), avoc_core::VoteError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MlvVoter<S: HistoryStore = MemoryHistory> {
    config: VoterConfig,
    store: S,
}

/// Reliability clamp: keeps `log(p)` and `log(1-p)` finite.
const P_FLOOR: f64 = 0.05;
const P_CEIL: f64 = 0.95;

impl MlvVoter<MemoryHistory> {
    /// Creates an MLV voter with default configuration and in-memory
    /// history.
    pub fn with_defaults() -> Self {
        Self::new(VoterConfig::default(), MemoryHistory::new())
    }
}

impl<S: HistoryStore> MlvVoter<S> {
    /// Creates an MLV voter over the given history store.
    pub fn new(config: VoterConfig, store: S) -> Self {
        MlvVoter { config, store }
    }

    /// The voter's configuration.
    pub fn config(&self) -> &VoterConfig {
        &self.config
    }
}

impl<S: HistoryStore + Send> Voter for MlvVoter<S> {
    fn name(&self) -> &'static str {
        "maximum-likelihood"
    }

    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        let cand = common::candidates(round)?;
        let values: Vec<f64> = cand.iter().map(|(_, v)| *v).collect();
        let histories = common::fetch_histories(&mut self.store, &cand);
        let reliabilities: Vec<f64> = histories
            .iter()
            .map(|&h| h.clamp(P_FLOOR, P_CEIL))
            .collect();

        // The round's finite output space: agreement groups.
        let clustering = self.config.agreement.clusterer().cluster(&values);
        let groups = clustering.clusters();
        let m = groups.len().max(2) as f64; // ≥ 2 so (1-p)/(m-1) is defined

        // Log-likelihood of "group g holds the correct value".
        let mut best: Option<(usize, f64)> = None;
        for (gi, g) in groups.iter().enumerate() {
            let mut ll = 0.0;
            for (i, &p) in reliabilities.iter().enumerate() {
                let in_group = g.members().contains(&i);
                ll += if in_group {
                    p.ln()
                } else {
                    ((1.0 - p) / (m - 1.0)).ln()
                };
            }
            match best {
                Some((_, best_ll)) if ll <= best_ll => {}
                _ => best = Some((gi, ll)),
            }
        }
        let (winner_idx, _) = best.expect("non-empty round has groups");
        let winner = &groups[winner_idx];

        let weights: Vec<f64> = (0..values.len())
            .map(|i| {
                if winner.members().contains(&i) {
                    reliabilities[i]
                } else {
                    0.0
                }
            })
            .collect();
        let output =
            collate(self.config.collation, &values, &weights).unwrap_or_else(|| winner.mean());

        // Reliability update: winners agreed, everyone else did not.
        let scores: Vec<f64> = (0..values.len())
            .map(|i| {
                if winner.members().contains(&i) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        common::apply_updates(
            &mut self.store,
            self.config.update,
            &cand,
            &histories,
            &scores,
        );

        let confidence =
            common::weighted_confidence(&self.config.agreement, &cand, &weights, output);
        Ok(Verdict {
            value: output.into(),
            excluded: common::excluded_modules(&cand, &weights),
            weights: cand
                .iter()
                .zip(&weights)
                .map(|((m, _), &w)| (*m, w))
                .collect(),
            confidence,
            bootstrapped: false,
        })
    }

    fn histories(&self) -> Vec<(ModuleId, f64)> {
        self.store.snapshot()
    }

    fn reset(&mut self) {
        self.store.clear();
    }

    fn seed_history(&mut self, records: &[(ModuleId, f64)]) {
        for &(m, v) in records {
            self.store.set(m, v);
        }
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> ModuleId {
        ModuleId::new(i)
    }

    #[test]
    fn majority_group_wins_with_equal_reliabilities() {
        let mut v = MlvVoter::with_defaults();
        let verdict = v
            .vote(&Round::from_numbers(0, &[18.0, 18.1, 17.95, 25.0]))
            .unwrap();
        assert!(verdict.number().unwrap() < 19.0);
        assert_eq!(verdict.excluded, vec![m(3)]);
    }

    #[test]
    fn learned_reliability_overrules_a_raw_majority() {
        let mut v = MlvVoter::with_defaults();
        // Modules 3 and 4 disagree repeatedly → low reliability.
        for r in 0..5 {
            v.vote(&Round::from_numbers(r, &[18.0, 18.1, 17.95, 24.0, 24.1]))
                .unwrap();
        }
        let hs = v.histories();
        assert!(hs[3].1 < hs[0].1);
        // Module 2 defects to the bad camp: raw counts now say 3-vs-2 for
        // the 24-camp, but two of its three members are distrusted, so the
        // likelihood still favours the trusted pair.
        let verdict = v
            .vote(&Round::from_numbers(9, &[18.0, 18.1, 24.02, 24.0, 24.1]))
            .unwrap();
        assert!(
            verdict.number().unwrap() < 19.0,
            "trusted minority must win, got {:?}",
            verdict.number()
        );
    }

    #[test]
    fn reliability_flips_the_vote_against_a_raw_majority() {
        // Three notorious disagreers vs two trustworthy modules: MLV picks
        // the *minority* — exactly the candidate-parameterised behaviour
        // VDX cannot express.
        let store = MemoryHistory::with_records([
            (m(0), 0.95),
            (m(1), 0.95),
            (m(2), 0.05),
            (m(3), 0.05),
            (m(4), 0.05),
        ]);
        let mut v = MlvVoter::new(VoterConfig::default(), store);
        let verdict = v
            .vote(&Round::from_numbers(0, &[18.0, 18.1, 30.0, 30.1, 30.05]))
            .unwrap();
        assert!(
            verdict.number().unwrap() < 19.0,
            "high-reliability minority must win, got {:?}",
            verdict.number()
        );
    }

    #[test]
    fn single_candidate_wins() {
        let mut v = MlvVoter::with_defaults();
        let verdict = v.vote(&Round::from_numbers(0, &[42.0])).unwrap();
        assert_eq!(verdict.number(), Some(42.0));
    }

    #[test]
    fn empty_round_errors() {
        let mut v = MlvVoter::with_defaults();
        assert!(matches!(
            v.vote(&Round::from_sparse_numbers(0, &[None])),
            Err(VoteError::EmptyRound)
        ));
    }

    #[test]
    fn reliabilities_stay_clamped_in_likelihood() {
        // Zero history must not produce -inf likelihoods / NaN outputs.
        let store = MemoryHistory::with_records([(m(0), 0.0), (m(1), 0.0)]);
        let mut v = MlvVoter::new(VoterConfig::default(), store);
        let verdict = v.vote(&Round::from_numbers(0, &[10.0, 10.1])).unwrap();
        assert!(verdict.number().unwrap().is_finite());
    }

    #[test]
    fn statefulness_and_reset() {
        let mut v = MlvVoter::with_defaults();
        assert!(v.is_stateful());
        v.vote(&Round::from_numbers(0, &[1.0, 1.0])).unwrap();
        assert_eq!(v.histories().len(), 2);
        v.reset();
        assert!(v.histories().is_empty());
    }
}
