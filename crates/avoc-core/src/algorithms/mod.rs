//! The voting algorithm family (§4–§5 of the paper).
//!
//! | Voter | History | Weights | Default collation | Bootstrap |
//! |---|---|---|---|---|
//! | [`AverageVoter`] | — | uniform | weighted mean | — |
//! | [`StatelessWeightedVoter`] | — | peer agreement | weighted mean | — |
//! | [`StandardVoter`] | binary agreement | history | weighted mean | — |
//! | [`ModuleEliminationVoter`] | binary agreement | history, below-average ⇒ 0 | weighted mean | — |
//! | [`SoftDynamicVoter`] | graded agreement | history | weighted mean | — |
//! | [`HybridVoter`] | graded agreement | peer agreement + elimination | mean-NN | — |
//! | [`ClusteringOnlyVoter`] | — | cluster membership | per collation | every round |
//! | [`AvocVoter`] | graded agreement | as Hybrid | mean-NN | clustering when history is flat |
//! | [`MajorityVoter`] | binary agreement | history | weighted majority | — |
//! | [`MlvVoter`] | binary agreement | per-candidate reliability | per collation | — |
//!
//! All voters implement [`Voter`] and can be driven directly or through
//! [`crate::engine::VotingEngine`], which adds quorum, exclusion and fault
//! policies on top.

mod average;
mod avoc;
mod clustering_only;
mod common;
mod hybrid;
mod majority;
mod mlv;
mod module_elimination;
mod soft_dynamic;
mod standard;
mod stateless;

pub use average::AverageVoter;
pub use avoc::AvocVoter;
pub use clustering_only::ClusteringOnlyVoter;
pub use hybrid::HybridVoter;
pub use majority::{MajorityHistory, MajorityVoter};
pub use mlv::MlvVoter;
pub use module_elimination::ModuleEliminationVoter;
pub use soft_dynamic::SoftDynamicVoter;
pub use standard::StandardVoter;
pub use stateless::StatelessWeightedVoter;

use crate::agreement::AgreementParams;
use crate::collation::Collation;
use crate::error::VoteError;
use crate::history::HistoryUpdate;
use crate::round::{ModuleId, Round};
use crate::value::Value;

/// Configuration shared by every numeric voter.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VoterConfig {
    /// How agreement between candidate values is scored.
    pub agreement: AgreementParams,
    /// How historical records move after each round.
    pub update: HistoryUpdate,
    /// How the weighted candidates are collated into one output.
    pub collation: Collation,
}

impl VoterConfig {
    /// Creates a configuration with the paper's UC-1 defaults
    /// (5% relative error, soft multiplier 2, rate 0.1, weighted mean).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the agreement parameters.
    pub fn with_agreement(mut self, agreement: AgreementParams) -> Self {
        self.agreement = agreement;
        self
    }

    /// Sets the history update rule.
    pub fn with_update(mut self, update: HistoryUpdate) -> Self {
        self.update = update;
        self
    }

    /// Sets the collation method.
    pub fn with_collation(mut self, collation: Collation) -> Self {
        self.collation = collation;
        self
    }
}

/// The outcome of one voting round.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The fused output value.
    pub value: Value,
    /// The weight each candidate carried in the vote, in ballot order
    /// (only candidates that submitted a value appear).
    pub weights: Vec<(ModuleId, f64)>,
    /// Modules whose value was eliminated (zero weight) this round.
    pub excluded: Vec<ModuleId>,
    /// Fraction of voting weight in agreement with the output, in `[0, 1]`.
    pub confidence: f64,
    /// Whether AVOC's clustering bootstrap produced this round's output.
    pub bootstrapped: bool,
}

impl Verdict {
    /// A placeholder verdict whose buffers are empty (and unallocated),
    /// meant to be filled in place via [`Voter::vote_into`].
    pub fn empty() -> Self {
        Verdict {
            value: Value::Number(f64::NAN),
            weights: Vec::new(),
            excluded: Vec::new(),
            confidence: 0.0,
            bootstrapped: false,
        }
    }

    /// The scalar output, when the vote was numeric.
    pub fn number(&self) -> Option<f64> {
        self.value.as_number()
    }
}

/// A software voter fusing one round of redundant candidate values.
///
/// Stateful voters carry per-module history across calls; [`Voter::reset`]
/// returns them to the bootstrapped state. Voters are `Send` so an edge
/// service can own them on a worker thread.
pub trait Voter: Send {
    /// A short, stable algorithm name (`"standard"`, `"avoc"`, …) used in
    /// reports and VDX round-trips.
    fn name(&self) -> &'static str;

    /// Fuses one round into a verdict.
    ///
    /// # Errors
    ///
    /// [`VoteError::EmptyRound`] when no ballot carries a usable value, and
    /// type errors when ballots don't match the voter's value kind. Quorum
    /// is *not* checked here — that is [`crate::engine::VotingEngine`]'s
    /// job.
    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError>;

    /// Fuses one round *into* a caller-owned verdict, reusing its buffers.
    ///
    /// This is the allocation-free hot path: voters with per-instance
    /// scratch buffers override it so a steady-state round performs no heap
    /// allocation at all. The default delegates to [`Voter::vote`].
    ///
    /// On error, `out` is unspecified (it may hold a stale verdict).
    ///
    /// # Errors
    ///
    /// Exactly as [`Voter::vote`].
    fn vote_into(&mut self, round: &Round, out: &mut Verdict) -> Result<(), VoteError> {
        *out = self.vote(round)?;
        Ok(())
    }

    /// Current historical records, ascending by module. Empty for stateless
    /// voters.
    fn histories(&self) -> Vec<(ModuleId, f64)> {
        Vec::new()
    }

    /// Clears accumulated history.
    fn reset(&mut self) {}

    /// Installs historical records wholesale — the warm-restart path: a
    /// service restoring a checkpointed session seeds the voter with the
    /// records it had before the crash, so the history-aware weighting
    /// resumes instead of re-entering the all-records-flat reset window the
    /// paper warns about. Values are clamped to `[0, 1]` by the underlying
    /// store. Stateless voters ignore the call (the default).
    fn seed_history(&mut self, records: &[(ModuleId, f64)]) {
        let _ = records;
    }

    /// Whether this voter maintains per-module history.
    fn is_stateful(&self) -> bool {
        false
    }
}

/// Blanket impl so `Box<dyn Voter>` is itself a `Voter`, letting engines and
/// factories compose voters without caring about concrete types.
impl Voter for Box<dyn Voter> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        (**self).vote(round)
    }
    fn vote_into(&mut self, round: &Round, out: &mut Verdict) -> Result<(), VoteError> {
        (**self).vote_into(round, out)
    }
    fn histories(&self) -> Vec<(ModuleId, f64)> {
        (**self).histories()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn seed_history(&mut self, records: &[(ModuleId, f64)]) {
        (**self).seed_history(records)
    }
    fn is_stateful(&self) -> bool {
        (**self).is_stateful()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::MemoryHistory;

    #[test]
    fn config_builder_chains() {
        let cfg = VoterConfig::new()
            .with_collation(Collation::Median)
            .with_update(HistoryUpdate::new(0.2));
        assert_eq!(cfg.collation, Collation::Median);
        assert_eq!(cfg.update.rate, 0.2);
    }

    #[test]
    fn boxed_voter_is_a_voter() {
        let mut v: Box<dyn Voter> = Box::new(AverageVoter::new());
        let round = Round::from_numbers(0, &[1.0, 3.0]);
        let verdict = v.vote(&round).unwrap();
        assert_eq!(verdict.number(), Some(2.0));
        assert_eq!(v.name(), "average");
        assert!(!v.is_stateful());
    }

    #[test]
    fn voters_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<AverageVoter>();
        assert_send::<StandardVoter<MemoryHistory>>();
        assert_send::<AvocVoter<MemoryHistory>>();
        assert_send::<Box<dyn Voter>>();
    }
}
