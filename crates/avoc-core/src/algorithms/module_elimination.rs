//! Module-Elimination Weighted Average (`ME` in Fig. 6).
//!
//! An optimisation of the Standard voter: modules whose historical record is
//! *below the average* record of the round's candidates are temporarily
//! assigned zero weight — their values are discarded from the vote — "until
//! their historical records improve by submitting better values, even if
//! discarded in the voting itself" (§4).

use super::common;
use super::{Verdict, Voter, VoterConfig};
use crate::collation::collate;
use crate::error::VoteError;
use crate::history::{HistoryStore, MemoryHistory};
use crate::round::{ModuleId, Round};

/// Module-Elimination history-weighted voter.
///
/// # Example
///
/// ```
/// use avoc_core::algorithms::{ModuleEliminationVoter, Voter};
/// use avoc_core::Round;
///
/// let mut voter = ModuleEliminationVoter::with_defaults();
/// // Round 1: the faulty candidate damages its record.
/// voter.vote(&Round::from_numbers(0, &[18.0, 18.1, 17.9, 20.0]))?;
/// // Round 2: it is eliminated outright.
/// let verdict = voter.vote(&Round::from_numbers(1, &[18.0, 18.1, 17.9, 20.0]))?;
/// assert_eq!(verdict.excluded, vec![avoc_core::ModuleId::new(3)]);
/// # Ok::<(), avoc_core::VoteError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ModuleEliminationVoter<S: HistoryStore = MemoryHistory> {
    config: VoterConfig,
    store: S,
    scratch: common::Scratch,
}

impl ModuleEliminationVoter<MemoryHistory> {
    /// Creates an ME voter with default configuration and in-memory history.
    pub fn with_defaults() -> Self {
        Self::new(VoterConfig::default(), MemoryHistory::new())
    }
}

impl<S: HistoryStore> ModuleEliminationVoter<S> {
    /// Creates an ME voter over the given history store.
    pub fn new(config: VoterConfig, store: S) -> Self {
        ModuleEliminationVoter {
            config,
            store,
            scratch: common::Scratch::default(),
        }
    }

    /// The voter's configuration.
    pub fn config(&self) -> &VoterConfig {
        &self.config
    }
}

impl<S: HistoryStore + Send> Voter for ModuleEliminationVoter<S> {
    fn name(&self) -> &'static str {
        "module-elimination"
    }

    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        let mut out = Verdict::empty();
        self.vote_into(round, &mut out)?;
        Ok(out)
    }

    fn vote_into(&mut self, round: &Round, out: &mut Verdict) -> Result<(), VoteError> {
        common::candidates_into(round, &mut self.scratch.cand)?;
        self.scratch.values.clear();
        self.scratch
            .values
            .extend(self.scratch.cand.iter().map(|(_, v)| *v));
        common::fetch_histories_into(
            &mut self.store,
            &self.scratch.cand,
            &mut self.scratch.histories,
        );

        // Below-average records are zero-weighted for this round.
        common::elimination_mask_into(&self.scratch.histories, &mut self.scratch.mask);
        self.scratch.weights.clear();
        self.scratch.weights.extend(
            self.scratch
                .histories
                .iter()
                .zip(&self.scratch.mask)
                .map(|(&h, &keep)| if keep { h } else { 0.0 }),
        );

        let output = match collate(
            self.config.collation,
            &self.scratch.values,
            &self.scratch.weights,
        ) {
            Some(v) => v,
            None => self.scratch.values.iter().sum::<f64>() / self.scratch.values.len() as f64,
        };

        // Every module's record updates — including eliminated ones, so they
        // can rehabilitate by submitting agreeing values.
        self.scratch.scores.clear();
        let agreement = self.config.agreement;
        self.scratch.scores.extend(
            self.scratch
                .values
                .iter()
                .map(|&v| agreement.binary_score(v, output)),
        );
        common::apply_updates(
            &mut self.store,
            self.config.update,
            &self.scratch.cand,
            &self.scratch.histories,
            &self.scratch.scores,
        );

        let confidence = common::weighted_confidence(
            &self.config.agreement,
            &self.scratch.cand,
            &self.scratch.weights,
            output,
        );
        common::fill_verdict(
            out,
            &self.scratch.cand,
            &self.scratch.weights,
            output,
            confidence,
            false,
        );
        Ok(())
    }

    fn histories(&self) -> Vec<(ModuleId, f64)> {
        self.store.snapshot()
    }

    fn reset(&mut self) {
        self.store.clear();
    }

    fn seed_history(&mut self, records: &[(ModuleId, f64)]) {
        for &(m, v) in records {
            self.store.set(m, v);
        }
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> ModuleId {
        ModuleId::new(i)
    }

    fn faulty_round(round: u64) -> Round {
        Round::from_numbers(round, &[18.0, 18.1, 17.9, 20.0, 18.05])
    }

    #[test]
    fn faulty_module_eliminated_in_round_two() {
        let mut v = ModuleEliminationVoter::with_defaults();
        let r1 = v.vote(&faulty_round(0)).unwrap();
        // Round 1: flat histories, nobody eliminated yet.
        assert!(r1.excluded.is_empty());
        let r2 = v.vote(&faulty_round(1)).unwrap();
        assert_eq!(r2.excluded, vec![m(3)]);
    }

    #[test]
    fn elimination_removes_the_skew_entirely() {
        let mut v = ModuleEliminationVoter::with_defaults();
        v.vote(&faulty_round(0)).unwrap();
        let out = v.vote(&faulty_round(1)).unwrap().number().unwrap();
        let clean_mean = (18.0 + 18.1 + 17.9 + 18.05) / 4.0;
        assert!((out - clean_mean).abs() < 1e-9, "out = {out}");
    }

    #[test]
    fn eliminated_module_can_rehabilitate() {
        let mut v = ModuleEliminationVoter::with_defaults();
        v.vote(&faulty_round(0)).unwrap();
        let r2 = v.vote(&faulty_round(1)).unwrap();
        assert_eq!(r2.excluded, vec![m(3)]);
        // The module starts submitting good values again; its record climbs
        // while discarded, and it eventually rejoins.
        let mut rejoined_at = None;
        for r in 2..20 {
            let verdict = v
                .vote(&Round::from_numbers(r, &[18.0, 18.1, 17.9, 18.02, 18.05]))
                .unwrap();
            if verdict.excluded.is_empty() {
                rejoined_at = Some(r);
                break;
            }
        }
        assert!(rejoined_at.is_some(), "module never rehabilitated");
    }

    #[test]
    fn flat_histories_eliminate_nobody() {
        let mut v = ModuleEliminationVoter::with_defaults();
        let verdict = v
            .vote(&Round::from_numbers(0, &[18.0, 18.1, 18.2]))
            .unwrap();
        assert!(verdict.excluded.is_empty());
    }

    #[test]
    fn weights_of_eliminated_are_zero_in_verdict() {
        let mut v = ModuleEliminationVoter::with_defaults();
        v.vote(&faulty_round(0)).unwrap();
        let r2 = v.vote(&faulty_round(1)).unwrap();
        assert_eq!(r2.weights[3].1, 0.0);
        assert!(r2.weights[0].1 > 0.0);
    }

    #[test]
    fn all_eliminated_falls_back_to_plain_mean() {
        // All histories zero → mask keeps everyone (flat), but weights are
        // all zero → plain-mean fallback.
        let store = MemoryHistory::with_records([(m(0), 0.0), (m(1), 0.0)]);
        let mut v = ModuleEliminationVoter::new(VoterConfig::default(), store);
        let verdict = v.vote(&Round::from_numbers(0, &[10.0, 30.0])).unwrap();
        assert_eq!(verdict.number(), Some(20.0));
    }

    #[test]
    fn converges_faster_than_standard() {
        use super::super::StandardVoter;
        let mut me = ModuleEliminationVoter::with_defaults();
        let mut std_v = StandardVoter::with_defaults();
        let clean_mean = (18.0 + 18.1 + 17.9 + 18.05) / 4.0;
        let eps = 0.02;
        let mut me_rounds = None;
        let mut std_rounds = None;
        for r in 0..40 {
            let me_out = me.vote(&faulty_round(r)).unwrap().number().unwrap();
            let st_out = std_v.vote(&faulty_round(r)).unwrap().number().unwrap();
            if me_rounds.is_none() && (me_out - clean_mean).abs() < eps {
                me_rounds = Some(r);
            }
            if std_rounds.is_none() && (st_out - clean_mean).abs() < eps {
                std_rounds = Some(r);
            }
        }
        let me_r = me_rounds.expect("ME converges");
        let std_r = std_rounds.expect("Standard converges");
        assert!(me_r < std_r, "ME {me_r} vs Standard {std_r}");
    }
}
