//! Soft-Dynamic-Threshold History-Based Weighted Average
//! (Das & Bhattacharya, 2010 — reference [11] of the paper).
//!
//! Identical to the Standard voter except that the *agreement definition*
//! driving the history records is graded rather than binary: "values between
//! 1 and 0 can be assigned if values are not in agreement based on the
//! accepted error threshold, but are in agreement based on a multiple of it"
//! (§4). The multiple is [`crate::AgreementParams::soft_multiplier`].

use super::common;
use super::{Verdict, Voter, VoterConfig};
use crate::collation::collate;
use crate::error::VoteError;
use crate::history::{HistoryStore, MemoryHistory};
use crate::round::{ModuleId, Round};

/// Soft-dynamic-threshold history-weighted voter (`Sdt`).
///
/// # Example
///
/// ```
/// use avoc_core::algorithms::{SoftDynamicVoter, Voter};
/// use avoc_core::Round;
///
/// let mut voter = SoftDynamicVoter::with_defaults();
/// let verdict = voter.vote(&Round::from_numbers(0, &[18.0, 18.1, 18.2]))?;
/// assert!(verdict.confidence > 0.9);
/// # Ok::<(), avoc_core::VoteError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SoftDynamicVoter<S: HistoryStore = MemoryHistory> {
    config: VoterConfig,
    store: S,
    scratch: common::Scratch,
}

impl SoftDynamicVoter<MemoryHistory> {
    /// Creates an Sdt voter with default configuration and in-memory
    /// history.
    pub fn with_defaults() -> Self {
        Self::new(VoterConfig::default(), MemoryHistory::new())
    }
}

impl<S: HistoryStore> SoftDynamicVoter<S> {
    /// Creates an Sdt voter over the given history store.
    pub fn new(config: VoterConfig, store: S) -> Self {
        SoftDynamicVoter {
            config,
            store,
            scratch: common::Scratch::default(),
        }
    }

    /// The voter's configuration.
    pub fn config(&self) -> &VoterConfig {
        &self.config
    }
}

impl<S: HistoryStore + Send> Voter for SoftDynamicVoter<S> {
    fn name(&self) -> &'static str {
        "soft-dynamic-threshold"
    }

    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        let mut out = Verdict::empty();
        self.vote_into(round, &mut out)?;
        Ok(out)
    }

    fn vote_into(&mut self, round: &Round, out: &mut Verdict) -> Result<(), VoteError> {
        common::candidates_into(round, &mut self.scratch.cand)?;
        self.scratch.values.clear();
        self.scratch
            .values
            .extend(self.scratch.cand.iter().map(|(_, v)| *v));
        common::fetch_histories_into(
            &mut self.store,
            &self.scratch.cand,
            &mut self.scratch.histories,
        );

        // The weights are the history records themselves.
        let output = match collate(
            self.config.collation,
            &self.scratch.values,
            &self.scratch.histories,
        ) {
            Some(v) => v,
            None => self.scratch.values.iter().sum::<f64>() / self.scratch.values.len() as f64,
        };

        // Graded agreement drives the record update.
        self.scratch.scores.clear();
        let agreement = self.config.agreement;
        self.scratch.scores.extend(
            self.scratch
                .values
                .iter()
                .map(|&v| agreement.soft_score(v, output)),
        );
        common::apply_updates(
            &mut self.store,
            self.config.update,
            &self.scratch.cand,
            &self.scratch.histories,
            &self.scratch.scores,
        );

        let confidence = common::weighted_confidence(
            &self.config.agreement,
            &self.scratch.cand,
            &self.scratch.histories,
            output,
        );
        common::fill_verdict(
            out,
            &self.scratch.cand,
            &self.scratch.histories,
            output,
            confidence,
            false,
        );
        Ok(())
    }

    fn histories(&self) -> Vec<(ModuleId, f64)> {
        self.store.snapshot()
    }

    fn reset(&mut self) {
        self.store.clear();
    }

    fn seed_history(&mut self, records: &[(ModuleId, f64)]) {
        for &(m, v) in records {
            self.store.set(m, v);
        }
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::StandardVoter;
    use super::*;

    #[test]
    fn borderline_disagreement_is_penalised_gently() {
        // A candidate in the soft band (beyond tol, inside 2×tol) should
        // lose less record than one far outside.
        let mut v = SoftDynamicVoter::with_defaults();
        // Output = 18.6; tol(20.4, 18.6) = 1.02; soft edge = 2.04.
        // 20.4 is 1.8 away → deep in the soft band: score ≈ 0.24,
        // so its record drops a little, but less than a full penalty.
        v.vote(&Round::from_numbers(0, &[18.0, 18.0, 18.0, 20.4]))
            .unwrap();
        let hs = v.histories();
        let borderline = hs[3].1;
        assert!(borderline > 0.9 && borderline < 1.0, "h = {borderline}");
    }

    #[test]
    fn far_outlier_gets_full_penalty() {
        let mut v = SoftDynamicVoter::with_defaults();
        v.vote(&Round::from_numbers(0, &[18.0, 18.1, 18.05, 40.0]))
            .unwrap();
        let hs = v.histories();
        assert!((hs[3].1 - 0.9).abs() < 1e-9, "h = {}", hs[3].1);
    }

    #[test]
    fn soft_penalty_is_smaller_than_standard_penalty() {
        let round = Round::from_numbers(0, &[18.0, 18.0, 18.0, 20.4]);
        let mut soft = SoftDynamicVoter::with_defaults();
        let mut std_v = StandardVoter::with_defaults();
        soft.vote(&round).unwrap();
        std_v.vote(&round).unwrap();
        let soft_h = soft.histories()[3].1;
        let std_h = std_v.histories()[3].1;
        assert!(
            soft_h > std_h,
            "soft {soft_h} should exceed standard {std_h} for a borderline value"
        );
    }

    #[test]
    fn identical_outputs_to_standard_on_clean_data() {
        // When all values agree tightly, Sdt and Standard coincide —
        // the Fig. 6-b observation that all variants match on clean data.
        let mut soft = SoftDynamicVoter::with_defaults();
        let mut std_v = StandardVoter::with_defaults();
        for r in 0..50 {
            let jitter = (r % 5) as f64 * 0.01;
            let round = Round::from_numbers(r, &[18.0 + jitter, 18.1, 17.95, 18.05]);
            let a = soft.vote(&round).unwrap().number().unwrap();
            let b = std_v.vote(&round).unwrap().number().unwrap();
            assert!((a - b).abs() < 1e-12, "round {r}: {a} vs {b}");
        }
    }

    #[test]
    fn zero_history_falls_back_to_plain_mean() {
        let store = MemoryHistory::with_records([(ModuleId::new(0), 0.0), (ModuleId::new(1), 0.0)]);
        let mut v = SoftDynamicVoter::new(VoterConfig::default(), store);
        let verdict = v.vote(&Round::from_numbers(0, &[5.0, 15.0])).unwrap();
        assert_eq!(verdict.number(), Some(10.0));
    }

    #[test]
    fn reset_and_statefulness() {
        let mut v = SoftDynamicVoter::with_defaults();
        assert!(v.is_stateful());
        v.vote(&Round::from_numbers(0, &[1.0, 2.0])).unwrap();
        assert_eq!(v.histories().len(), 2);
        v.reset();
        assert!(v.histories().is_empty());
    }
}
