//! The Standard history-based weighted average voter
//! (Latif-Shabgahi, Bass & Bennett, 2001 — reference [17] of the paper).
//!
//! Each module carries a historical record in `[0, 1]`. The round output is
//! the history-weighted collation of the candidate values; afterwards each
//! module's record is rewarded or penalised by its *binary* agreement with
//! that output. The paper's Fig. 6-c observation — an injected fault causes
//! "high initial skew, which is then slowly mitigated as the faulty sensor
//! is de-emphasised", without ever being eliminated — falls out of this
//! design: the faulty module's weight decays but its value keeps pulling the
//! mean until the weight reaches 0.

use super::common;
use super::{Verdict, Voter, VoterConfig};
use crate::collation::collate;
use crate::error::VoteError;
use crate::history::{HistoryStore, MemoryHistory};
use crate::round::{ModuleId, Round};

/// History-based weighted average voter (`standard` in Fig. 6).
///
/// Generic over the history storage backend; defaults to the in-memory
/// store.
///
/// # Example
///
/// ```
/// use avoc_core::algorithms::{StandardVoter, Voter};
/// use avoc_core::Round;
///
/// let mut voter = StandardVoter::with_defaults();
/// let verdict = voter.vote(&Round::from_numbers(0, &[18.0, 18.1, 18.2]))?;
/// assert!(verdict.number().is_some());
/// assert_eq!(voter.histories().len(), 3);
/// # Ok::<(), avoc_core::VoteError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StandardVoter<S: HistoryStore = MemoryHistory> {
    config: VoterConfig,
    store: S,
    scratch: common::Scratch,
}

impl StandardVoter<MemoryHistory> {
    /// Creates a standard voter with default configuration and in-memory
    /// history.
    pub fn with_defaults() -> Self {
        Self::new(VoterConfig::default(), MemoryHistory::new())
    }
}

impl<S: HistoryStore> StandardVoter<S> {
    /// Creates a standard voter over the given history store.
    pub fn new(config: VoterConfig, store: S) -> Self {
        StandardVoter {
            config,
            store,
            scratch: common::Scratch::default(),
        }
    }

    /// The voter's configuration.
    pub fn config(&self) -> &VoterConfig {
        &self.config
    }

    /// Borrows the underlying history store.
    pub fn store(&self) -> &S {
        &self.store
    }
}

impl<S: HistoryStore + Send> Voter for StandardVoter<S> {
    fn name(&self) -> &'static str {
        "standard"
    }

    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        let mut out = Verdict::empty();
        self.vote_into(round, &mut out)?;
        Ok(out)
    }

    fn vote_into(&mut self, round: &Round, out: &mut Verdict) -> Result<(), VoteError> {
        common::candidates_into(round, &mut self.scratch.cand)?;
        self.scratch.values.clear();
        self.scratch
            .values
            .extend(self.scratch.cand.iter().map(|(_, v)| *v));
        common::fetch_histories_into(
            &mut self.store,
            &self.scratch.cand,
            &mut self.scratch.histories,
        );

        // History-weighted vote; all-zero history falls back to the plain
        // average (§5: "history-based algorithms typically fall back to
        // standard average ... when the weights become 0"). The weights
        // *are* the history records, so the history buffer doubles as the
        // weight slice.
        let output = match collate(
            self.config.collation,
            &self.scratch.values,
            &self.scratch.histories,
        ) {
            Some(v) => v,
            None => self.scratch.values.iter().sum::<f64>() / self.scratch.values.len() as f64,
        };

        // Binary agreement drives the record update.
        self.scratch.scores.clear();
        let agreement = self.config.agreement;
        self.scratch.scores.extend(
            self.scratch
                .values
                .iter()
                .map(|&v| agreement.binary_score(v, output)),
        );
        common::apply_updates(
            &mut self.store,
            self.config.update,
            &self.scratch.cand,
            &self.scratch.histories,
            &self.scratch.scores,
        );

        let confidence = common::weighted_confidence(
            &self.config.agreement,
            &self.scratch.cand,
            &self.scratch.histories,
            output,
        );
        common::fill_verdict(
            out,
            &self.scratch.cand,
            &self.scratch.histories,
            output,
            confidence,
            false,
        );
        Ok(())
    }

    fn histories(&self) -> Vec<(ModuleId, f64)> {
        self.store.snapshot()
    }

    fn reset(&mut self) {
        self.store.clear();
    }

    fn seed_history(&mut self, records: &[(ModuleId, f64)]) {
        for &(m, v) in records {
            self.store.set(m, v);
        }
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryUpdate;

    fn faulty_round(round: u64) -> Round {
        // E4 (index 3) reads +2 above the others: far enough that the binary
        // threshold flags it against the (skewed) output, close enough that
        // the healthy sensors still agree with that output — the regime in
        // which Standard discriminates.
        Round::from_numbers(round, &[18.0, 18.1, 17.9, 20.0, 18.05])
    }

    #[test]
    fn first_round_is_plain_average_of_unit_histories() {
        let mut v = StandardVoter::with_defaults();
        let verdict = v.vote(&Round::from_numbers(0, &[10.0, 20.0])).unwrap();
        assert_eq!(verdict.number(), Some(15.0));
    }

    #[test]
    fn faulty_module_history_decays() {
        let mut v = StandardVoter::with_defaults();
        for r in 0..5 {
            v.vote(&faulty_round(r)).unwrap();
        }
        let hs = v.histories();
        let faulty = hs[3].1;
        let healthy = hs[0].1;
        assert!(faulty < healthy, "faulty {faulty} vs healthy {healthy}");
        assert!(faulty <= 0.5 + 1e-9);
    }

    #[test]
    fn skew_is_mitigated_slowly_but_not_eliminated_immediately() {
        let mut v = StandardVoter::with_defaults();
        let first = v.vote(&faulty_round(0)).unwrap().number().unwrap();
        let mut last = first;
        for r in 1..6 {
            last = v.vote(&faulty_round(r)).unwrap().number().unwrap();
        }
        let clean_mean = (18.0 + 18.1 + 17.9 + 18.05) / 4.0;
        // Output moves towards the clean mean as the faulty weight decays...
        assert!(last < first);
        // ...but within a few rounds the skew is not fully gone.
        assert!(
            last > clean_mean + 0.01,
            "last {last} vs clean {clean_mean}"
        );
    }

    #[test]
    fn after_history_zeroes_skew_disappears() {
        let mut v = StandardVoter::with_defaults();
        for r in 0..20 {
            v.vote(&faulty_round(r)).unwrap();
        }
        let out = v.vote(&faulty_round(20)).unwrap().number().unwrap();
        let clean_mean = (18.0 + 18.1 + 17.9 + 18.05) / 4.0;
        assert!((out - clean_mean).abs() < 0.05, "out = {out}");
        // The faulty module's record has bottomed out.
        assert_eq!(v.histories()[3].1, 0.0);
    }

    #[test]
    fn all_zero_histories_fall_back_to_plain_mean() {
        let store = MemoryHistory::with_records([(ModuleId::new(0), 0.0), (ModuleId::new(1), 0.0)]);
        let mut v = StandardVoter::new(VoterConfig::default(), store);
        let verdict = v.vote(&Round::from_numbers(0, &[10.0, 30.0])).unwrap();
        assert_eq!(verdict.number(), Some(20.0));
    }

    #[test]
    fn reset_clears_history() {
        let mut v = StandardVoter::with_defaults();
        v.vote(&faulty_round(0)).unwrap();
        assert!(!v.histories().is_empty());
        v.reset();
        assert!(v.histories().is_empty());
    }

    #[test]
    fn custom_update_rate_accelerates_decay() {
        let cfg = VoterConfig::default().with_update(HistoryUpdate::new(0.5));
        let mut v = StandardVoter::new(cfg, MemoryHistory::new());
        v.vote(&faulty_round(0)).unwrap();
        v.vote(&faulty_round(1)).unwrap();
        // After two rounds at rate 0.5 the faulty record is at 0.
        assert_eq!(v.histories()[3].1, 0.0);
    }

    #[test]
    fn is_stateful() {
        let v = StandardVoter::with_defaults();
        assert!(v.is_stateful());
        assert_eq!(v.name(), "standard");
    }
}
