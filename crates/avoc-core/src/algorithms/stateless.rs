//! Stateless *weighted* averaging: weights come from each candidate's
//! agreement with its peers in the current round only. This is the
//! "weighted average without history" baseline that clustering-only voting
//! "significantly outperforms" in the paper's UC-1 discussion.

use super::common;
use super::{Verdict, Voter, VoterConfig};
use crate::collation::collate;
use crate::error::VoteError;
use crate::round::Round;

/// Stateless agreement-weighted voter.
///
/// Each candidate's weight is its total soft-agreement with the other
/// candidates of the same round ([`AgreementMatrix::peer_support`]); the
/// weighted candidates are then collated per the configured method.
///
/// # Example
///
/// ```
/// use avoc_core::algorithms::{StatelessWeightedVoter, Voter};
/// use avoc_core::Round;
///
/// let mut voter = StatelessWeightedVoter::new(Default::default());
/// // The 25.0 outlier agrees with nobody, so its weight is 0.
/// let verdict = voter.vote(&Round::from_numbers(0, &[18.0, 18.2, 18.1, 25.0]))?;
/// assert!((verdict.number().unwrap() - 18.1).abs() < 0.1);
/// # Ok::<(), avoc_core::VoteError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct StatelessWeightedVoter {
    config: VoterConfig,
    scratch: common::Scratch,
}

impl StatelessWeightedVoter {
    /// Creates a stateless weighted voter.
    pub fn new(config: VoterConfig) -> Self {
        StatelessWeightedVoter {
            config,
            scratch: common::Scratch::default(),
        }
    }

    /// The voter's configuration.
    pub fn config(&self) -> &VoterConfig {
        &self.config
    }
}

impl Voter for StatelessWeightedVoter {
    fn name(&self) -> &'static str {
        "stateless-weighted"
    }

    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        let mut out = Verdict::empty();
        self.vote_into(round, &mut out)?;
        Ok(out)
    }

    fn vote_into(&mut self, round: &Round, out: &mut Verdict) -> Result<(), VoteError> {
        common::candidates_into(round, &mut self.scratch.cand)?;
        self.scratch.values.clear();
        self.scratch
            .values
            .extend(self.scratch.cand.iter().map(|(_, v)| *v));
        self.scratch
            .matrix
            .soft_in_place(&self.config.agreement, &self.scratch.values);
        self.scratch.weights.clear();
        for i in 0..self.scratch.values.len() {
            self.scratch
                .weights
                .push(self.scratch.matrix.peer_support(i));
        }
        // A lone candidate has no peers: give it unit weight rather than
        // failing the round.
        if self.scratch.values.len() == 1 {
            self.scratch.weights[0] = 1.0;
        }
        let output = match collate(
            self.config.collation,
            &self.scratch.values,
            &self.scratch.weights,
        ) {
            Some(v) => v,
            // Total disagreement: every candidate is its own island. Fall
            // back to the plain mean, mirroring the paper's zero-weight rule.
            None => self.scratch.values.iter().sum::<f64>() / self.scratch.values.len() as f64,
        };
        let confidence = common::weighted_confidence(
            &self.config.agreement,
            &self.scratch.cand,
            &self.scratch.weights,
            output,
        );
        common::fill_verdict(
            out,
            &self.scratch.cand,
            &self.scratch.weights,
            output,
            confidence,
            false,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlier_gets_zero_weight() {
        let mut v = StatelessWeightedVoter::new(Default::default());
        let verdict = v
            .vote(&Round::from_numbers(0, &[18.0, 18.2, 18.1, 25.0]))
            .unwrap();
        let outlier_weight = verdict.weights[3].1;
        assert_eq!(outlier_weight, 0.0);
        assert_eq!(verdict.excluded.len(), 1);
        // Output is unaffected by the outlier.
        assert!((verdict.number().unwrap() - 18.1).abs() < 0.1);
    }

    #[test]
    fn single_candidate_wins_outright() {
        let mut v = StatelessWeightedVoter::new(Default::default());
        let verdict = v.vote(&Round::from_numbers(0, &[42.0])).unwrap();
        assert_eq!(verdict.number(), Some(42.0));
        assert_eq!(verdict.confidence, 1.0);
    }

    #[test]
    fn total_disagreement_falls_back_to_mean() {
        let mut v = StatelessWeightedVoter::new(Default::default());
        let verdict = v
            .vote(&Round::from_numbers(0, &[0.0, 100.0, 200.0]))
            .unwrap();
        assert_eq!(verdict.number(), Some(100.0));
    }

    #[test]
    fn no_state_across_rounds() {
        let mut v = StatelessWeightedVoter::new(Default::default());
        // Round 1 has an outlier at module 0 ...
        let r1 = v
            .vote(&Round::from_numbers(0, &[30.0, 18.0, 18.1, 18.2]))
            .unwrap();
        assert!(r1.excluded.contains(&crate::ModuleId::new(0)));
        // ... but round 2's weights are unaffected by round 1.
        let r2 = v
            .vote(&Round::from_numbers(1, &[18.0, 18.1, 18.05, 18.2]))
            .unwrap();
        assert!(r2.excluded.is_empty());
        assert!(v.histories().is_empty());
    }

    #[test]
    fn two_equal_camps_average_out() {
        // Two agreeing pairs, far apart: symmetric weights, mean in between.
        let mut v = StatelessWeightedVoter::new(Default::default());
        let verdict = v
            .vote(&Round::from_numbers(0, &[10.0, 10.0, 20.0, 20.0]))
            .unwrap();
        assert_eq!(verdict.number(), Some(15.0));
    }
}
