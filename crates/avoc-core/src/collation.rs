//! Collation: turning weighted candidates into one output value.
//!
//! The paper's UC-2 finding is that the collation method — *averaging the
//! weighted values* versus *mean-nearest-neighbour selection* — dominates the
//! output behaviour in noisy scenarios, while the history method becomes
//! irrelevant. Collation is therefore a first-class, swappable parameter
//! (VDX `collation` field).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Numeric collation technique (VDX `collation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(rename_all = "SCREAMING_SNAKE_CASE")]
pub enum Collation {
    /// Weighted arithmetic mean of the candidates — an *amalgamation*
    /// technique: the output need not equal any submitted value.
    #[default]
    WeightedMean,
    /// Mean-nearest-neighbour — a *selection* technique: the candidate value
    /// closest to the weighted mean wins, so the output is always a real
    /// measurement (the Hybrid voter's default).
    MeanNearestNeighbor,
    /// Weighted median of the candidates (robust amalgamation; an extension
    /// beyond the paper's four collation modes).
    Median,
}

impl fmt::Display for Collation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Collation::WeightedMean => "weighted-mean",
            Collation::MeanNearestNeighbor => "mean-nearest-neighbor",
            Collation::Median => "median",
        };
        f.write_str(s)
    }
}

/// Collates weighted scalar candidates into one output.
///
/// Candidates with non-positive weight are ignored. Returns `None` when no
/// candidate carries positive weight (the caller decides the fallback: plain
/// mean, last-good value, or an error).
///
/// # Example
///
/// ```
/// use avoc_core::collation::{collate, Collation};
///
/// let values = [18.0, 18.4, 30.0];
/// let weights = [1.0, 1.0, 0.0]; // outlier eliminated
/// assert_eq!(collate(Collation::WeightedMean, &values, &weights), Some(18.2));
/// assert_eq!(collate(Collation::MeanNearestNeighbor, &values, &weights), Some(18.0));
/// ```
///
/// # Panics
///
/// Panics if `values` and `weights` differ in length.
pub fn collate(method: Collation, values: &[f64], weights: &[f64]) -> Option<f64> {
    assert_eq!(
        values.len(),
        weights.len(),
        "values/weights length mismatch"
    );
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    match method {
        Collation::WeightedMean => {
            let sum: f64 = values
                .iter()
                .zip(weights)
                .filter(|(_, &w)| w > 0.0)
                .map(|(&v, &w)| v * w)
                .sum();
            Some(sum / total)
        }
        Collation::MeanNearestNeighbor => {
            let mean = collate(Collation::WeightedMean, values, weights)?;
            values
                .iter()
                .zip(weights)
                .filter(|(_, &w)| w > 0.0)
                .min_by(|(a, _), (b, _)| {
                    (*a - mean)
                        .abs()
                        .partial_cmp(&(*b - mean).abs())
                        .expect("finite candidates")
                })
                .map(|(&v, _)| v)
        }
        Collation::Median => weighted_median(values, weights),
    }
}

/// Weighted median: the smallest value `v` such that the cumulative weight of
/// candidates `≤ v` reaches half the total weight.
fn weighted_median(values: &[f64], weights: &[f64]) -> Option<f64> {
    let mut pairs: Vec<(f64, f64)> = values
        .iter()
        .zip(weights)
        .filter(|(_, &w)| w > 0.0)
        .map(|(&v, &w)| (v, w))
        .collect();
    if pairs.is_empty() {
        return None;
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite candidates"));
    let total: f64 = pairs.iter().map(|(_, w)| w).sum();
    let half = total / 2.0;
    let mut acc = 0.0;
    for (v, w) in &pairs {
        acc += w;
        if acc >= half {
            return Some(*v);
        }
    }
    Some(pairs[pairs.len() - 1].0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_mean_respects_weights() {
        let out = collate(Collation::WeightedMean, &[10.0, 20.0], &[3.0, 1.0]).unwrap();
        assert!((out - 12.5).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_candidates_are_ignored() {
        let out = collate(Collation::WeightedMean, &[10.0, 1000.0], &[1.0, 0.0]).unwrap();
        assert_eq!(out, 10.0);
    }

    #[test]
    fn all_zero_weights_yield_none() {
        assert_eq!(
            collate(Collation::WeightedMean, &[1.0, 2.0], &[0.0, 0.0]),
            None
        );
        assert_eq!(
            collate(Collation::MeanNearestNeighbor, &[1.0], &[0.0]),
            None
        );
        assert_eq!(collate(Collation::Median, &[], &[]), None);
    }

    #[test]
    fn mean_nearest_neighbor_returns_a_real_candidate() {
        let values = [17.9, 18.2, 18.6];
        let weights = [1.0, 1.0, 1.0];
        let out = collate(Collation::MeanNearestNeighbor, &values, &weights).unwrap();
        assert!(values.contains(&out));
        assert_eq!(out, 18.2); // mean ≈ 18.2333, nearest is 18.2
    }

    #[test]
    fn mnn_ignores_zero_weight_even_if_nearest() {
        // 18.23 would be nearest to the mean but carries no weight.
        let values = [18.0, 18.5, 18.23];
        let weights = [1.0, 1.0, 0.0];
        let out = collate(Collation::MeanNearestNeighbor, &values, &weights).unwrap();
        assert!(out == 18.0 || out == 18.5);
    }

    #[test]
    fn median_odd_and_even() {
        let out = collate(Collation::Median, &[1.0, 9.0, 5.0], &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(out, 5.0);
        // Heavy weight drags the median.
        let out = collate(Collation::Median, &[1.0, 9.0, 5.0], &[5.0, 1.0, 1.0]).unwrap();
        assert_eq!(out, 1.0);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let out = collate(
            Collation::Median,
            &[18.0, 18.1, 18.2, 900.0],
            &[1.0, 1.0, 1.0, 1.0],
        )
        .unwrap();
        assert!(out <= 18.2);
    }

    #[test]
    fn single_candidate_all_methods() {
        for m in [
            Collation::WeightedMean,
            Collation::MeanNearestNeighbor,
            Collation::Median,
        ] {
            assert_eq!(collate(m, &[7.0], &[0.5]), Some(7.0), "method {m}");
        }
    }

    #[test]
    fn serde_names_match_vdx_convention() {
        assert_eq!(
            serde_json::to_string(&Collation::MeanNearestNeighbor).unwrap(),
            "\"MEAN_NEAREST_NEIGHBOR\""
        );
        let c: Collation = serde_json::from_str("\"WEIGHTED_MEAN\"").unwrap();
        assert_eq!(c, Collation::WeightedMean);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = collate(Collation::WeightedMean, &[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn display_is_kebab_case() {
        assert_eq!(Collation::WeightedMean.to_string(), "weighted-mean");
        assert_eq!(
            Collation::MeanNearestNeighbor.to_string(),
            "mean-nearest-neighbor"
        );
    }
}
