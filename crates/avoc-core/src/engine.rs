//! The round-driving voting engine: quorum, exclusion and fault policies
//! wrapped around a [`Voter`].
//!
//! The paper's UC-2 fault scenarios (§7) motivate this layer: missing
//! values, conflicting results and ties must be handled by *parametric*
//! policies — "voting algorithm implementations in a generic data fusion
//! platform should be parametric". The engine implements the behaviours the
//! paper describes: proceeding on sub-majority missingness, reverting to the
//! last accepted result or raising an error when the majority is missing,
//! and tie-breaking by proximity to the previous output.

use crate::algorithms::{Verdict, Voter};
use crate::error::VoteError;
use crate::exclusion::Exclusion;
use crate::quorum::Quorum;
use crate::round::{Ballot, Round};
use crate::value::Value;
use std::collections::VecDeque;

/// What the engine does when a round cannot produce a trustworthy vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FallbackAction {
    /// Revert to the last accepted output ("the system should either revert
    /// to the last accepted result, or raise an error"). If there is none,
    /// the round is skipped.
    #[default]
    LastGood,
    /// Surface the failure to the caller.
    Error,
    /// Emit no output for this round.
    Skip,
}

/// How categorical ties are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TieBreak {
    /// Prefer the tied candidate equal to the previous output — the paper's
    /// "proximity to the previous output" mechanism. Falls back to the
    /// first candidate when no previous output matches.
    #[default]
    NearPrevious,
    /// Pick the lexicographically smallest candidate (deterministic).
    First,
    /// Refuse to decide.
    Error,
}

/// The engine's fault-handling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FaultPolicy {
    /// Applied when quorum is not reached (majority-missing scenario).
    pub on_no_quorum: FallbackAction,
    /// Applied when the voter itself fails (empty round after exclusion,
    /// no majority, type errors).
    pub on_voter_error: FallbackAction,
    /// Applied to categorical ties.
    pub on_tie: TieBreak,
}

/// Why a round fell back or was skipped.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultReason {
    /// Quorum not reached.
    NoQuorum {
        /// Ballots present.
        present: usize,
        /// Ballots required.
        required: usize,
    },
    /// The voter returned an error.
    Voter(VoteError),
}

/// Outcome of submitting one round to the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundResult {
    /// The voter produced a verdict.
    Voted(Verdict),
    /// A tie was broken by policy; the chosen value is attached.
    TieBroken {
        /// The value selected by the tie-break.
        value: Value,
        /// The tied candidates.
        candidates: Vec<String>,
    },
    /// The engine fell back to the last accepted output.
    Fallback {
        /// The last accepted output, re-emitted.
        value: Value,
        /// Why the round could not vote.
        reason: FaultReason,
    },
    /// The round produced no output.
    Skipped {
        /// Why the round could not vote.
        reason: FaultReason,
    },
}

impl RoundResult {
    /// The output value, if the round produced one.
    pub fn value(&self) -> Option<&Value> {
        match self {
            RoundResult::Voted(v) => Some(&v.value),
            RoundResult::TieBroken { value, .. } => Some(value),
            RoundResult::Fallback { value, .. } => Some(value),
            RoundResult::Skipped { .. } => None,
        }
    }

    /// The scalar output, when numeric.
    pub fn number(&self) -> Option<f64> {
        self.value().and_then(Value::as_number)
    }

    /// Whether a genuine (non-fallback) vote happened.
    pub fn is_voted(&self) -> bool {
        matches!(self, RoundResult::Voted(_))
    }
}

/// One entry of the engine's diagnostic round log.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// The round number.
    pub round: u64,
    /// The emitted value, if any.
    pub output: Option<Value>,
    /// Whether a genuine vote happened (vs. tie-break/fallback/skip).
    pub voted: bool,
    /// The verdict's confidence, for voted rounds.
    pub confidence: Option<f64>,
}

/// Counters the engine maintains across rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Rounds submitted.
    pub rounds: u64,
    /// Rounds that produced a genuine vote.
    pub voted: u64,
    /// Rounds resolved by tie-break.
    pub ties_broken: u64,
    /// Rounds that fell back to the last-good value.
    pub fallbacks: u64,
    /// Rounds skipped with no output.
    pub skipped: u64,
    /// Rounds surfaced as errors.
    pub errors: u64,
}

/// The voting engine.
///
/// # Example
///
/// ```
/// use avoc_core::algorithms::AvocVoter;
/// use avoc_core::engine::VotingEngine;
/// use avoc_core::{Quorum, Round};
///
/// let mut engine = VotingEngine::new(Box::new(AvocVoter::with_defaults()))
///     .with_quorum(Quorum::Majority);
/// let outcome = engine.submit(&Round::from_numbers(0, &[18.0, 18.1, 17.9]))?;
/// assert!(outcome.is_voted());
/// # Ok::<(), avoc_core::VoteError>(())
/// ```
pub struct VotingEngine {
    voter: Box<dyn Voter>,
    quorum: Quorum,
    exclusion: Exclusion,
    policy: FaultPolicy,
    last_good: Option<Value>,
    stats: EngineStats,
    log: VecDeque<RoundRecord>,
    log_capacity: usize,
    /// Reusable outcome slot: consecutive voted rounds rewrite the same
    /// verdict buffers instead of allocating a fresh `RoundResult`.
    outcome: RoundResult,
    scratch: EngineScratch,
}

/// Reusable engine-level scratch for the exclusion pre-pass.
#[derive(Debug)]
struct EngineScratch {
    /// `(ballot index, value)` for the round's numeric ballots.
    numeric: Vec<(usize, f64)>,
    /// The numeric values alone, fed to the exclusion policy.
    values: Vec<f64>,
    /// Indices (into `numeric`) the policy excluded.
    excluded: Vec<usize>,
    /// In-place copy of the round with excluded ballots blanked — replaces
    /// the `ballots.clone()` the old path paid whenever anything was
    /// excluded.
    round: Round,
}

impl Default for EngineScratch {
    fn default() -> Self {
        EngineScratch {
            numeric: Vec::new(),
            values: Vec::new(),
            excluded: Vec::new(),
            round: Round::new(0, Vec::new()),
        }
    }
}

impl std::fmt::Debug for VotingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VotingEngine")
            .field("voter", &self.voter.name())
            .field("quorum", &self.quorum)
            .field("exclusion", &self.exclusion)
            .field("policy", &self.policy)
            .field("stats", &self.stats)
            .finish()
    }
}

impl VotingEngine {
    /// Creates an engine around a voter with default policies
    /// (majority quorum, no exclusion, last-good fallbacks).
    pub fn new(voter: Box<dyn Voter>) -> Self {
        VotingEngine {
            voter,
            quorum: Quorum::default(),
            exclusion: Exclusion::default(),
            policy: FaultPolicy::default(),
            last_good: None,
            stats: EngineStats::default(),
            log: VecDeque::new(),
            log_capacity: 0,
            outcome: RoundResult::Skipped {
                reason: FaultReason::Voter(VoteError::EmptyRound),
            },
            scratch: EngineScratch::default(),
        }
    }

    /// Enables the diagnostic round log, keeping the most recent
    /// `capacity` outcomes — what the shoe-box demonstrator's display
    /// renders, and what an operator inspects after an incident.
    pub fn with_log_capacity(mut self, capacity: usize) -> Self {
        self.log_capacity = capacity;
        self.log.truncate(capacity);
        self
    }

    /// The most recent outcomes, oldest first (empty unless enabled via
    /// [`VotingEngine::with_log_capacity`]).
    pub fn recent(&self) -> impl Iterator<Item = &RoundRecord> {
        self.log.iter()
    }

    /// Sets the quorum policy.
    pub fn with_quorum(mut self, quorum: Quorum) -> Self {
        self.quorum = quorum;
        self
    }

    /// Sets the pre-vote exclusion policy.
    pub fn with_exclusion(mut self, exclusion: Exclusion) -> Self {
        self.exclusion = exclusion;
        self
    }

    /// Sets the fault policy.
    pub fn with_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The engine's counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The wrapped voter's name.
    pub fn voter_name(&self) -> &'static str {
        self.voter.name()
    }

    /// The wrapped voter's history snapshot.
    pub fn histories(&self) -> Vec<(crate::ModuleId, f64)> {
        self.voter.histories()
    }

    /// Seeds the wrapped voter's historical records — the warm-restart path
    /// for a service restoring a checkpointed engine (see
    /// [`crate::algorithms::Voter::seed_history`]). `last_good` is *not*
    /// restored: fallback rounds immediately after a restart behave as on a
    /// fresh engine until the first vote lands.
    pub fn seed_histories(&mut self, records: &[(crate::ModuleId, f64)]) {
        self.voter.seed_history(records);
    }

    /// The last accepted output, if any.
    pub fn last_good(&self) -> Option<&Value> {
        self.last_good.as_ref()
    }

    /// Submits one round.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`VoteError`] only when the corresponding
    /// policy is [`FallbackAction::Error`]; otherwise faults are absorbed
    /// into [`RoundResult::Fallback`] / [`RoundResult::Skipped`].
    pub fn submit(&mut self, round: &Round) -> Result<RoundResult, VoteError> {
        self.submit_ref(round).cloned()
    }

    /// Submits one round, returning a reference to the engine's reusable
    /// outcome slot — the allocation-free flavour of [`VotingEngine::submit`].
    ///
    /// In steady state (consecutive voted numeric rounds, voter scratch
    /// warmed up, round log disabled) this performs zero heap allocations:
    /// the verdict inside the slot is rewritten in place each round.
    /// The returned reference is valid until the next submission.
    ///
    /// # Errors
    ///
    /// Exactly as [`VotingEngine::submit`].
    pub fn submit_ref(&mut self, round: &Round) -> Result<&RoundResult, VoteError> {
        let result = self.submit_inner(round);
        if self.log_capacity > 0 {
            let record = match &result {
                Ok(()) => RoundRecord {
                    round: round.round,
                    output: self.outcome.value().cloned(),
                    voted: self.outcome.is_voted(),
                    confidence: match &self.outcome {
                        RoundResult::Voted(v) => Some(v.confidence),
                        _ => None,
                    },
                },
                Err(_) => RoundRecord {
                    round: round.round,
                    output: None,
                    voted: false,
                    confidence: None,
                },
            };
            if self.log.len() == self.log_capacity {
                self.log.pop_front();
            }
            self.log.push_back(record);
        }
        result.map(|()| &self.outcome)
    }

    fn submit_inner(&mut self, round: &Round) -> Result<(), VoteError> {
        self.stats.rounds += 1;

        // 1. Quorum.
        let expected = round.expected_count();
        let present = round.present_count();
        if !self.quorum.is_met(present, expected) {
            let reason = FaultReason::NoQuorum {
                present,
                required: self.quorum.required(expected),
            };
            return self.absorb(
                self.policy.on_no_quorum,
                reason,
                VoteError::NoQuorum {
                    present,
                    required: self.quorum.required(expected),
                },
            );
        }

        // 2. Exclusion: prune implausible numeric values before the vote.
        //    When anything was excluded, the pruned round lives in
        //    `self.scratch.round` (rebuilt in place, not cloned).
        let pruned = self.apply_exclusion(round);

        // 3. Vote, rewriting the verdict kept inside the outcome slot. When
        //    the previous round also voted, its buffers are recycled.
        let verdict = match &mut self.outcome {
            RoundResult::Voted(v) => v,
            slot => {
                *slot = RoundResult::Voted(Verdict::empty());
                match slot {
                    RoundResult::Voted(v) => v,
                    _ => unreachable!("slot was just set to Voted"),
                }
            }
        };
        let vote_result = if pruned {
            self.voter.vote_into(&self.scratch.round, verdict)
        } else {
            self.voter.vote_into(round, verdict)
        };
        match vote_result {
            Ok(()) => {
                self.stats.voted += 1;
                if let RoundResult::Voted(v) = &self.outcome {
                    self.last_good = Some(v.value.clone());
                }
                Ok(())
            }
            Err(VoteError::Tie { candidates }) => self.break_tie(candidates),
            Err(err) => {
                let reason = FaultReason::Voter(err.clone());
                self.absorb(self.policy.on_voter_error, reason, err)
            }
        }
    }

    /// Turns excluded ballots into missing ones inside `self.scratch.round`;
    /// `false` when nothing was excluded (the caller votes on the original
    /// round). Early-outs without touching the allocator when exclusion is
    /// disabled, when the round carries no numeric ballots, or when the
    /// policy excludes nothing.
    fn apply_exclusion(&mut self, round: &Round) -> bool {
        if self.exclusion == Exclusion::None {
            return false;
        }
        let s = &mut self.scratch;
        s.numeric.clear();
        s.values.clear();
        for (i, b) in round.ballots.iter().enumerate() {
            if let Some(v) = b.value.as_ref().and_then(Value::as_number) {
                s.numeric.push((i, v));
                s.values.push(v);
            }
        }
        if s.values.is_empty() {
            // No numeric ballots: nothing a numeric exclusion policy could
            // prune, so skip the policy entirely.
            return false;
        }
        self.exclusion.excluded_into(&s.values, &mut s.excluded);
        if s.excluded.is_empty() {
            return false;
        }
        s.round.round = round.round;
        s.round.ballots.clone_from(&round.ballots);
        for &ei in &s.excluded {
            let (ballot_idx, _) = s.numeric[ei];
            let module = s.round.ballots[ballot_idx].module;
            s.round.ballots[ballot_idx] = Ballot::missing(module);
        }
        true
    }

    fn break_tie(&mut self, candidates: Vec<String>) -> Result<(), VoteError> {
        let chosen = match self.policy.on_tie {
            TieBreak::Error => {
                self.stats.errors += 1;
                return Err(VoteError::Tie { candidates });
            }
            TieBreak::First => {
                let mut sorted = candidates.clone();
                sorted.sort();
                sorted.into_iter().next()
            }
            TieBreak::NearPrevious => {
                let prev = self.last_good.as_ref().and_then(Value::as_text);
                match prev {
                    Some(p) if candidates.iter().any(|c| c == p) => Some(p.to_owned()),
                    _ => candidates.first().cloned(),
                }
            }
        };
        match chosen {
            Some(value) => {
                self.stats.ties_broken += 1;
                let value = Value::Text(value);
                self.last_good = Some(value.clone());
                self.outcome = RoundResult::TieBroken { value, candidates };
                Ok(())
            }
            None => {
                self.stats.errors += 1;
                Err(VoteError::Tie { candidates })
            }
        }
    }

    fn absorb(
        &mut self,
        action: FallbackAction,
        reason: FaultReason,
        err: VoteError,
    ) -> Result<(), VoteError> {
        match action {
            FallbackAction::Error => {
                self.stats.errors += 1;
                Err(err)
            }
            FallbackAction::Skip => {
                self.stats.skipped += 1;
                self.outcome = RoundResult::Skipped { reason };
                Ok(())
            }
            FallbackAction::LastGood => match self.last_good.clone() {
                Some(value) => {
                    self.stats.fallbacks += 1;
                    self.outcome = RoundResult::Fallback { value, reason };
                    Ok(())
                }
                None => {
                    self.stats.skipped += 1;
                    self.outcome = RoundResult::Skipped { reason };
                    Ok(())
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{AvocVoter, MajorityVoter};
    use crate::round::ModuleId;

    fn engine() -> VotingEngine {
        VotingEngine::new(Box::new(AvocVoter::with_defaults()))
    }

    #[test]
    fn votes_on_full_round() {
        let mut e = engine();
        let out = e
            .submit(&Round::from_numbers(0, &[18.0, 18.1, 17.9]))
            .unwrap();
        assert!(out.is_voted());
        assert_eq!(e.stats().voted, 1);
    }

    #[test]
    fn sub_majority_missing_still_votes() {
        let mut e = engine();
        // 3 of 5 present: majority quorum met, vote proceeds.
        let round =
            Round::from_sparse_numbers(0, &[Some(18.0), None, Some(18.1), None, Some(17.9)]);
        let out = e.submit(&round).unwrap();
        assert!(out.is_voted());
    }

    #[test]
    fn majority_missing_falls_back_to_last_good() {
        let mut e = engine();
        e.submit(&Round::from_numbers(0, &[18.0, 18.1, 17.9, 18.05, 18.2]))
            .unwrap();
        let starved = Round::from_sparse_numbers(1, &[Some(18.4), None, None, None, None]);
        let out = e.submit(&starved).unwrap();
        match out {
            RoundResult::Fallback { value, reason } => {
                assert!(value.as_number().is_some());
                assert!(matches!(
                    reason,
                    FaultReason::NoQuorum {
                        present: 1,
                        required: 3
                    }
                ));
            }
            other => panic!("expected fallback, got {other:?}"),
        }
        assert_eq!(e.stats().fallbacks, 1);
    }

    #[test]
    fn majority_missing_without_history_skips() {
        let mut e = engine();
        let starved = Round::from_sparse_numbers(0, &[Some(18.4), None, None]);
        let out = e.submit(&starved).unwrap();
        assert!(matches!(out, RoundResult::Skipped { .. }));
        assert_eq!(e.stats().skipped, 1);
    }

    #[test]
    fn error_policy_surfaces_no_quorum() {
        let mut e = engine().with_policy(FaultPolicy {
            on_no_quorum: FallbackAction::Error,
            ..Default::default()
        });
        let starved = Round::from_sparse_numbers(0, &[Some(1.0), None, None]);
        let err = e.submit(&starved).unwrap_err();
        assert!(matches!(
            err,
            VoteError::NoQuorum {
                present: 1,
                required: 2
            }
        ));
    }

    #[test]
    fn exclusion_prunes_before_vote() {
        let mut e = engine().with_exclusion(Exclusion::Range {
            min: 0.0,
            max: 100.0,
        });
        let out = e
            .submit(&Round::from_numbers(0, &[18.0, 18.1, 5000.0]))
            .unwrap();
        match out {
            RoundResult::Voted(v) => {
                assert!((v.number().unwrap() - 18.05).abs() < 0.1);
            }
            other => panic!("expected vote, got {other:?}"),
        }
    }

    #[test]
    fn exclusion_can_starve_the_voter() {
        let mut e = engine()
            .with_quorum(Quorum::Any)
            .with_exclusion(Exclusion::Range { min: 0.0, max: 1.0 })
            .with_policy(FaultPolicy {
                on_voter_error: FallbackAction::Skip,
                ..Default::default()
            });
        let out = e.submit(&Round::from_numbers(0, &[50.0, 60.0])).unwrap();
        assert!(matches!(
            out,
            RoundResult::Skipped {
                reason: FaultReason::Voter(VoteError::EmptyRound)
            }
        ));
    }

    #[test]
    fn categorical_tie_broken_near_previous() {
        let mut e =
            VotingEngine::new(Box::new(MajorityVoter::with_defaults())).with_quorum(Quorum::Any);
        // Establish "open" as the accepted output.
        let r0 = Round::new(
            0,
            vec![
                crate::Ballot::new(ModuleId::new(0), "open"),
                crate::Ballot::new(ModuleId::new(1), "open"),
                crate::Ballot::new(ModuleId::new(2), "closed"),
            ],
        );
        e.submit(&r0).unwrap();
        // 2-2 tie with fresh modules: proximity to the previous output wins.
        let r1 = Round::new(
            1,
            vec![
                crate::Ballot::new(ModuleId::new(3), "open"),
                crate::Ballot::new(ModuleId::new(4), "open"),
                crate::Ballot::new(ModuleId::new(5), "closed"),
                crate::Ballot::new(ModuleId::new(6), "closed"),
            ],
        );
        let out = e.submit(&r1).unwrap();
        match out {
            RoundResult::TieBroken { value, candidates } => {
                assert_eq!(value.as_text(), Some("open"));
                assert_eq!(candidates.len(), 2);
            }
            other => panic!("expected tie-break, got {other:?}"),
        }
        assert_eq!(e.stats().ties_broken, 1);
    }

    #[test]
    fn tie_error_policy_surfaces() {
        let mut e = VotingEngine::new(Box::new(MajorityVoter::with_defaults()))
            .with_quorum(Quorum::Any)
            .with_policy(FaultPolicy {
                on_tie: TieBreak::Error,
                ..Default::default()
            });
        let r = Round::new(
            0,
            vec![
                crate::Ballot::new(ModuleId::new(0), "a"),
                crate::Ballot::new(ModuleId::new(1), "b"),
            ],
        );
        assert!(matches!(e.submit(&r), Err(VoteError::Tie { .. })));
        assert_eq!(e.stats().errors, 1);
    }

    #[test]
    fn tie_first_policy_is_deterministic() {
        let mut e = VotingEngine::new(Box::new(MajorityVoter::with_defaults()))
            .with_quorum(Quorum::Any)
            .with_policy(FaultPolicy {
                on_tie: TieBreak::First,
                ..Default::default()
            });
        let r = Round::new(
            0,
            vec![
                crate::Ballot::new(ModuleId::new(0), "zeta"),
                crate::Ballot::new(ModuleId::new(1), "alpha"),
            ],
        );
        let out = e.submit(&r).unwrap();
        assert_eq!(out.value().unwrap().as_text(), Some("alpha"));
    }

    #[test]
    fn stats_accumulate() {
        let mut e = engine();
        e.submit(&Round::from_numbers(0, &[1.0, 1.0, 1.0])).unwrap();
        e.submit(&Round::from_sparse_numbers(1, &[None, None, Some(1.0)]))
            .unwrap();
        let s = e.stats();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.voted, 1);
        assert_eq!(s.fallbacks, 1);
    }

    #[test]
    fn last_good_tracks_votes() {
        let mut e = engine();
        assert!(e.last_good().is_none());
        e.submit(&Round::from_numbers(0, &[2.0, 2.0, 2.0])).unwrap();
        assert_eq!(e.last_good().and_then(Value::as_number), Some(2.0));
    }

    #[test]
    fn exclusion_none_short_circuits_without_pruning() {
        // Exclusion::None must never reach the scratch round: the verdict is
        // identical to a no-exclusion engine, outlier included.
        let mut plain = VotingEngine::new(Box::new(MajorityVoter::with_defaults()));
        let mut none = VotingEngine::new(Box::new(MajorityVoter::with_defaults()))
            .with_exclusion(Exclusion::None);
        let round = Round::from_numbers(0, &[18.0, 18.0, 99.0]);
        let a = plain.submit(&round).unwrap();
        let b = none.submit(&round).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn non_numeric_rounds_skip_exclusion_scan() {
        // A text-only round has no numeric ballots: the numeric exclusion
        // policy must early-out and leave the round untouched rather than
        // erroring or blanking anything.
        let mut e = VotingEngine::new(Box::new(MajorityVoter::with_defaults()))
            .with_exclusion(Exclusion::StdDev(1.0));
        let round = Round::new(
            0,
            vec![
                crate::round::Ballot::new(ModuleId::new(0), "on"),
                crate::round::Ballot::new(ModuleId::new(1), "on"),
                crate::round::Ballot::new(ModuleId::new(2), "off"),
            ],
        );
        let out = e.submit(&round).unwrap();
        assert_eq!(out.value().and_then(Value::as_text), Some("on"));
    }

    #[test]
    fn submit_ref_matches_submit() {
        // The borrowing hot path and the cloning wrapper must agree round by
        // round, including exclusion-pruned and fallback rounds.
        let mut a = engine().with_exclusion(Exclusion::StdDev(1.0));
        let mut b = engine().with_exclusion(Exclusion::StdDev(1.0));
        let rounds = [
            Round::from_numbers(0, &[18.0, 18.1, 17.9, 24.0]),
            Round::from_numbers(1, &[18.0, 18.1, 17.9, 24.0]),
            Round::from_sparse_numbers(2, &[Some(18.0), None, None, None]),
            Round::from_numbers(3, &[18.0, 18.1, 18.05, 17.95]),
        ];
        for round in &rounds {
            let owned = a.submit(round).unwrap();
            let borrowed = b.submit_ref(round).unwrap();
            assert_eq!(format!("{owned:?}"), format!("{borrowed:?}"));
        }
        assert_eq!(a.stats(), b.stats());
    }
}

#[cfg(test)]
mod log_tests {
    use super::*;
    use crate::algorithms::AvocVoter;

    fn engine_with_log(capacity: usize) -> VotingEngine {
        VotingEngine::new(Box::new(AvocVoter::with_defaults())).with_log_capacity(capacity)
    }

    #[test]
    fn log_disabled_by_default() {
        let mut e = VotingEngine::new(Box::new(AvocVoter::with_defaults()));
        e.submit(&Round::from_numbers(0, &[1.0, 1.0, 1.0])).unwrap();
        assert_eq!(e.recent().count(), 0);
    }

    #[test]
    fn log_records_votes_with_confidence() {
        let mut e = engine_with_log(10);
        e.submit(&Round::from_numbers(7, &[18.0, 18.1, 17.9]))
            .unwrap();
        let records: Vec<&RoundRecord> = e.recent().collect();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].round, 7);
        assert!(records[0].voted);
        assert!(records[0].confidence.unwrap() > 0.5);
        assert!(records[0].output.is_some());
    }

    #[test]
    fn log_is_bounded_and_ordered() {
        let mut e = engine_with_log(3);
        for r in 0..10u64 {
            e.submit(&Round::from_numbers(r, &[1.0, 1.0, 1.0])).unwrap();
        }
        let rounds: Vec<u64> = e.recent().map(|r| r.round).collect();
        assert_eq!(rounds, vec![7, 8, 9]);
    }

    #[test]
    fn fallbacks_and_skips_are_logged_without_confidence() {
        let mut e = engine_with_log(5);
        let starved = Round::from_sparse_numbers(3, &[Some(1.0), None, None]);
        e.submit(&starved).unwrap(); // skip: no last-good yet
        let records: Vec<&RoundRecord> = e.recent().collect();
        assert_eq!(records.len(), 1);
        assert!(!records[0].voted);
        assert!(records[0].confidence.is_none());
        assert!(records[0].output.is_none());
    }
}
