//! Error types for the voting core.

use std::error::Error;
use std::fmt;

/// Errors produced while evaluating a voting round.
///
/// The paper's fault scenarios (§7) map onto these variants: *missing values*
/// beyond quorum become [`VoteError::NoQuorum`], and *conflicting results*
/// with no absolute majority become [`VoteError::NoMajority`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VoteError {
    /// The round contained no usable ballots at all.
    EmptyRound,
    /// Fewer candidates submitted values than the quorum policy requires.
    NoQuorum {
        /// Number of candidates that did submit a value.
        present: usize,
        /// Number of candidates the quorum policy requires.
        required: usize,
    },
    /// No absolute majority exists among conflicting candidate outputs and
    /// the tie-break policy refused to pick one.
    NoMajority {
        /// Size of the largest agreeing group.
        largest_group: usize,
        /// Total number of candidates considered.
        total: usize,
    },
    /// A ballot carried a value of the wrong kind for this voter
    /// (e.g. a categorical string submitted to a numeric voter).
    TypeMismatch {
        /// The value kind the voter expects.
        expected: &'static str,
        /// The value kind that was submitted.
        got: &'static str,
    },
    /// A vector ballot did not match the voter's dimensionality.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Dimensionality of the offending ballot.
        got: usize,
    },
    /// An unresolvable tie between candidate outputs.
    Tie {
        /// The tied candidate outputs, for diagnostics.
        candidates: Vec<String>,
    },
}

impl fmt::Display for VoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VoteError::EmptyRound => write!(f, "round contains no usable ballots"),
            VoteError::NoQuorum { present, required } => write!(
                f,
                "quorum not reached: {present} candidates present, {required} required"
            ),
            VoteError::NoMajority {
                largest_group,
                total,
            } => write!(
                f,
                "no absolute majority: largest agreeing group has {largest_group} of {total} candidates"
            ),
            VoteError::TypeMismatch { expected, got } => {
                write!(f, "value type mismatch: expected {expected}, got {got}")
            }
            VoteError::DimensionMismatch { expected, got } => {
                write!(f, "vector dimension mismatch: expected {expected}, got {got}")
            }
            VoteError::Tie { candidates } => {
                write!(f, "unresolvable tie between {} candidates", candidates.len())
            }
        }
    }
}

impl Error for VoteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = VoteError::NoQuorum {
            present: 2,
            required: 5,
        };
        let s = e.to_string();
        assert!(s.contains('2') && s.contains('5'));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VoteError>();
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(VoteError::EmptyRound);
        assert_eq!(e.to_string(), "round contains no usable ballots");
    }
}
