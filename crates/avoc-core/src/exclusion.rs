//! Pre-vote exclusion: automatically pruning outlier values before the
//! algorithm runs (VDX `exclusion` / `exclusion_threshold`).
//!
//! The paper notes that value-based exclusion "cannot be applied" to
//! categorical values, "as there can be no mean or standard deviation
//! calculation" — exclusion therefore only exists on the numeric path.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Exclusion policy applied to each round's numeric candidates before the
/// voter sees them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Exclusion {
    /// No exclusion (Listing 1: `"exclusion": "NONE"`).
    #[default]
    None,
    /// Exclude candidates farther than `k` standard deviations from the
    /// round mean.
    StdDev(f64),
    /// Exclude candidates outside a fixed plausible range — a physical
    /// sanity filter (e.g. RSSI can never be positive).
    Range {
        /// Smallest plausible value (inclusive).
        min: f64,
        /// Largest plausible value (inclusive).
        max: f64,
    },
}

impl Exclusion {
    /// Returns the indices of candidates to exclude.
    ///
    /// With fewer than three candidates, [`Exclusion::StdDev`] excludes
    /// nothing: a standard deviation over one or two samples cannot single
    /// out an outlier meaningfully.
    pub fn excluded_indices(&self, values: &[f64]) -> Vec<usize> {
        let mut out = Vec::new();
        self.excluded_into(values, &mut out);
        out
    }

    /// Like [`Exclusion::excluded_indices`], but writes into `out` (cleared
    /// first) so the engine's hot path can reuse one buffer across rounds.
    pub fn excluded_into(&self, values: &[f64], out: &mut Vec<usize>) {
        out.clear();
        match *self {
            Exclusion::None => {}
            Exclusion::StdDev(k) => {
                if values.len() < 3 || k <= 0.0 {
                    return;
                }
                let n = values.len() as f64;
                let mean = values.iter().sum::<f64>() / n;
                let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
                let sd = var.sqrt();
                if sd == 0.0 {
                    return;
                }
                out.extend(
                    values
                        .iter()
                        .enumerate()
                        .filter(|(_, &v)| (v - mean).abs() > k * sd)
                        .map(|(i, _)| i),
                );
            }
            Exclusion::Range { min, max } => out.extend(
                values
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v < min || v > max)
                    .map(|(i, _)| i),
            ),
        }
    }

    /// Applies the policy, returning `(kept, excluded_indices)`.
    pub fn apply(&self, values: &[f64]) -> (Vec<f64>, Vec<usize>) {
        let excluded = self.excluded_indices(values);
        if excluded.is_empty() {
            return (values.to_vec(), excluded);
        }
        let kept = values
            .iter()
            .enumerate()
            .filter(|(i, _)| !excluded.contains(i))
            .map(|(_, &v)| v)
            .collect();
        (kept, excluded)
    }
}

impl fmt::Display for Exclusion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exclusion::None => write!(f, "none"),
            Exclusion::StdDev(k) => write!(f, "stddev({k})"),
            Exclusion::Range { min, max } => write!(f, "range[{min}, {max}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_excludes_nothing() {
        assert!(Exclusion::None.excluded_indices(&[1.0, 99.0]).is_empty());
    }

    #[test]
    fn stddev_excludes_far_outlier() {
        let values = [18.0, 18.1, 18.2, 17.9, 40.0];
        let out = Exclusion::StdDev(1.5).excluded_indices(&values);
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn stddev_keeps_tight_data() {
        let values = [18.0, 18.1, 18.2];
        assert!(Exclusion::StdDev(2.0).excluded_indices(&values).is_empty());
    }

    #[test]
    fn stddev_needs_three_candidates() {
        assert!(Exclusion::StdDev(1.0)
            .excluded_indices(&[1.0, 100.0])
            .is_empty());
    }

    #[test]
    fn stddev_identical_values_no_exclusion() {
        assert!(Exclusion::StdDev(1.0)
            .excluded_indices(&[5.0, 5.0, 5.0, 5.0])
            .is_empty());
    }

    #[test]
    fn range_excludes_out_of_bounds() {
        let e = Exclusion::Range {
            min: -100.0,
            max: 0.0,
        };
        let out = e.excluded_indices(&[-80.0, -101.0, 3.0, -55.0]);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn apply_returns_kept_and_excluded() {
        let e = Exclusion::Range {
            min: 0.0,
            max: 10.0,
        };
        let (kept, excluded) = e.apply(&[5.0, 50.0, 7.0]);
        assert_eq!(kept, vec![5.0, 7.0]);
        assert_eq!(excluded, vec![1]);
    }

    #[test]
    fn non_positive_k_disables_stddev() {
        assert!(Exclusion::StdDev(0.0)
            .excluded_indices(&[1.0, 2.0, 100.0])
            .is_empty());
    }

    #[test]
    fn serde_round_trip() {
        for e in [
            Exclusion::None,
            Exclusion::StdDev(2.0),
            Exclusion::Range { min: 0.0, max: 1.0 },
        ] {
            let json = serde_json::to_string(&e).unwrap();
            let back: Exclusion = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
        }
    }
}
