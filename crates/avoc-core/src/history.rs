//! Historical performance records of candidate modules.
//!
//! Every history-aware voter (§4) maintains, per module, a trust value in
//! `[0, 1]`: `1` for a module that has always agreed with the voted output,
//! decaying towards `0` for notorious disagreers. The *storage* of these
//! records is abstracted behind [`HistoryStore`] because the paper observes
//! the datastore to be the latency bottleneck of a voting round — the
//! `avoc-store` crate provides persistent implementations, and the ablation
//! benches compare them.

use crate::round::ModuleId;
use std::collections::{BTreeMap, HashMap};

/// The neutral trust value a fresh module starts with.
pub const INITIAL_HISTORY: f64 = 1.0;

/// Storage backend for per-module historical records.
///
/// Implementations must be deterministic: [`HistoryStore::snapshot`] returns
/// records in ascending [`ModuleId`] order.
pub trait HistoryStore: Send {
    /// The record for `module`, if one exists.
    fn get(&self, module: ModuleId) -> Option<f64>;

    /// Writes the record for `module`.
    fn set(&mut self, module: ModuleId, value: f64);

    /// Writes a batch of records.
    ///
    /// The default forwards to [`HistoryStore::set`] per record; stores
    /// whose writes carry per-call durability costs (a flushed or fsynced
    /// log) override this to issue one physical write for the whole batch.
    fn set_batch(&mut self, records: &[(ModuleId, f64)]) {
        for &(m, v) in records {
            self.set(m, v);
        }
    }

    /// All records in ascending module order.
    fn snapshot(&self) -> Vec<(ModuleId, f64)>;

    /// Writes all records, ascending by module, into `out` (cleared first).
    ///
    /// The default delegates to [`HistoryStore::snapshot`]; allocation-aware
    /// stores override this to reuse `out`'s capacity so the voting hot path
    /// never allocates a fresh snapshot per round.
    fn snapshot_into(&self, out: &mut Vec<(ModuleId, f64)>) {
        out.clear();
        out.extend(self.snapshot());
    }

    /// Visits every record in ascending module order without allocating.
    ///
    /// The default delegates to [`HistoryStore::snapshot`]; in-memory stores
    /// override it to iterate their records directly.
    fn for_each_record(&self, f: &mut dyn FnMut(ModuleId, f64)) {
        for (m, v) in self.snapshot() {
            f(m, v);
        }
    }

    /// Removes every record.
    fn clear(&mut self);

    /// The record for `module`, initialising it to [`INITIAL_HISTORY`] when
    /// absent.
    fn get_or_init(&mut self, module: ModuleId) -> f64 {
        match self.get(module) {
            Some(v) => v,
            None => {
                self.set(module, INITIAL_HISTORY);
                INITIAL_HISTORY
            }
        }
    }
}

/// The default, allocation-light in-memory history store.
///
/// # Example
///
/// ```
/// use avoc_core::history::{HistoryStore, MemoryHistory, INITIAL_HISTORY};
/// use avoc_core::ModuleId;
///
/// let mut h = MemoryHistory::new();
/// assert_eq!(h.get_or_init(ModuleId::new(0)), INITIAL_HISTORY);
/// h.set(ModuleId::new(0), 0.4);
/// assert_eq!(h.get(ModuleId::new(0)), Some(0.4));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryHistory {
    records: BTreeMap<ModuleId, f64>,
}

impl MemoryHistory {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store pre-seeded with records.
    pub fn with_records(records: impl IntoIterator<Item = (ModuleId, f64)>) -> Self {
        MemoryHistory {
            records: records.into_iter().collect(),
        }
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl HistoryStore for MemoryHistory {
    fn get(&self, module: ModuleId) -> Option<f64> {
        self.records.get(&module).copied()
    }

    fn set(&mut self, module: ModuleId, value: f64) {
        self.records.insert(module, value.clamp(0.0, 1.0));
    }

    fn snapshot(&self) -> Vec<(ModuleId, f64)> {
        self.records.iter().map(|(&m, &v)| (m, v)).collect()
    }

    fn snapshot_into(&self, out: &mut Vec<(ModuleId, f64)>) {
        out.clear();
        out.extend(self.records.iter().map(|(&m, &v)| (m, v)));
    }

    fn for_each_record(&self, f: &mut dyn FnMut(ModuleId, f64)) {
        for (&m, &v) in &self.records {
            f(m, v);
        }
    }

    fn clear(&mut self) {
        self.records.clear();
    }
}

/// A dense, `Vec`-backed history store for the fusion hot path.
///
/// Module ids are interned to slots on first sight; after that, `get`/`set`
/// are O(1) slot accesses that never touch the allocator, unlike the
/// `BTreeMap`-backed [`MemoryHistory`]. A sorted module→slot index is
/// maintained incrementally (insertion cost is paid once per *new* module,
/// not per round), keeping [`HistoryStore::snapshot`]'s ascending-order
/// contract.
///
/// # Example
///
/// ```
/// use avoc_core::history::{DenseHistory, HistoryStore};
/// use avoc_core::ModuleId;
///
/// let mut h = DenseHistory::new();
/// h.set(ModuleId::new(7), 0.4);
/// h.set(ModuleId::new(2), 0.9);
/// assert_eq!(h.get(ModuleId::new(7)), Some(0.4));
/// let snap = h.snapshot();
/// assert_eq!(snap[0].0, ModuleId::new(2)); // ascending module order
/// ```
#[derive(Debug, Clone, Default)]
pub struct DenseHistory {
    /// Trust value per slot, indexed by interned slot id.
    slots: Vec<f64>,
    /// `(module, slot)` pairs kept sorted ascending by module.
    by_module: Vec<(ModuleId, usize)>,
    /// Module → slot interning table.
    index: HashMap<ModuleId, usize>,
}

impl DenseHistory {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store pre-seeded with records.
    pub fn with_records(records: impl IntoIterator<Item = (ModuleId, f64)>) -> Self {
        let mut h = DenseHistory::new();
        for (m, v) in records {
            h.set(m, v);
        }
        h
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl HistoryStore for DenseHistory {
    fn get(&self, module: ModuleId) -> Option<f64> {
        self.index.get(&module).map(|&slot| self.slots[slot])
    }

    fn set(&mut self, module: ModuleId, value: f64) {
        let value = value.clamp(0.0, 1.0);
        match self.index.get(&module) {
            Some(&slot) => self.slots[slot] = value,
            None => {
                let slot = self.slots.len();
                self.slots.push(value);
                let pos = self
                    .by_module
                    .binary_search_by_key(&module, |&(m, _)| m)
                    .unwrap_err();
                self.by_module.insert(pos, (module, slot));
                self.index.insert(module, slot);
            }
        }
    }

    fn snapshot(&self) -> Vec<(ModuleId, f64)> {
        self.by_module
            .iter()
            .map(|&(m, slot)| (m, self.slots[slot]))
            .collect()
    }

    fn snapshot_into(&self, out: &mut Vec<(ModuleId, f64)>) {
        out.clear();
        out.extend(
            self.by_module
                .iter()
                .map(|&(m, slot)| (m, self.slots[slot])),
        );
    }

    fn for_each_record(&self, f: &mut dyn FnMut(ModuleId, f64)) {
        for &(m, slot) in &self.by_module {
            f(m, self.slots[slot]);
        }
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.by_module.clear();
        self.index.clear();
    }
}

/// The reward/penalty rule that moves a module's record after each round.
///
/// All §4 algorithms share the same *shape* of update — move the record up
/// when the module's value agreed with the voted output, down when it did not
/// — differing only in whether the agreement score is binary or graded. The
/// update is `h ← clamp₀₁(h + rate × (2·score − 1))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoryUpdate {
    /// Step size per round (default `0.1`).
    pub rate: f64,
}

impl HistoryUpdate {
    /// Creates an update rule with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `(0, 1]`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0 && rate <= 1.0,
            "rate must be in (0, 1], got {rate}"
        );
        HistoryUpdate { rate }
    }

    /// Applies the rule: `score = 1` rewards fully, `score = 0` penalises
    /// fully, graded scores interpolate.
    pub fn apply(&self, history: f64, score: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&score), "score out of range: {score}");
        (history + self.rate * (2.0 * score - 1.0)).clamp(0.0, 1.0)
    }
}

impl Default for HistoryUpdate {
    fn default() -> Self {
        HistoryUpdate { rate: 0.1 }
    }
}

/// Mean of a history snapshot — the Module-Elimination threshold ("modules
/// with below average historical records"). Returns `None` when empty.
pub fn mean_history(records: &[(ModuleId, f64)]) -> Option<f64> {
    if records.is_empty() {
        None
    } else {
        Some(records.iter().map(|(_, v)| v).sum::<f64>() / records.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> ModuleId {
        ModuleId::new(i)
    }

    #[test]
    fn get_or_init_defaults_to_one() {
        let mut h = MemoryHistory::new();
        assert_eq!(h.get(m(0)), None);
        assert_eq!(h.get_or_init(m(0)), 1.0);
        assert_eq!(h.get(m(0)), Some(1.0));
    }

    #[test]
    fn set_clamps_into_unit_interval() {
        let mut h = MemoryHistory::new();
        h.set(m(0), 1.7);
        h.set(m(1), -0.3);
        assert_eq!(h.get(m(0)), Some(1.0));
        assert_eq!(h.get(m(1)), Some(0.0));
    }

    #[test]
    fn snapshot_is_ordered() {
        let mut h = MemoryHistory::new();
        h.set(m(3), 0.3);
        h.set(m(1), 0.1);
        h.set(m(2), 0.2);
        let snap = h.snapshot();
        assert_eq!(snap, vec![(m(1), 0.1), (m(2), 0.2), (m(3), 0.3)]);
    }

    #[test]
    fn clear_empties_store() {
        let mut h = MemoryHistory::with_records([(m(0), 0.5)]);
        assert_eq!(h.len(), 1);
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    fn update_rewards_and_penalises() {
        let u = HistoryUpdate::default();
        assert!((u.apply(0.5, 1.0) - 0.6).abs() < 1e-12);
        assert!((u.apply(0.5, 0.0) - 0.4).abs() < 1e-12);
        // graded score of 0.5 is neutral
        assert!((u.apply(0.5, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn update_clamps_at_bounds() {
        let u = HistoryUpdate::default();
        assert_eq!(u.apply(1.0, 1.0), 1.0);
        assert_eq!(u.apply(0.05, 0.0), 0.0);
    }

    #[test]
    fn ten_disagreements_zero_out_history() {
        let u = HistoryUpdate::default();
        let mut h = 1.0;
        for _ in 0..10 {
            h = u.apply(h, 0.0);
        }
        assert!(h.abs() < 1e-9, "history should reach 0, got {h}");
    }

    #[test]
    fn mean_history_basics() {
        assert_eq!(mean_history(&[]), None);
        assert_eq!(mean_history(&[(m(0), 0.2), (m(1), 0.8)]), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn zero_rate_panics() {
        let _ = HistoryUpdate::new(0.0);
    }

    #[test]
    fn store_is_object_safe() {
        let mut h: Box<dyn HistoryStore> = Box::new(MemoryHistory::new());
        h.set(m(0), 0.7);
        assert_eq!(h.get(m(0)), Some(0.7));
    }

    #[test]
    fn snapshot_into_reuses_buffer() {
        let mut h = MemoryHistory::new();
        h.set(m(2), 0.2);
        h.set(m(1), 0.1);
        let mut buf = Vec::with_capacity(8);
        h.snapshot_into(&mut buf);
        assert_eq!(buf, vec![(m(1), 0.1), (m(2), 0.2)]);
        // A second call replaces, not appends.
        h.snapshot_into(&mut buf);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn for_each_record_visits_in_order() {
        let mut h = MemoryHistory::new();
        h.set(m(3), 0.3);
        h.set(m(0), 0.0);
        let mut seen = Vec::new();
        h.for_each_record(&mut |module, v| seen.push((module, v)));
        assert_eq!(seen, vec![(m(0), 0.0), (m(3), 0.3)]);
    }

    #[test]
    fn dense_history_matches_memory_semantics() {
        let mut dense = DenseHistory::new();
        let mut mem = MemoryHistory::new();
        // Interleaved, out-of-order, with overwrites and clamping.
        for &(id, v) in &[
            (9u32, 0.5),
            (2, 1.7),
            (5, -0.3),
            (2, 0.4),
            (0, 0.9),
            (9, 0.1),
        ] {
            dense.set(m(id), v);
            mem.set(m(id), v);
        }
        assert_eq!(dense.snapshot(), mem.snapshot());
        assert_eq!(dense.len(), mem.len());
        for id in 0..10 {
            assert_eq!(dense.get(m(id)), mem.get(m(id)));
        }
    }

    #[test]
    fn dense_history_snapshot_into_is_ordered() {
        let mut h = DenseHistory::with_records([(m(8), 0.8), (m(1), 0.1), (m(4), 0.4)]);
        let mut buf = Vec::new();
        h.snapshot_into(&mut buf);
        assert_eq!(buf, vec![(m(1), 0.1), (m(4), 0.4), (m(8), 0.8)]);
        h.clear();
        assert!(h.is_empty());
        h.snapshot_into(&mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn dense_history_get_or_init_defaults() {
        let mut h = DenseHistory::new();
        assert_eq!(h.get_or_init(m(3)), INITIAL_HISTORY);
        assert_eq!(h.get(m(3)), Some(INITIAL_HISTORY));
    }

    #[test]
    fn dense_history_is_object_safe_and_send() {
        fn assert_send<T: Send>() {}
        assert_send::<DenseHistory>();
        let mut h: Box<dyn HistoryStore> = Box::new(DenseHistory::new());
        h.set(m(0), 0.7);
        assert_eq!(h.get(m(0)), Some(0.7));
    }
}
