//! # avoc-core — history-aware voting for sensor data fusion
//!
//! A from-scratch implementation of the voting algorithms studied and
//! contributed by *"AVOC: History-Aware Data Fusion for Reliable IoT
//! Analytics"* (Middleware '22): the Standard history-based weighted
//! average, Module-Elimination, Soft-Dynamic-Threshold and Hybrid voters
//! from the literature, plus the paper's contributions — clustering-only
//! voting and **AVOC**, the clustering-bootstrapped Hybrid voter.
//!
//! The crate is organised in three layers:
//!
//! * **values and rounds** — [`Value`], [`ModuleId`], [`Ballot`], [`Round`]:
//!   what redundant modules submit;
//! * **voters** — the [`algorithms`] module: one [`algorithms::Voter`] per
//!   algorithm, each fusing one round into a [`algorithms::Verdict`];
//! * **the engine** — [`engine::VotingEngine`]: quorum, pre-vote exclusion
//!   and the paper's fault policies (missing values, ties, last-good
//!   fallback) wrapped around any voter.
//!
//! # Quickstart
//!
//! ```
//! use avoc_core::algorithms::{AvocVoter, Voter};
//! use avoc_core::Round;
//!
//! let mut voter = AvocVoter::with_defaults();
//!
//! // Five redundant sensors; the fourth is faulty (+6 on ~18).
//! let round = Round::from_numbers(0, &[18.0, 18.1, 17.9, 24.0, 18.05]);
//! let verdict = voter.vote(&round)?;
//!
//! // AVOC's clustering bootstrap excluded the outlier in round one.
//! assert!(verdict.bootstrapped);
//! assert!((verdict.number().unwrap() - 18.0).abs() < 0.2);
//! # Ok::<(), avoc_core::VoteError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreement;
pub mod algorithms;
pub mod collation;
pub mod engine;
pub mod error;
pub mod exclusion;
pub mod history;
pub mod multidim;
pub mod quorum;
pub mod round;
pub mod value;

pub use agreement::{AgreementMatrix, AgreementParams};
pub use algorithms::{Verdict, Voter, VoterConfig};
pub use collation::Collation;
pub use engine::{FallbackAction, FaultPolicy, RoundRecord, RoundResult, TieBreak, VotingEngine};
pub use error::VoteError;
pub use exclusion::Exclusion;
pub use history::{DenseHistory, HistoryStore, HistoryUpdate, MemoryHistory};
pub use quorum::Quorum;
pub use round::{Ballot, ModuleId, Round};
pub use value::Value;

// Re-exported so downstream crates configure margin modes without a direct
// avoc-cluster dependency.
pub use avoc_cluster::MarginMode;
