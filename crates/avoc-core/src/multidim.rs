//! Multi-dimensional voting (§5, *Generalisation*).
//!
//! "Choosing a single output vector for multiple dimensions is non-trivial
//! as the complexity of data and correlation of errors considerably
//! increases. To mitigate, the voting approach can be applied for each
//! dimension separately ... In AVOC, we follow the approach of voting on
//! each dimension separately."
//!
//! [`PerDimensionVoter`] wraps one independent inner voter per dimension and
//! fuses [`Value::Vector`] ballots dimension-by-dimension. Each dimension
//! keeps its own history, so a sensor whose *x* channel drifts is distrusted
//! on *x* while staying trusted on *y*.

use crate::algorithms::{Verdict, Voter};
use crate::error::VoteError;
use crate::round::{Ballot, ModuleId, Round};
use crate::value::Value;

/// Votes on vector values by running an independent voter per dimension.
///
/// # Example
///
/// ```
/// use avoc_core::algorithms::{AvocVoter, Voter};
/// use avoc_core::multidim::PerDimensionVoter;
/// use avoc_core::{Ballot, ModuleId, Round};
///
/// let mut voter = PerDimensionVoter::new(2, || Box::new(AvocVoter::with_defaults()));
/// let round = Round::new(0, vec![
///     Ballot::new(ModuleId::new(0), vec![1.0, 10.0]),
///     Ballot::new(ModuleId::new(1), vec![1.1, 10.2]),
///     Ballot::new(ModuleId::new(2), vec![0.9, 55.0]), // y-channel outlier
/// ]);
/// let verdict = voter.vote(&round)?;
/// let out = verdict.value.as_vector().unwrap();
/// assert!(out[1] < 11.0); // outlier suppressed on y
/// # Ok::<(), avoc_core::VoteError>(())
/// ```
pub struct PerDimensionVoter {
    voters: Vec<Box<dyn Voter>>,
}

impl std::fmt::Debug for PerDimensionVoter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerDimensionVoter")
            .field("dimensions", &self.voters.len())
            .field(
                "inner",
                &self.voters.first().map(|v| v.name()).unwrap_or("-"),
            )
            .finish()
    }
}

impl PerDimensionVoter {
    /// Creates a per-dimension voter for `dim` dimensions, instantiating an
    /// independent inner voter per dimension via `factory`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, factory: impl Fn() -> Box<dyn Voter>) -> Self {
        assert!(dim > 0, "dimensionality must be at least 1");
        PerDimensionVoter {
            voters: (0..dim).map(|_| factory()).collect(),
        }
    }

    /// The dimensionality this voter expects.
    pub fn dim(&self) -> usize {
        self.voters.len()
    }

    /// Per-dimension histories: `histories()[d]` is dimension `d`'s record
    /// snapshot.
    pub fn histories_per_dimension(&self) -> Vec<Vec<(ModuleId, f64)>> {
        self.voters.iter().map(|v| v.histories()).collect()
    }
}

impl Voter for PerDimensionVoter {
    fn name(&self) -> &'static str {
        "per-dimension"
    }

    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        let dim = self.voters.len();
        // Validate dimensions up front.
        for b in &round.ballots {
            if let Some(v) = &b.value {
                match v {
                    Value::Vector(coords) => {
                        if coords.len() != dim {
                            return Err(VoteError::DimensionMismatch {
                                expected: dim,
                                got: coords.len(),
                            });
                        }
                    }
                    other => {
                        return Err(VoteError::TypeMismatch {
                            expected: "vector",
                            got: other.kind(),
                        })
                    }
                }
            }
        }
        if round.present_count() == 0 {
            return Err(VoteError::EmptyRound);
        }

        let mut outputs = Vec::with_capacity(dim);
        let mut min_confidence = f64::INFINITY;
        let mut excluded: Vec<ModuleId> = Vec::new();
        let mut any_bootstrap = false;
        for (d, voter) in self.voters.iter_mut().enumerate() {
            let sub_round = Round::new(
                round.round,
                round
                    .ballots
                    .iter()
                    .map(|b| match &b.value {
                        Some(Value::Vector(coords)) => Ballot::new(b.module, coords[d]),
                        _ => Ballot::missing(b.module),
                    })
                    .collect(),
            );
            let verdict = voter.vote(&sub_round)?;
            outputs.push(
                verdict
                    .number()
                    .expect("numeric inner voter yields scalar output"),
            );
            min_confidence = min_confidence.min(verdict.confidence);
            any_bootstrap |= verdict.bootstrapped;
            for m in verdict.excluded {
                if !excluded.contains(&m) {
                    excluded.push(m);
                }
            }
        }
        excluded.sort_unstable();

        Ok(Verdict {
            value: Value::Vector(outputs),
            // Per-module weights differ per dimension; report uniform
            // presence weights at the vector level.
            weights: round
                .ballots
                .iter()
                .filter(|b| b.is_present())
                .map(|b| (b.module, 1.0))
                .collect(),
            excluded,
            confidence: if min_confidence.is_finite() {
                min_confidence
            } else {
                0.0
            },
            bootstrapped: any_bootstrap,
        })
    }

    fn reset(&mut self) {
        for v in &mut self.voters {
            v.reset();
        }
    }

    fn is_stateful(&self) -> bool {
        self.voters.iter().any(|v| v.is_stateful())
    }
}

/// Vector AVOC with a *multi-dimensional* clustering bootstrap — the step
/// beyond the paper.
///
/// §5 notes that for multi-dimensional data "an unsupervised clustering
/// algorithm can be used such as Meanshift or X-Means", but the paper's own
/// AVOC votes each dimension separately "without incorporating the
/// clustering itself". This voter incorporates it: steady-state rounds are
/// per-dimension Hybrid votes, while the bootstrap round (no records yet,
/// or all records collapsed) runs mean-shift over the full candidate
/// *vectors*, takes the largest mode's basin, outputs its centroid, and
/// seeds every dimension's records from the vector-level membership — so a
/// sensor that is only faulty *jointly* (each coordinate plausible on its
/// own) is still caught.
///
/// The mean-shift bandwidth self-calibrates, in AVOC's spirit: it is a
/// multiple of the median nearest-neighbour distance among the candidates.
///
/// # Example
///
/// ```
/// use avoc_core::multidim::VectorAvocVoter;
/// use avoc_core::{Ballot, ModuleId, Round, Voter};
///
/// let mut voter = VectorAvocVoter::new(2, Default::default());
/// let round = Round::new(0, vec![
///     Ballot::new(ModuleId::new(0), vec![1.0, 10.0]),
///     Ballot::new(ModuleId::new(1), vec![1.1, 10.1]),
///     Ballot::new(ModuleId::new(2), vec![0.95, 9.9]),
///     Ballot::new(ModuleId::new(3), vec![5.0, 30.0]), // joint outlier
/// ]);
/// let verdict = voter.vote(&round)?;
/// assert!(verdict.bootstrapped);
/// assert!(verdict.excluded.contains(&ModuleId::new(3)));
/// # Ok::<(), avoc_core::VoteError>(())
/// ```
pub struct VectorAvocVoter {
    dims: Vec<crate::algorithms::HybridVoter<crate::MemoryHistory>>,
    bandwidth_factor: f64,
    bootstrapped_once: bool,
}

impl std::fmt::Debug for VectorAvocVoter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VectorAvocVoter")
            .field("dim", &self.dims.len())
            .field("bandwidth_factor", &self.bandwidth_factor)
            .finish_non_exhaustive()
    }
}

impl VectorAvocVoter {
    /// Creates a vector-AVOC voter for `dim` dimensions with the given
    /// per-dimension configuration.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, config: crate::VoterConfig) -> Self {
        use crate::algorithms::HybridVoter;
        assert!(dim > 0, "dimensionality must be at least 1");
        VectorAvocVoter {
            dims: (0..dim)
                .map(|_| HybridVoter::new(config, crate::MemoryHistory::new()))
                .collect(),
            bandwidth_factor: 3.0,
            bootstrapped_once: false,
        }
    }

    /// Sets the bandwidth multiple over the median nearest-neighbour
    /// distance (default 3).
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn with_bandwidth_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        self.bandwidth_factor = factor;
        self
    }

    /// The dimensionality this voter expects.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    fn bootstrap_pending(&self) -> bool {
        if !self.bootstrapped_once {
            return true;
        }
        // Fallback condition: every record of every dimension collapsed.
        self.dims
            .iter()
            .flat_map(|v| v.histories())
            .all(|(_, h)| h.abs() < 1e-12)
    }

    fn self_calibrated_bandwidth(points: &[avoc_cluster::Point], factor: f64) -> f64 {
        let mut nn: Vec<f64> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                points
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, q)| p.distance(q))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        nn.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        let median = nn[nn.len() / 2];
        // A zero median (identical points) still needs a usable radius.
        (median * factor).max(1e-9)
    }

    /// Extracts the vector candidates, enforcing kind and dimension.
    fn vector_candidates(
        &self,
        round: &Round,
    ) -> Result<(Vec<ModuleId>, Vec<avoc_cluster::Point>), VoteError> {
        let dim = self.dims.len();
        let mut modules = Vec::new();
        let mut points = Vec::new();
        for b in &round.ballots {
            match &b.value {
                Some(Value::Vector(coords)) => {
                    if coords.len() != dim {
                        return Err(VoteError::DimensionMismatch {
                            expected: dim,
                            got: coords.len(),
                        });
                    }
                    modules.push(b.module);
                    points.push(avoc_cluster::Point::new(coords.clone()));
                }
                Some(other) => {
                    return Err(VoteError::TypeMismatch {
                        expected: "vector",
                        got: other.kind(),
                    })
                }
                None => {}
            }
        }
        if points.is_empty() {
            return Err(VoteError::EmptyRound);
        }
        Ok((modules, points))
    }

    fn steady_state_vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        // Validate first so errors surface before any dimension votes.
        let _ = self.vector_candidates(round)?;
        let mut outputs = Vec::with_capacity(self.dims.len());
        let mut min_confidence = f64::INFINITY;
        let mut excluded: Vec<ModuleId> = Vec::new();
        for (d, voter) in self.dims.iter_mut().enumerate() {
            let sub_round = Round::new(
                round.round,
                round
                    .ballots
                    .iter()
                    .map(|b| match &b.value {
                        Some(Value::Vector(coords)) => Ballot::new(b.module, coords[d]),
                        _ => Ballot::missing(b.module),
                    })
                    .collect(),
            );
            let verdict = voter.vote(&sub_round)?;
            outputs.push(verdict.number().expect("numeric inner output"));
            min_confidence = min_confidence.min(verdict.confidence);
            for m in verdict.excluded {
                if !excluded.contains(&m) {
                    excluded.push(m);
                }
            }
        }
        excluded.sort_unstable();
        Ok(Verdict {
            value: Value::Vector(outputs),
            weights: round
                .ballots
                .iter()
                .filter(|b| b.is_present())
                .map(|b| (b.module, 1.0))
                .collect(),
            excluded,
            confidence: if min_confidence.is_finite() {
                min_confidence
            } else {
                0.0
            },
            bootstrapped: false,
        })
    }
}

impl Voter for VectorAvocVoter {
    fn name(&self) -> &'static str {
        "vector-avoc"
    }

    fn vote(&mut self, round: &Round) -> Result<Verdict, VoteError> {
        if !self.bootstrap_pending() {
            return self.steady_state_vote(round);
        }

        // Multi-dimensional clustering bootstrap.
        let (modules, points) = self.vector_candidates(round)?;
        let members: Vec<usize> = if points.len() == 1 {
            vec![0]
        } else {
            let bandwidth = Self::self_calibrated_bandwidth(&points, self.bandwidth_factor);
            avoc_cluster::MeanShift::new(bandwidth)
                .fit(&points)
                .largest_cluster_members()
        };
        let member_points: Vec<avoc_cluster::Point> =
            members.iter().map(|&i| points[i].clone()).collect();
        let centroid =
            avoc_cluster::point::centroid(&member_points).expect("non-empty winning mode");

        // Seed every dimension's records from the vector-level membership:
        // winners keep full trust, outliers start distrusted — the AVOC
        // record adjustment, generalised.
        for (i, &m) in modules.iter().enumerate() {
            let record = if members.contains(&i) {
                crate::history::INITIAL_HISTORY
            } else {
                0.0
            };
            for voter in &mut self.dims {
                use crate::history::HistoryStore;
                voter.store_mut().set(m, record);
            }
        }
        self.bootstrapped_once = true;

        let weights: Vec<(ModuleId, f64)> = modules
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, if members.contains(&i) { 1.0 } else { 0.0 }))
            .collect();
        let excluded: Vec<ModuleId> = weights
            .iter()
            .filter(|(_, w)| *w <= 0.0)
            .map(|(m, _)| *m)
            .collect();
        Ok(Verdict {
            value: Value::Vector(centroid.into_coords()),
            confidence: members.len() as f64 / points.len() as f64,
            weights,
            excluded,
            bootstrapped: true,
        })
    }

    fn reset(&mut self) {
        for v in &mut self.dims {
            v.reset();
        }
        self.bootstrapped_once = false;
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{AverageVoter, AvocVoter, HybridVoter};

    fn m(i: u32) -> ModuleId {
        ModuleId::new(i)
    }

    fn vec_round(round: u64, rows: &[&[f64]]) -> Round {
        Round::new(
            round,
            rows.iter()
                .enumerate()
                .map(|(i, r)| Ballot::new(m(i as u32), r.to_vec()))
                .collect(),
        )
    }

    #[test]
    fn averages_each_dimension() {
        let mut v = PerDimensionVoter::new(2, || Box::new(AverageVoter::new()));
        let verdict = v
            .vote(&vec_round(0, &[&[1.0, 10.0], &[3.0, 30.0]]))
            .unwrap();
        assert_eq!(verdict.value.as_vector(), Some(&[2.0, 20.0][..]));
    }

    #[test]
    fn per_dimension_outlier_suppression() {
        let mut v = PerDimensionVoter::new(2, || Box::new(AvocVoter::with_defaults()));
        let verdict = v
            .vote(&vec_round(
                0,
                &[&[1.0, 10.0], &[1.1, 10.2], &[1.05, 99.0], &[0.95, 10.1]],
            ))
            .unwrap();
        let out = verdict.value.as_vector().unwrap();
        assert!((out[0] - 1.0).abs() < 0.2);
        assert!(
            out[1] < 11.0,
            "y outlier must be suppressed, got {}",
            out[1]
        );
        // Module 2 is excluded on the y dimension.
        assert!(verdict.excluded.contains(&m(2)));
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let mut v = PerDimensionVoter::new(2, || Box::new(AverageVoter::new()));
        let round = Round::new(0, vec![Ballot::new(m(0), vec![1.0, 2.0, 3.0])]);
        assert!(matches!(
            v.vote(&round),
            Err(VoteError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn scalar_ballot_is_a_type_error() {
        let mut v = PerDimensionVoter::new(2, || Box::new(AverageVoter::new()));
        let round = Round::new(0, vec![Ballot::new(m(0), 1.0)]);
        assert!(matches!(
            v.vote(&round),
            Err(VoteError::TypeMismatch {
                expected: "vector",
                ..
            })
        ));
    }

    #[test]
    fn missing_ballots_propagate_per_dimension() {
        let mut v = PerDimensionVoter::new(1, || Box::new(AverageVoter::new()));
        let round = Round::new(
            0,
            vec![
                Ballot::new(m(0), vec![4.0]),
                Ballot::missing(m(1)),
                Ballot::new(m(2), vec![6.0]),
            ],
        );
        let verdict = v.vote(&round).unwrap();
        assert_eq!(verdict.value.as_vector(), Some(&[5.0][..]));
    }

    #[test]
    fn history_is_independent_per_dimension() {
        let mut v = PerDimensionVoter::new(2, || Box::new(HybridVoter::with_defaults()));
        // Module 2 is faulty on y only, across several rounds.
        for r in 0..3 {
            v.vote(&vec_round(
                r,
                &[&[1.0, 10.0], &[1.02, 10.1], &[1.01, 50.0], &[0.99, 10.05]],
            ))
            .unwrap();
        }
        let per_dim = v.histories_per_dimension();
        let x_record = per_dim[0].iter().find(|(mm, _)| *mm == m(2)).unwrap().1;
        let y_record = per_dim[1].iter().find(|(mm, _)| *mm == m(2)).unwrap().1;
        assert!(x_record > y_record, "x {x_record} vs y {y_record}");
    }

    #[test]
    fn reset_propagates() {
        let mut v = PerDimensionVoter::new(1, || Box::new(HybridVoter::with_defaults()));
        v.vote(&vec_round(0, &[&[1.0], &[2.0]])).unwrap();
        assert!(v.is_stateful());
        v.reset();
        assert!(v.histories_per_dimension()[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_dimensions_panics() {
        let _ = PerDimensionVoter::new(0, || Box::new(AverageVoter::new()));
    }
}

#[cfg(test)]
mod vector_avoc_tests {
    use super::*;
    use crate::VoterConfig;

    fn m(i: u32) -> ModuleId {
        ModuleId::new(i)
    }

    fn vec_round(round: u64, rows: &[&[f64]]) -> Round {
        Round::new(
            round,
            rows.iter()
                .enumerate()
                .map(|(i, r)| Ballot::new(m(i as u32), r.to_vec()))
                .collect(),
        )
    }

    #[test]
    fn bootstrap_excludes_joint_outlier() {
        let mut v = VectorAvocVoter::new(2, VoterConfig::default());
        let verdict = v
            .vote(&vec_round(
                0,
                &[&[1.0, 10.0], &[1.1, 10.1], &[0.95, 9.9], &[5.0, 30.0]],
            ))
            .unwrap();
        assert!(verdict.bootstrapped);
        assert_eq!(verdict.excluded, vec![m(3)]);
        let out = verdict.value.as_vector().unwrap();
        assert!((out[0] - 1.0).abs() < 0.2, "x = {}", out[0]);
        assert!((out[1] - 10.0).abs() < 0.3, "y = {}", out[1]);
    }

    #[test]
    fn seeded_records_exclude_outlier_from_round_two() {
        let mut v = VectorAvocVoter::new(2, VoterConfig::default());
        let rows: &[&[f64]] = &[&[1.0, 10.0], &[1.1, 10.1], &[0.95, 9.9], &[5.0, 30.0]];
        v.vote(&vec_round(0, rows)).unwrap();
        let r2 = v.vote(&vec_round(1, rows)).unwrap();
        assert!(!r2.bootstrapped);
        assert!(
            r2.excluded.contains(&m(3)),
            "seeded zero records must exclude the outlier, got {:?}",
            r2.excluded
        );
    }

    #[test]
    fn catches_jointly_faulty_sensor_that_per_dimension_voting_misses() {
        // Each coordinate of the faulty sensor lies inside the 5% relative
        // agreement band of the healthy blob (±0.4 on ~10, tolerance ≈
        // 0.5), but the diagonal displacement is an order of magnitude
        // beyond the blob's internal spread. Euclidean clustering sees the
        // gap; per-dimension agreement does not.
        let rows: &[&[f64]] = &[
            &[10.00, 10.00],
            &[10.05, 9.95],
            &[9.95, 10.05],
            &[10.02, 10.03],
            &[10.40, 9.60], // joint outlier: each coordinate plausible alone
        ];
        let mut vector = VectorAvocVoter::new(2, VoterConfig::default());
        let verdict = vector.vote(&vec_round(0, rows)).unwrap();
        // The vector bootstrap flags the mismatched combination.
        assert!(
            verdict.excluded.contains(&m(4)),
            "vector clustering should catch the joint outlier, got {:?}",
            verdict.excluded
        );

        // Per-dimension AVOC accepts it: every coordinate agrees with a
        // neighbour within the 5% band.
        let mut per_dim =
            PerDimensionVoter::new(
                2,
                || Box::new(crate::algorithms::AvocVoter::with_defaults()),
            );
        let verdict = per_dim.vote(&vec_round(0, rows)).unwrap();
        assert!(
            !verdict.excluded.contains(&m(4)),
            "per-dimension voting is blind to the joint fault"
        );
    }

    #[test]
    fn single_candidate_bootstrap() {
        let mut v = VectorAvocVoter::new(2, VoterConfig::default());
        let verdict = v.vote(&vec_round(0, &[&[2.0, 3.0]])).unwrap();
        assert_eq!(verdict.value.as_vector(), Some(&[2.0, 3.0][..]));
        assert_eq!(verdict.confidence, 1.0);
    }

    #[test]
    fn dimension_and_type_errors() {
        let mut v = VectorAvocVoter::new(2, VoterConfig::default());
        let bad_dim = Round::new(0, vec![Ballot::new(m(0), vec![1.0])]);
        assert!(matches!(
            v.vote(&bad_dim),
            Err(VoteError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
        let bad_kind = Round::new(0, vec![Ballot::new(m(0), 1.0)]);
        assert!(matches!(
            v.vote(&bad_kind),
            Err(VoteError::TypeMismatch {
                expected: "vector",
                ..
            })
        ));
    }

    #[test]
    fn reset_restores_bootstrap() {
        let mut v = VectorAvocVoter::new(1, VoterConfig::default());
        v.vote(&vec_round(0, &[&[1.0], &[1.1]])).unwrap();
        let r2 = v.vote(&vec_round(1, &[&[1.0], &[1.1]])).unwrap();
        assert!(!r2.bootstrapped);
        v.reset();
        let r3 = v.vote(&vec_round(2, &[&[1.0], &[1.1]])).unwrap();
        assert!(r3.bootstrapped);
    }

    #[test]
    fn identical_points_do_not_panic() {
        let mut v = VectorAvocVoter::new(2, VoterConfig::default());
        let verdict = v
            .vote(&vec_round(0, &[&[3.0, 4.0], &[3.0, 4.0], &[3.0, 4.0]]))
            .unwrap();
        assert_eq!(verdict.value.as_vector(), Some(&[3.0, 4.0][..]));
        assert!(verdict.excluded.is_empty());
    }
}
