//! Quorum policies: how many candidates must submit before a vote triggers.
//!
//! VDX (§6) exposes `quorum` / `quorum_percentage`; Listing 1 uses
//! `"UNTIL"` with `100`, i.e. the vote waits until all expected candidates
//! report.

use serde::{Deserialize, Serialize};
use std::fmt;

/// When a round has enough ballots to vote.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Quorum {
    /// Vote on whatever arrived (at least one value).
    Any,
    /// Require at least `n` present ballots.
    Count(usize),
    /// Require at least this fraction (`0..=1`) of the *expected* modules to
    /// report — the VDX `UNTIL`/percentage semantics.
    Fraction(f64),
    /// Require a strict majority of the expected modules — the trust
    /// boundary the paper identifies for missing-value faults: "if the
    /// majority or all values are missing, the result would no longer be
    /// trustworthy".
    #[default]
    Majority,
}

impl Quorum {
    /// The number of present ballots required, for a round expecting
    /// `expected` modules.
    pub fn required(&self, expected: usize) -> usize {
        match *self {
            Quorum::Any => 1,
            Quorum::Count(n) => n,
            Quorum::Fraction(f) => {
                let f = f.clamp(0.0, 1.0);
                (f * expected as f64).ceil() as usize
            }
            Quorum::Majority => expected / 2 + 1,
        }
    }

    /// Whether `present` ballots out of `expected` reach the quorum.
    pub fn is_met(&self, present: usize, expected: usize) -> bool {
        present >= self.required(expected).max(1)
    }
}

impl fmt::Display for Quorum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quorum::Any => write!(f, "any"),
            Quorum::Count(n) => write!(f, "count({n})"),
            Quorum::Fraction(p) => write!(f, "fraction({p})"),
            Quorum::Majority => write!(f, "majority"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_requires_one() {
        assert!(Quorum::Any.is_met(1, 9));
        assert!(!Quorum::Any.is_met(0, 9));
    }

    #[test]
    fn count_is_absolute() {
        let q = Quorum::Count(3);
        assert!(!q.is_met(2, 5));
        assert!(q.is_met(3, 5));
        // Count can exceed expected — then it can never be met.
        assert!(!Quorum::Count(6).is_met(5, 5));
    }

    #[test]
    fn fraction_rounds_up() {
        let q = Quorum::Fraction(0.5);
        assert_eq!(q.required(5), 3);
        assert_eq!(q.required(4), 2);
        assert!(q.is_met(3, 5));
        assert!(!q.is_met(2, 5));
    }

    #[test]
    fn fraction_hundred_percent_means_all() {
        let q = Quorum::Fraction(1.0);
        assert!(q.is_met(5, 5));
        assert!(!q.is_met(4, 5));
    }

    #[test]
    fn fraction_zero_still_needs_one_ballot() {
        let q = Quorum::Fraction(0.0);
        assert!(!q.is_met(0, 5));
        assert!(q.is_met(1, 5));
    }

    #[test]
    fn majority_is_strict() {
        let q = Quorum::Majority;
        assert_eq!(q.required(9), 5);
        assert_eq!(q.required(8), 5);
        assert!(q.is_met(5, 9));
        assert!(!q.is_met(4, 9));
    }

    #[test]
    fn fraction_out_of_range_is_clamped() {
        assert_eq!(Quorum::Fraction(1.7).required(4), 4);
        assert_eq!(Quorum::Fraction(-0.2).required(4), 0);
    }

    #[test]
    fn display_variants() {
        assert_eq!(Quorum::Majority.to_string(), "majority");
        assert_eq!(Quorum::Count(3).to_string(), "count(3)");
    }
}
