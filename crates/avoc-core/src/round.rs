//! Voting rounds: module identities, ballots and round construction.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a redundant module (a sensor, a beacon, a software replica).
///
/// `ModuleId` is a dense, copyable integer id; human-readable names live at
/// the scenario layer. Histories and weights are keyed by it.
///
/// # Example
///
/// ```
/// use avoc_core::ModuleId;
///
/// let e4 = ModuleId::new(3);
/// assert_eq!(e4.index(), 3);
/// assert_eq!(e4.to_string(), "M3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ModuleId(u32);

impl ModuleId {
    /// Creates a module id from its index.
    pub const fn new(index: u32) -> Self {
        ModuleId(index)
    }

    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl From<u32> for ModuleId {
    fn from(v: u32) -> Self {
        ModuleId(v)
    }
}

/// One module's submission in one round. A missing measurement (the paper's
/// UC-2 fault scenario) is a ballot whose `value` is `None` — the module is
/// *expected* but silent, which matters for quorum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ballot {
    /// The submitting module.
    pub module: ModuleId,
    /// The submitted value, or `None` when the module produced nothing.
    pub value: Option<Value>,
}

impl Ballot {
    /// A ballot carrying a value.
    pub fn new(module: ModuleId, value: impl Into<Value>) -> Self {
        Ballot {
            module,
            value: Some(value.into()),
        }
    }

    /// A ballot for a module that failed to report.
    pub fn missing(module: ModuleId) -> Self {
        Ballot {
            module,
            value: None,
        }
    }

    /// Whether the ballot carries a value.
    pub fn is_present(&self) -> bool {
        self.value.is_some()
    }
}

/// One complete round of concurrent measurements presented to a voter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Round {
    /// Monotonic round number.
    pub round: u64,
    /// Ballots, one per expected module.
    pub ballots: Vec<Ballot>,
}

impl Round {
    /// Creates a round from ballots.
    pub fn new(round: u64, ballots: Vec<Ballot>) -> Self {
        Round { round, ballots }
    }

    /// Convenience constructor: a round of scalar readings where every
    /// module reported. Module ids are assigned positionally (`0..n`).
    ///
    /// # Example
    ///
    /// ```
    /// use avoc_core::Round;
    ///
    /// let round = Round::from_numbers(0, &[18.2, 18.3, 18.1]);
    /// assert_eq!(round.present_count(), 3);
    /// ```
    pub fn from_numbers(round: u64, values: &[f64]) -> Self {
        Round {
            round,
            ballots: values
                .iter()
                .enumerate()
                .map(|(i, &v)| Ballot::new(ModuleId::new(i as u32), v))
                .collect(),
        }
    }

    /// Like [`Round::from_numbers`] but `None` entries become missing
    /// ballots.
    pub fn from_sparse_numbers(round: u64, values: &[Option<f64>]) -> Self {
        Round {
            round,
            ballots: values
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let m = ModuleId::new(i as u32);
                    match v {
                        Some(x) => Ballot::new(m, *x),
                        None => Ballot::missing(m),
                    }
                })
                .collect(),
        }
    }

    /// Number of expected modules in this round.
    pub fn expected_count(&self) -> usize {
        self.ballots.len()
    }

    /// Number of modules that actually reported a value.
    pub fn present_count(&self) -> usize {
        self.ballots.iter().filter(|b| b.is_present()).count()
    }

    /// Iterator over `(module, f64)` for the present scalar ballots.
    ///
    /// Ballots holding non-scalar values are skipped; numeric voters call
    /// [`Round::numeric_candidates`] instead, which reports the mismatch.
    pub fn present_numbers(&self) -> impl Iterator<Item = (ModuleId, f64)> + '_ {
        self.ballots.iter().filter_map(|b| {
            b.value
                .as_ref()
                .and_then(Value::as_number)
                .map(|v| (b.module, v))
        })
    }

    /// Extracts the scalar candidates for a numeric vote, erroring on a
    /// ballot of the wrong type.
    ///
    /// # Errors
    ///
    /// [`crate::VoteError::TypeMismatch`] when a present ballot holds a
    /// non-scalar value.
    pub fn numeric_candidates(&self) -> Result<Vec<(ModuleId, f64)>, crate::VoteError> {
        let mut out = Vec::with_capacity(self.ballots.len());
        self.numeric_candidates_into(&mut out)?;
        Ok(out)
    }

    /// Like [`Round::numeric_candidates`], but writes into `out` (cleared
    /// first) so per-round scratch buffers can be reused without allocating.
    ///
    /// # Errors
    ///
    /// [`crate::VoteError::TypeMismatch`] when a present ballot holds a
    /// non-scalar value; `out` is left holding the candidates seen so far.
    pub fn numeric_candidates_into(
        &self,
        out: &mut Vec<(ModuleId, f64)>,
    ) -> Result<(), crate::VoteError> {
        out.clear();
        for b in &self.ballots {
            if let Some(v) = &b.value {
                match v.as_number() {
                    Some(x) => out.push((b.module, x)),
                    None => {
                        return Err(crate::VoteError::TypeMismatch {
                            expected: "number",
                            got: v.kind(),
                        })
                    }
                }
            }
        }
        Ok(())
    }

    /// Extracts the categorical candidates for a majority vote, erroring on
    /// a ballot of the wrong type.
    ///
    /// # Errors
    ///
    /// [`crate::VoteError::TypeMismatch`] when a present ballot holds a
    /// non-text value.
    pub fn text_candidates(&self) -> Result<Vec<(ModuleId, &str)>, crate::VoteError> {
        let mut out = Vec::with_capacity(self.ballots.len());
        for b in &self.ballots {
            if let Some(v) = &b.value {
                match v.as_text() {
                    Some(s) => out.push((b.module, s)),
                    None => {
                        return Err(crate::VoteError::TypeMismatch {
                            expected: "text",
                            got: v.kind(),
                        })
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_id_ordering_and_display() {
        let a = ModuleId::new(0);
        let b = ModuleId::new(4);
        assert!(a < b);
        assert_eq!(b.to_string(), "M4");
        assert_eq!(ModuleId::from(7u32).index(), 7);
    }

    #[test]
    fn from_numbers_assigns_positional_ids() {
        let r = Round::from_numbers(3, &[1.0, 2.0]);
        assert_eq!(r.round, 3);
        assert_eq!(r.ballots[1].module, ModuleId::new(1));
        assert_eq!(r.expected_count(), 2);
        assert_eq!(r.present_count(), 2);
    }

    #[test]
    fn sparse_round_counts_missing() {
        let r = Round::from_sparse_numbers(0, &[Some(1.0), None, Some(3.0)]);
        assert_eq!(r.expected_count(), 3);
        assert_eq!(r.present_count(), 2);
        assert!(!r.ballots[1].is_present());
    }

    #[test]
    fn numeric_candidates_skips_missing_and_errors_on_text() {
        let r = Round::from_sparse_numbers(0, &[Some(1.0), None]);
        assert_eq!(r.numeric_candidates().unwrap().len(), 1);

        let bad = Round::new(
            0,
            vec![
                Ballot::new(ModuleId::new(0), 1.0),
                Ballot::new(ModuleId::new(1), "oops"),
            ],
        );
        let err = bad.numeric_candidates().unwrap_err();
        assert!(matches!(
            err,
            crate::VoteError::TypeMismatch { got: "text", .. }
        ));
    }

    #[test]
    fn text_candidates_errors_on_number() {
        let bad = Round::new(
            0,
            vec![
                Ballot::new(ModuleId::new(0), "open"),
                Ballot::new(ModuleId::new(1), 2.0),
            ],
        );
        let err = bad.text_candidates().unwrap_err();
        assert!(matches!(
            err,
            crate::VoteError::TypeMismatch { got: "number", .. }
        ));
    }

    #[test]
    fn round_serde_round_trip() {
        let r = Round::from_sparse_numbers(5, &[Some(1.5), None]);
        let json = serde_json::to_string(&r).unwrap();
        let back: Round = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn present_numbers_iterates_pairs() {
        let r = Round::from_numbers(0, &[10.0, 20.0]);
        let pairs: Vec<(ModuleId, f64)> = r.present_numbers().collect();
        assert_eq!(
            pairs,
            vec![(ModuleId::new(0), 10.0), (ModuleId::new(1), 20.0)]
        );
    }
}
