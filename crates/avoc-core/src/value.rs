//! The value model: what a candidate sensor/module can submit to a vote.
//!
//! VDX (§6 of the paper) distinguishes *numeric* values — on which the full
//! algorithm family operates — from *categorical* values (character strings,
//! JSON blobs), for which only history-weighted majority voting applies
//! unless the client supplies a custom distance metric.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single candidate value submitted to a voting round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum Value {
    /// A scalar numeric measurement (e.g. lumen, dBm).
    Number(f64),
    /// A multi-dimensional numeric measurement; voted per-dimension (§5).
    Vector(Vec<f64>),
    /// A categorical value: a string, a JSON blob, a discrete state.
    Text(String),
}

impl Value {
    /// A short static name of the value kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Number(_) => "number",
            Value::Vector(_) => "vector",
            Value::Text(_) => "text",
        }
    }

    /// Returns the scalar if this is a [`Value::Number`].
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the coordinates if this is a [`Value::Vector`].
    pub fn as_vector(&self) -> Option<&[f64]> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the string if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value is numeric (scalar or vector).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Number(_) | Value::Vector(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Number(v) => write!(f, "{v}"),
            Value::Vector(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::Text(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::Vector(v)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

/// A distance metric over categorical values.
///
/// The paper notes that value-based features (exclusion, fine-grained
/// agreement) are disabled for categorical data, but that "software voting
/// implementers may re-introduce some of these features by supplying a custom
/// distance metric for categorical values" — this trait is that hook.
pub trait TextMetric: Send + Sync {
    /// Distance between two categorical values; `0.0` means identical.
    /// Implementations should be symmetric and non-negative.
    fn distance(&self, a: &str, b: &str) -> f64;
}

/// The default categorical metric: `0` for equal strings, `1` otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactMatch;

impl TextMetric for ExactMatch {
    fn distance(&self, a: &str, b: &str) -> f64 {
        if a == b {
            0.0
        } else {
            1.0
        }
    }
}

/// Levenshtein edit distance, normalised by the longer string's length so the
/// result lies in `[0, 1]`. An example of a custom metric enabling graded
/// agreement on strings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NormalizedLevenshtein;

impl TextMetric for NormalizedLevenshtein {
    fn distance(&self, a: &str, b: &str) -> f64 {
        let la = a.chars().count();
        let lb = b.chars().count();
        if la == 0 && lb == 0 {
            return 0.0;
        }
        levenshtein(a, b) as f64 / la.max(lb) as f64
    }
}

/// Plain Levenshtein edit distance between two strings (unicode-aware,
/// operating on `char`s).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_kind() {
        let n = Value::Number(1.5);
        assert_eq!(n.as_number(), Some(1.5));
        assert_eq!(n.as_vector(), None);
        assert_eq!(n.kind(), "number");
        assert!(n.is_numeric());

        let v = Value::Vector(vec![1.0, 2.0]);
        assert_eq!(v.as_vector(), Some(&[1.0, 2.0][..]));
        assert_eq!(v.kind(), "vector");
        assert!(v.is_numeric());

        let t = Value::from("open");
        assert_eq!(t.as_text(), Some("open"));
        assert_eq!(t.kind(), "text");
        assert!(!t.is_numeric());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::Number(2.5).to_string(), "2.5");
        assert_eq!(Value::Vector(vec![1.0, 2.0]).to_string(), "[1, 2]");
        assert_eq!(Value::from("on").to_string(), "\"on\"");
    }

    #[test]
    fn serde_untagged_round_trip() {
        let v = Value::Number(18.25);
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, "18.25");
        assert_eq!(serde_json::from_str::<Value>(&json).unwrap(), v);

        let t = Value::from("lane-3");
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "\"lane-3\"");
        assert_eq!(serde_json::from_str::<Value>(&json).unwrap(), t);

        let vec = Value::Vector(vec![1.0, -2.5]);
        let json = serde_json::to_string(&vec).unwrap();
        assert_eq!(serde_json::from_str::<Value>(&json).unwrap(), vec);
    }

    #[test]
    fn exact_match_metric() {
        let m = ExactMatch;
        assert_eq!(m.distance("a", "a"), 0.0);
        assert_eq!(m.distance("a", "b"), 1.0);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "ab"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        let m = NormalizedLevenshtein;
        assert_eq!(m.distance("", ""), 0.0);
        assert_eq!(m.distance("abc", "abc"), 0.0);
        assert_eq!(m.distance("abc", "xyz"), 1.0);
        let d = m.distance("open", "opened");
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn metrics_are_symmetric() {
        let m = NormalizedLevenshtein;
        for (a, b) in [("door", "dor"), ("x", "yy"), ("", "abc")] {
            assert_eq!(m.distance(a, b), m.distance(b, a));
        }
    }

    #[test]
    fn conversions_from_primitives() {
        let v: Value = 3.5.into();
        assert_eq!(v, Value::Number(3.5));
        let v: Value = vec![1.0].into();
        assert_eq!(v, Value::Vector(vec![1.0]));
        let v: Value = String::from("s").into();
        assert_eq!(v, Value::Text("s".into()));
    }
}
