//! The gateway proper: redirect-answering front door, health prober,
//! checkpoint-shipping migration driver, and cluster admin surface.
//!
//! The gateway never proxies data-plane traffic. A client dials it, sends
//! its `OpenSession`/`ResumeSession`, and gets a [`Message::Redirect`]
//! naming the owning daemon; from then on the client talks to the daemon
//! directly. That keeps the gateway off the hot path — it holds no fusion
//! state, so losing it costs redirect answering and migration driving,
//! never a fused round.
//!
//! Placement is the [`HashRing`] over healthy members, shadowed by a
//! **pinned override map** that migrations write: once a session has been
//! checkpoint-shipped to a node, that node owns it regardless of what the
//! ring says, until the node degrades or a later migration moves it again.
//! Every placement change bumps a monotonically increasing **ownership
//! epoch** that rides in each `Redirect`, so a client can discard a stale
//! redirect that raced a newer placement.
//!
//! Migration is a two-hop shipping relay driven from here (see
//! [`Gateway::migrate_session_to`]): `ExportSession` to the source, which
//! quiesces the session at a round boundary and answers with a
//! [`Message::SessionState`] blob pair; the gateway re-frames those blobs
//! into its own `SessionState` to the target, which restores warm and
//! acknowledges with `Resumed { warm: true }`. Only then does the gateway
//! flip its pinned placement — a crash anywhere earlier leaves ownership
//! where the meta sidecars say it is, and re-driving the migration is
//! idempotent.
//!
//! Both cluster verbs carry the shared **cluster secret**
//! ([`GatewayConfig::cluster_secret`]): exports ship a session's resume
//! token, so daemons refuse an `ExportSession`/`SessionState` whose `auth`
//! field does not match their configured inter-node secret.

use std::collections::{HashMap, HashSet};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use avoc_net::reactor::{self, ConnWaker, FrameVerdict, Handler, ReactorConfig, ReactorPool};
use avoc_net::Message;
use avoc_obs::http::{self, parse_request, write_response, ParseError, MAX_REQUEST_BYTES};
use avoc_obs::{rollup, Counter, Gauge, Registry};
use avoc_serve::{ClientConfig, ServeClient};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;

use crate::ring::HashRing;

/// Outbound frame budget per gateway connection. Redirect answers are
/// tiny and one-per-request; this never fills in practice.
const OUT_CHANNEL_CAPACITY: usize = 64;

/// How long an admin connection may dribble its request head.
const ADMIN_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Migration RPC deadlines: a source that cannot quiesce and ship within
/// this is treated as failed (the drive is idempotent — retry later).
const MIGRATION_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
const MIGRATION_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// One daemon in the cluster.
#[derive(Debug, Clone)]
pub struct Member {
    /// Cluster node id — must match the daemon's
    /// [`avoc_serve::Persistence::node_id`], which is what its meta
    /// sidecars are stamped with.
    pub node: u64,
    /// Data-plane `host:port` clients are redirected to.
    pub addr: String,
    /// Admin `host:port` the gateway health-probes (`/healthz`) and
    /// scrapes (`/metrics`) for the roll-up. `None` disables probing for
    /// this member: it is assumed healthy and contributes nothing to the
    /// roll-up.
    pub admin: Option<String>,
}

/// Gateway tuning.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// The cluster membership. Placement is deterministic in the member
    /// node ids: any gateway configured with the same set computes the
    /// same ring.
    pub members: Vec<Member>,
    /// Virtual nodes per member on the hash ring (default 64).
    pub vnodes: usize,
    /// Health-probe cadence (default 500 ms). Probing only runs when at
    /// least one member has an admin address.
    pub health_interval: Duration,
    /// Bind the cluster admin endpoint (`/healthz`, `/members`,
    /// `/metrics` roll-up) here; `None` (default) disables it.
    pub admin_addr: Option<String>,
    /// Event-loop threads answering redirects (default 1 — redirect
    /// answering is trivially cheap).
    pub reactors: usize,
    /// Shared inter-node secret stamped into the cluster verbs
    /// (`ExportSession` / `SessionState`) this gateway drives. Must match
    /// every member's [`avoc_serve::Persistence::cluster_secret`]; a
    /// member with no secret configured refuses migration entirely.
    /// `None` (the default) sends `0`, which no secret-configured daemon
    /// accepts — set it for any cluster that migrates sessions.
    pub cluster_secret: Option<u64>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            members: Vec::new(),
            vnodes: 64,
            health_interval: Duration::from_millis(500),
            admin_addr: None,
            reactors: 1,
            cluster_secret: None,
        }
    }
}

/// Where one session currently lives, from the gateway's point of view.
#[derive(Debug, Clone, Copy)]
struct Placement {
    node: u64,
    /// `true` when a migration installed this placement: it overrides the
    /// ring until the node degrades or a later migration moves it.
    pinned: bool,
}

/// The gateway's metric cells.
#[derive(Debug)]
struct GatewayMetrics {
    registry: Registry,
    redirects_answered: Counter,
    redirect_errors: Counter,
    migrations: Counter,
    migration_failures: Counter,
    health_probe_failures: Counter,
    rollup_scrape_failures: Counter,
    nodes_unhealthy: Gauge,
    /// `avoc_gateway_sessions_placed{node="N"}` — how many distinct
    /// sessions this gateway currently places on each member.
    placement: HashMap<u64, Gauge>,
}

impl GatewayMetrics {
    fn new(members: &[Member]) -> GatewayMetrics {
        let registry = Registry::new();
        let c = |name: &str, help: &str| registry.counter(name, help);
        let placement = members
            .iter()
            .map(|m| {
                let gauge = registry.gauge_with(
                    "avoc_gateway_sessions_placed",
                    "Sessions this gateway currently places on the node.",
                    &[("node", &m.node.to_string())],
                );
                (m.node, gauge)
            })
            .collect();
        GatewayMetrics {
            redirects_answered: c(
                "avoc_gateway_redirects_answered_total",
                "Open/resume frames answered with a Redirect.",
            ),
            redirect_errors: c(
                "avoc_gateway_redirect_errors_total",
                "Open/resume frames refused because no healthy node could take the session.",
            ),
            migrations: c(
                "avoc_gateway_migrations_total",
                "Sessions checkpoint-shipped between nodes by this gateway.",
            ),
            migration_failures: c(
                "avoc_gateway_migration_failures_total",
                "Migration drives that failed (source refused, target cold, I/O).",
            ),
            health_probe_failures: c(
                "avoc_gateway_health_probe_failures_total",
                "Member /healthz probes that failed or answered non-200.",
            ),
            rollup_scrape_failures: c(
                "avoc_gateway_rollup_scrape_failures_total",
                "Member /metrics scrapes that failed during a roll-up.",
            ),
            nodes_unhealthy: registry.gauge(
                "avoc_gateway_nodes_unhealthy",
                "Members currently considered unhealthy or draining.",
            ),
            placement,
            registry,
        }
    }
}

/// Shared cluster view: ring, member table, health, placements, epoch.
#[derive(Debug)]
struct ClusterState {
    ring: HashRing,
    members: HashMap<u64, Member>,
    /// Nodes failing their health probe or administratively draining.
    unhealthy: Mutex<HashSet<u64>>,
    /// Nodes being drained: the prober must not flip them back healthy.
    draining: Mutex<HashSet<u64>>,
    /// Session → current placement (ring answers and pinned migrations).
    placements: Mutex<HashMap<u64, Placement>>,
    /// Ownership epoch, bumped on every placement-affecting change.
    epoch: AtomicU64,
    /// The shared inter-node secret stamped into driven cluster verbs
    /// (`0` when unconfigured — refused by any secret-configured member).
    cluster_secret: u64,
    metrics: GatewayMetrics,
}

impl ClusterState {
    fn member(&self, node: u64) -> io::Result<&Member> {
        self.members
            .get(&node)
            .ok_or_else(|| io::Error::other(format!("node {node} is not a cluster member")))
    }

    /// Decides where `session` lives right now, records the decision, and
    /// returns `(node, data-plane addr)`. `None` when every member is
    /// unhealthy.
    fn place(&self, session: u64) -> Option<(u64, String)> {
        let unhealthy = self.unhealthy.lock().clone();
        let mut placements = self.placements.lock();
        let pinned = placements
            .get(&session)
            .filter(|p| p.pinned && !unhealthy.contains(&p.node))
            .map(|p| p.node);
        let node = match pinned {
            Some(n) => n,
            None => self.ring.owner_excluding(session, &unhealthy)?,
        };
        let prev = placements.insert(
            session,
            Placement {
                node,
                pinned: pinned.is_some(),
            },
        );
        match prev {
            Some(p) if p.node == node => {}
            prev => {
                if let Some(p) = prev {
                    if let Some(g) = self.metrics.placement.get(&p.node) {
                        g.add(-1);
                    }
                    // A session that moved (degraded node, expired pin)
                    // is a placement change: new epoch.
                    self.epoch.fetch_add(1, Ordering::SeqCst);
                }
                if let Some(g) = self.metrics.placement.get(&node) {
                    g.add(1);
                }
            }
        }
        let addr = self.members.get(&node)?.addr.clone();
        Some((node, addr))
    }

    /// Installs a migration's pinned placement and bumps the epoch.
    fn record_migration(&self, session: u64, target_node: u64) {
        let mut placements = self.placements.lock();
        let prev = placements.insert(
            session,
            Placement {
                node: target_node,
                pinned: true,
            },
        );
        if prev.map(|p| p.node) != Some(target_node) {
            if let Some(p) = prev {
                if let Some(g) = self.metrics.placement.get(&p.node) {
                    g.add(-1);
                }
            }
            if let Some(g) = self.metrics.placement.get(&target_node) {
                g.add(1);
            }
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.metrics.migrations.inc();
    }

    /// Applies one probe verdict; a transition bumps the epoch so clients
    /// holding a stale redirect re-place on their next reconnect.
    fn set_health(&self, node: u64, healthy: bool) {
        let healthy = healthy && !self.draining.lock().contains(&node);
        let mut unhealthy = self.unhealthy.lock();
        let changed = if healthy {
            unhealthy.remove(&node)
        } else {
            unhealthy.insert(node)
        };
        if changed {
            self.metrics.nodes_unhealthy.set(unhealthy.len() as i64);
            self.epoch.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn healthy_members(&self) -> usize {
        self.members.len() - self.unhealthy.lock().len()
    }

    /// `/members`: the cluster roster as JSON.
    fn render_members_json(&self) -> String {
        let unhealthy = self.unhealthy.lock().clone();
        let placements = self.placements.lock();
        let mut nodes: Vec<&Member> = self.members.values().collect();
        nodes.sort_by_key(|m| m.node);
        let mut out = String::from("[");
        for (i, m) in nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let sessions = placements.values().filter(|p| p.node == m.node).count();
            out.push_str(&format!(
                "{{\"node\":{},\"addr\":\"{}\",\"admin\":{},\"healthy\":{},\"sessions\":{}}}",
                m.node,
                m.addr,
                match &m.admin {
                    Some(a) => format!("\"{a}\""),
                    None => "null".to_string(),
                },
                !unhealthy.contains(&m.node),
                sessions,
            ));
        }
        out.push(']');
        out
    }

    /// `/metrics`: the gateway's own registry merged with a live scrape
    /// of every probeable member. Scrape failures degrade the roll-up to
    /// the reachable subset (counted) instead of failing it.
    fn render_rollup(&self) -> String {
        let mut texts = vec![self.metrics.registry.render_prometheus()];
        let mut nodes: Vec<&Member> = self.members.values().collect();
        nodes.sort_by_key(|m| m.node);
        for m in nodes {
            let Some(admin) = &m.admin else { continue };
            match http::get(admin, "/metrics") {
                Ok((200, body)) => texts.push(body),
                Ok(_) | Err(_) => self.metrics.rollup_scrape_failures.inc(),
            }
        }
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        rollup::merge(&refs)
    }
}

/// The protocol half of the gateway's reactor.
struct GatewayHandler {
    state: Arc<ClusterState>,
}

/// Per-connection state: the outbound channel plus its reactor waker.
struct GatewayConn {
    tx: Sender<Message>,
    waker: ConnWaker,
}

impl GatewayConn {
    fn send(&self, msg: Message) {
        if self.tx.try_send(msg).is_ok() {
            self.waker.wake();
        }
    }
}

impl Handler for GatewayHandler {
    type Conn = GatewayConn;

    fn on_open(&mut self, waker: ConnWaker) -> (GatewayConn, Receiver<Message>) {
        let (tx, rx) = channel::bounded::<Message>(OUT_CHANNEL_CAPACITY);
        (GatewayConn { tx, waker }, rx)
    }

    fn on_frame(&mut self, conn: &mut GatewayConn, msg: Message) -> FrameVerdict {
        match msg {
            Message::OpenSession { session, .. } | Message::ResumeSession { session, .. } => {
                match self.state.place(session) {
                    Some((_, addr)) => {
                        let epoch = self.state.epoch.load(Ordering::SeqCst);
                        conn.send(Message::Redirect {
                            session,
                            epoch,
                            addr,
                        });
                        self.state.metrics.redirects_answered.inc();
                    }
                    None => {
                        conn.send(Message::Error {
                            session,
                            message: "no healthy node can take this session".into(),
                        });
                        self.state.metrics.redirect_errors.inc();
                    }
                }
                FrameVerdict::Continue
            }
            Message::Shutdown => FrameVerdict::Close,
            // Everything else — readings, batches, stats — belongs on a
            // daemon connection; a confused client learns from silence
            // (its reads time out) rather than a torn-down socket.
            _ => FrameVerdict::Continue,
        }
    }

    fn on_close(&mut self, _conn: GatewayConn) {}
}

/// A running gateway: reactor pool, health prober, optional admin plane.
#[derive(Debug)]
pub struct Gateway {
    local_addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    pool: ReactorPool,
    state: Arc<ClusterState>,
    stop: Arc<AtomicBool>,
    prober: Option<JoinHandle<()>>,
    admin_running: Option<Arc<AtomicBool>>,
    admin_join: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts answering redirects
    /// for `config.members`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (data plane and admin plane) and an empty
    /// member list.
    pub fn start(addr: &str, config: GatewayConfig) -> io::Result<Gateway> {
        if config.members.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "gateway needs at least one member",
            ));
        }
        let node_ids: Vec<u64> = config.members.iter().map(|m| m.node).collect();
        let mut members = HashMap::new();
        for m in &config.members {
            if members.insert(m.node, m.clone()).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate member node id {}", m.node),
                ));
            }
        }
        let metrics = GatewayMetrics::new(&config.members);
        let state = Arc::new(ClusterState {
            ring: HashRing::new(&node_ids, config.vnodes),
            members,
            unhealthy: Mutex::new(HashSet::new()),
            draining: Mutex::new(HashSet::new()),
            placements: Mutex::new(HashMap::new()),
            epoch: AtomicU64::new(0),
            cluster_secret: config.cluster_secret.unwrap_or(0),
            metrics,
        });

        let pool = {
            let state = Arc::clone(&state);
            reactor::spawn_pool(
                addr,
                config.reactors.max(1),
                move |_| GatewayHandler {
                    state: Arc::clone(&state),
                },
                |_| ReactorConfig::default(),
            )?
        };

        let stop = Arc::new(AtomicBool::new(false));
        let prober = if config.members.iter().any(|m| m.admin.is_some()) {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let interval = config.health_interval;
            Some(
                std::thread::Builder::new()
                    .name("avoc-gateway-prober".into())
                    .spawn(move || probe_loop(&state, interval, &stop))
                    .expect("spawn gateway prober"),
            )
        } else {
            None
        };

        let mut gateway = Gateway {
            local_addr: pool.local_addr(),
            admin_addr: None,
            pool,
            state,
            stop,
            prober,
            admin_running: None,
            admin_join: None,
        };
        if let Some(admin_addr) = &config.admin_addr {
            let listener = TcpListener::bind(admin_addr)?;
            gateway.admin_addr = Some(listener.local_addr()?);
            let running = Arc::new(AtomicBool::new(true));
            let state = Arc::clone(&gateway.state);
            let join = {
                let running = Arc::clone(&running);
                std::thread::Builder::new()
                    .name("avoc-gateway-admin".into())
                    .spawn(move || admin_accept_loop(listener, &state, &running))
                    .expect("spawn gateway admin loop")
            };
            gateway.admin_running = Some(running);
            gateway.admin_join = Some(join);
        }
        Ok(gateway)
    }

    /// The address clients dial for their redirect.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The cluster admin endpoint, when configured.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// The current ownership epoch.
    pub fn epoch(&self) -> u64 {
        self.state.epoch.load(Ordering::SeqCst)
    }

    /// Where the gateway currently places `session` (recording the answer,
    /// exactly as a client's open would).
    pub fn place(&self, session: u64) -> Option<(u64, String)> {
        self.state.place(session)
    }

    /// The gateway's own metric registry (redirects, migrations, health,
    /// placement gauges).
    pub fn registry(&self) -> &Registry {
        &self.state.metrics.registry
    }

    /// Marks `node` unhealthy by hand — what an operator does before
    /// maintenance, and what [`Gateway::drain_node`] does first. The
    /// health prober will not flip a drained node back.
    pub fn mark_draining(&self, node: u64) {
        self.state.draining.lock().insert(node);
        self.state.set_health(node, false);
    }

    /// Lifts a drain mark; the node returns to probe-driven health (or to
    /// healthy immediately when it has no admin endpoint).
    pub fn lift_drain(&self, node: u64) {
        self.state.draining.lock().remove(&node);
        if self
            .state
            .member(node)
            .map(|m| m.admin.is_none())
            .unwrap_or(false)
        {
            self.state.set_health(node, true);
        }
    }

    /// Migrates `session` off its current node to the next healthy owner
    /// on the ring, returning the receiving node id.
    ///
    /// # Errors
    ///
    /// Everything [`Gateway::migrate_session_to`] can fail with, plus
    /// "no healthy node to receive" when the rest of the cluster is down.
    pub fn migrate_session(&self, session: u64) -> io::Result<u64> {
        let source = self.current_node(session)?;
        self.migrate_off(session, source)
    }

    /// Migrates `session` off `source` — a *known* resident node, which
    /// may differ from what the placement table or ring would answer (a
    /// drain enumerates sessions the drained member actually holds, which
    /// a restarted gateway's table knows nothing about) — to the next
    /// healthy ring owner, returning the receiving node id.
    fn migrate_off(&self, session: u64, source: u64) -> io::Result<u64> {
        let mut excluded = self.state.unhealthy.lock().clone();
        excluded.insert(source);
        let target = self
            .state
            .ring
            .owner_excluding(session, &excluded)
            .ok_or_else(|| io::Error::other("no healthy node to receive the session"))?;
        self.ship_and_record(session, source, target)?;
        Ok(target)
    }

    /// Drives one checkpoint-shipping migration: source quiesces and
    /// exports, the state blob is relayed to `target_node`, the target
    /// restores warm, and the gateway flips its pinned placement. The
    /// drive is idempotent — if it fails (or the gateway dies) after the
    /// source already flipped its sidecar, re-driving re-ships the same
    /// state from disk.
    ///
    /// # Errors
    ///
    /// Source refusal, a cold restore on the target, RPC timeouts.
    pub fn migrate_session_to(&self, session: u64, target_node: u64) -> io::Result<()> {
        let source_node = self.current_node(session)?;
        self.ship_and_record(session, source_node, target_node)
    }

    /// The shipping half of a migration, with the source given explicitly.
    fn ship_and_record(&self, session: u64, source_node: u64, target_node: u64) -> io::Result<()> {
        if source_node == target_node {
            return Ok(());
        }
        let source = self.state.member(source_node)?.addr.clone();
        let target = self.state.member(target_node)?.addr.clone();
        // The epoch this placement change installs — allocated up front so
        // the in-band Redirect the source sends its tenant already carries
        // it.
        let epoch = self.state.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        match ship_session(
            session,
            &source,
            &target,
            target_node,
            epoch,
            self.state.cluster_secret,
        ) {
            Ok(()) => {
                self.state.record_migration(session, target_node);
                Ok(())
            }
            Err(e) => {
                self.state.metrics.migration_failures.inc();
                Err(e)
            }
        }
    }

    /// Drains `node`: marks it unhealthy (so new placements avoid it) and
    /// migrates every session it holds to its next healthy ring owner.
    /// Returns how many sessions moved.
    ///
    /// The migrated set is the *union* of this gateway's placement table
    /// and what the member itself reports over its admin plane (live
    /// sessions via `/sessions`, durable ones via `/sessions?scope=durable`)
    /// — a restarted gateway's table is empty, and sessions recovered at
    /// daemon boot never hit it, yet their fused history must still ship
    /// rather than strand on the drained node. A member without an admin
    /// endpoint (or whose scrape fails, counted in
    /// `avoc_gateway_rollup_scrape_failures_total`) degrades to the
    /// placement table alone.
    ///
    /// # Errors
    ///
    /// The first failing migration aborts the drain; already-moved
    /// sessions stay moved (re-draining skips them).
    pub fn drain_node(&self, node: u64) -> io::Result<usize> {
        self.mark_draining(node);
        let mut sessions: Vec<u64> = {
            let placements = self.state.placements.lock();
            placements
                .iter()
                .filter(|(_, p)| p.node == node)
                .map(|(&s, _)| s)
                .collect()
        };
        if let Some(admin) = self.state.member(node)?.admin.clone() {
            match http::get(&admin, "/sessions") {
                Ok((200, body)) => sessions.extend(parse_session_rows(&body)),
                Ok(_) | Err(_) => self.state.metrics.rollup_scrape_failures.inc(),
            }
            match http::get(&admin, "/sessions?scope=durable") {
                Ok((200, body)) => sessions.extend(parse_id_array(&body)),
                Ok(_) | Err(_) => self.state.metrics.rollup_scrape_failures.inc(),
            }
        }
        sessions.sort_unstable();
        sessions.dedup();
        let mut moved = 0;
        for session in sessions {
            // The source is the drained node itself, not whatever the
            // placement table or ring would answer: for scraped sessions
            // this gateway never placed, `current_node` would name the
            // ring owner and export from the wrong member.
            self.migrate_off(session, node)?;
            moved += 1;
        }
        Ok(moved)
    }

    /// Where the gateway believes `session` lives, without recording a
    /// new placement: the placement table first, the raw ring otherwise.
    fn current_node(&self, session: u64) -> io::Result<u64> {
        self.state
            .placements
            .lock()
            .get(&session)
            .map(|p| p.node)
            .or_else(|| self.state.ring.owner(session))
            .ok_or_else(|| io::Error::other("session has no current placement"))
    }

    /// Stops the prober, the reactor pool, and the admin plane.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        self.pool.shutdown();
        if let (Some(running), Some(join)) = (self.admin_running.take(), self.admin_join.take()) {
            running.store(false, Ordering::SeqCst);
            if let Some(addr) = self.admin_addr {
                let _ = TcpStream::connect(addr); // unblock accept()
            }
            let _ = join.join();
        }
    }
}

/// Resolves a member's `host:port` string.
fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("member address {addr} resolves to nothing"),
        )
    })
}

/// Pulls the session ids out of the daemon admin plane's live-session
/// listing — rows shaped `{"session": 7, "shard": 0, ...}`.
fn parse_session_rows(body: &str) -> Vec<u64> {
    body.split("\"session\":")
        .skip(1)
        .filter_map(|rest| {
            let digits: String = rest
                .trim_start()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        })
        .collect()
}

/// Parses a flat JSON id array (`[7,21]`) — the
/// `/sessions?scope=durable` shape.
fn parse_id_array(body: &str) -> Vec<u64> {
    body.trim()
        .trim_start_matches('[')
        .trim_end_matches(']')
        .split(',')
        .filter_map(|id| id.trim().parse().ok())
        .collect()
}

/// The two-hop shipping relay: export from the source, import into the
/// target, both over short-deadline data-plane connections, both stamped
/// with the cluster secret the members require.
fn ship_session(
    session: u64,
    source_addr: &str,
    target_addr: &str,
    target_node: u64,
    epoch: u64,
    secret: u64,
) -> io::Result<()> {
    let config = ClientConfig {
        connect_timeout: MIGRATION_CONNECT_TIMEOUT,
        read_timeout: MIGRATION_READ_TIMEOUT,
    };
    let mut source = ServeClient::connect_with(resolve(source_addr)?, &config)?;
    source.send(&Message::ExportSession {
        session,
        target_node,
        epoch,
        auth: secret,
        target_addr: target_addr.to_string(),
    })?;
    let (meta, wal) = loop {
        match source.recv()? {
            Message::SessionState {
                session: s,
                meta,
                wal,
                ..
            } if s == session => break (meta, wal),
            Message::Error {
                session: s,
                message,
            } if s == session => {
                return Err(io::Error::other(format!(
                    "source refused export: {message}"
                )))
            }
            // Stray result frames for other tenants of this connection
            // cannot appear (the connection is ours alone), but a shard
            // may still flush this session's tail results first.
            _ => {}
        }
    };
    let mut target = ServeClient::connect_with(resolve(target_addr)?, &config)?;
    target.send(&Message::SessionState {
        session,
        epoch,
        auth: secret,
        meta,
        wal,
    })?;
    loop {
        match target.recv()? {
            Message::Resumed {
                session: s, warm, ..
            } if s == session => {
                if warm {
                    return Ok(());
                }
                return Err(io::Error::other(
                    "target restored the session cold; shipped state did not land",
                ));
            }
            Message::Error {
                session: s,
                message,
            } if s == session => {
                return Err(io::Error::other(format!(
                    "target refused import: {message}"
                )))
            }
            _ => {}
        }
    }
}

/// The health prober: round-robins member `/healthz` endpoints, feeding
/// verdicts into the shared state. Members without an admin address are
/// assumed healthy (drain marks still apply).
fn probe_loop(state: &ClusterState, interval: Duration, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        for member in state.members.values() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let healthy = match &member.admin {
                Some(admin) => match http::get(admin, "/healthz") {
                    Ok((200, _)) => true,
                    Ok(_) | Err(_) => {
                        state.metrics.health_probe_failures.inc();
                        false
                    }
                },
                None => true,
            };
            state.set_health(member.node, healthy);
        }
        // Sleep in small slices so shutdown is prompt.
        let mut slept = Duration::ZERO;
        while slept < interval && !stop.load(Ordering::SeqCst) {
            let chunk = (interval - slept).min(Duration::from_millis(25));
            std::thread::sleep(chunk);
            slept += chunk;
        }
    }
}

fn admin_accept_loop(listener: TcpListener, state: &Arc<ClusterState>, running: &AtomicBool) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while running.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if !running.load(Ordering::SeqCst) {
            break; // the shutdown wake-up connection
        }
        let state = Arc::clone(state);
        conns.push(std::thread::spawn(move || {
            let _ = serve_admin_connection(stream, &state);
        }));
        conns.retain(|c| !c.is_finished());
    }
    for c in conns {
        let _ = c.join();
    }
}

fn serve_admin_connection(mut stream: TcpStream, state: &ClusterState) -> io::Result<()> {
    let _ = stream.set_read_timeout(Some(ADMIN_READ_TIMEOUT));
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        match parse_request(&buf) {
            Ok(req) => {
                let (status, content_type, body) =
                    route(req.path(), req.query_param("scope"), state);
                return write_response(&mut stream, status, content_type, &body);
            }
            Err(ParseError::Incomplete) if buf.len() <= MAX_REQUEST_BYTES => {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Ok(()); // peer gave up mid-head
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) => {
                let status = e.status();
                return write_response(
                    &mut stream,
                    status,
                    "text/plain; charset=utf-8",
                    &format!("{}\n", http::reason(status)),
                );
            }
        }
    }
}

fn route(path: &str, scope: Option<&str>, state: &ClusterState) -> (u16, &'static str, String) {
    const TEXT: &str = "text/plain; charset=utf-8";
    const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
    const JSON: &str = "application/json";
    match path {
        // The gateway is healthy while it can still place sessions
        // somewhere.
        "/healthz" => {
            if state.healthy_members() > 0 {
                (200, TEXT, "ok\n".to_string())
            } else {
                (503, TEXT, "no healthy members\n".to_string())
            }
        }
        "/members" => (200, JSON, state.render_members_json()),
        "/metrics" => {
            if scope == Some("local") {
                (200, PROM, state.metrics.registry.render_prometheus())
            } else {
                (200, PROM, state.render_rollup())
            }
        }
        _ => (404, TEXT, "not found\n".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avoc_core::ModuleId;
    use avoc_net::SpecSource;
    use avoc_serve::{Persistence, ServeConfig, SpecRegistry, TcpServer, VoterService};
    use std::path::{Path, PathBuf};

    const TOKEN: u64 = 0xFEED;
    const MODULES: u32 = 3;
    /// Shared inter-node secret for every test daemon and gateway.
    const CLUSTER_SECRET: u64 = 0x5EC2E7;

    fn registry() -> Arc<SpecRegistry> {
        let mut registry = SpecRegistry::new();
        registry.insert("avoc", avoc_vdx::VdxSpec::avoc());
        Arc::new(registry)
    }

    fn state_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("avoc-gateway-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn start_daemon(node_id: u64, state_dir: Option<&Path>, admin: bool) -> TcpServer {
        let config = ServeConfig {
            persistence: Persistence {
                state_dir: state_dir.map(Path::to_path_buf),
                node_id,
                cluster_secret: Some(CLUSTER_SECRET),
                ..Persistence::default()
            },
            admin_addr: admin.then(|| "127.0.0.1:0".to_string()),
            ..ServeConfig::default()
        };
        let service = Arc::new(VoterService::start(config, registry()));
        TcpServer::start("127.0.0.1:0", service).expect("bind daemon")
    }

    fn member_of(node: u64, server: &TcpServer) -> Member {
        Member {
            node,
            addr: server.local_addr().to_string(),
            admin: server.admin_addr().map(|a| a.to_string()),
        }
    }

    fn gateway_for(members: Vec<Member>, admin: bool) -> Gateway {
        let config = GatewayConfig {
            members,
            health_interval: Duration::from_millis(50),
            admin_addr: admin.then(|| "127.0.0.1:0".to_string()),
            cluster_secret: Some(CLUSTER_SECRET),
            ..GatewayConfig::default()
        };
        Gateway::start("127.0.0.1:0", config).expect("bind gateway")
    }

    /// Resumes `session` against `addr` and returns the `Resumed` ack.
    fn resume_at(addr: SocketAddr, session: u64, last_acked: Option<u64>) -> Message {
        let mut client = ServeClient::connect(addr).expect("connect");
        client
            .send(&Message::ResumeSession {
                session,
                modules: MODULES,
                spec: SpecSource::Named("avoc".into()),
                token: TOKEN,
                last_acked,
            })
            .expect("send resume");
        loop {
            match client.recv().expect("recv") {
                msg @ Message::Resumed { .. } => return msg,
                msg @ Message::Error { .. } => return msg,
                _ => {}
            }
        }
    }

    /// Feeds `rounds` full triads into `session` at `addr` and collects
    /// the fused results (flattening batches).
    fn feed_rounds(addr: SocketAddr, session: u64, rounds: u64) -> Vec<(u64, Option<u64>)> {
        let mut client = ServeClient::connect(addr).expect("connect");
        client
            .send(&Message::ResumeSession {
                session,
                modules: MODULES,
                spec: SpecSource::Named("avoc".into()),
                token: TOKEN,
                last_acked: None,
            })
            .expect("send resume");
        match client.recv().expect("resume ack") {
            Message::Resumed { .. } => {}
            other => panic!("expected Resumed, got {other:?}"),
        }
        for round in 0..rounds {
            for module in 0..MODULES {
                client
                    .send_reading(
                        session,
                        ModuleId::new(module),
                        round,
                        0.5 + f64::from(module) * 0.01,
                    )
                    .expect("feed");
            }
        }
        let mut results = Vec::new();
        while (results.len() as u64) < rounds {
            match client.recv().expect("recv result") {
                Message::SessionResult { round, value, .. } => {
                    results.push((round, value.map(f64::to_bits)));
                }
                Message::ResultBatch { results: batch, .. } => {
                    for r in batch {
                        results.push((r.round, r.value.map(f64::to_bits)));
                    }
                }
                Message::Error { message, .. } => panic!("feed failed: {message}"),
                _ => {}
            }
        }
        results
    }

    #[test]
    fn gateway_redirects_sessions_to_their_ring_owner() {
        let a = start_daemon(1, None, false);
        let b = start_daemon(2, None, false);
        let gateway = gateway_for(vec![member_of(1, &a), member_of(2, &b)], false);

        let mut client = ServeClient::connect(gateway.local_addr()).expect("dial gateway");
        let mut seen_addrs = HashSet::new();
        for session in 0..32u64 {
            client
                .send(&Message::ResumeSession {
                    session,
                    modules: MODULES,
                    spec: SpecSource::Named("avoc".into()),
                    token: TOKEN,
                    last_acked: None,
                })
                .expect("send");
            match client.recv().expect("recv") {
                Message::Redirect {
                    session: s, addr, ..
                } => {
                    assert_eq!(s, session);
                    let (node, expect_addr) = gateway.place(session).expect("placed");
                    assert_eq!(addr, expect_addr);
                    assert!([1, 2].contains(&node));
                    seen_addrs.insert(addr);
                }
                other => panic!("expected Redirect, got {other:?}"),
            }
        }
        // 32 sessions over 2 nodes: both sides of the ring get traffic.
        assert_eq!(seen_addrs.len(), 2);
        let text = gateway.registry().render_prometheus();
        assert!(rollup::sample_value(&text, "avoc_gateway_redirects_answered_total") >= Some(32.0));

        gateway.shutdown();
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn migration_ships_state_and_the_target_resumes_warm() {
        let dir1 = state_dir("mig-1");
        let dir2 = state_dir("mig-2");
        let a = start_daemon(1, Some(&dir1), false);
        let b = start_daemon(2, Some(&dir2), false);
        let gateway = gateway_for(vec![member_of(1, &a), member_of(2, &b)], false);

        let session = 42u64;
        let (source_node, source_addr) = gateway.place(session).expect("placed");
        let source_addr: SocketAddr = source_addr.parse().unwrap();
        let baseline = feed_rounds(source_addr, session, 5);
        assert_eq!(baseline.len(), 5);

        let target_node = gateway.migrate_session(session).expect("migrate");
        assert_ne!(target_node, source_node);
        assert_eq!(gateway.place(session).map(|(n, _)| n), Some(target_node));

        // The target answers a reconnect warm, at the shipped frontier.
        let (_, target_addr) = gateway.place(session).expect("placed after migrate");
        match resume_at(target_addr.parse().unwrap(), session, Some(4)) {
            Message::Resumed {
                high_round, warm, ..
            } => {
                assert!(warm, "target restored cold");
                assert_eq!(high_round, Some(4));
            }
            other => panic!("expected Resumed, got {other:?}"),
        }

        // The source's boot recovery would now skip the sidecar; its live
        // table already dropped the session — resuming there gets refused
        // (by the foreign-meta guard), not double-owned.
        match resume_at(source_addr, session, Some(4)) {
            Message::Error { message, .. } => {
                assert!(
                    message.contains("migrated"),
                    "unexpected refusal: {message}"
                )
            }
            Message::Resumed { warm, .. } => assert!(!warm, "source kept warm state"),
            other => panic!("unexpected reply: {other:?}"),
        }

        let text = gateway.registry().render_prometheus();
        assert_eq!(
            rollup::sample_value(&text, "avoc_gateway_migrations_total"),
            Some(1.0)
        );

        gateway.shutdown();
        a.shutdown();
        b.shutdown();
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn drain_moves_placed_sessions_off_the_node() {
        let dir1 = state_dir("drain-1");
        let dir2 = state_dir("drain-2");
        let a = start_daemon(1, Some(&dir1), false);
        let b = start_daemon(2, Some(&dir2), false);
        let gateway = gateway_for(vec![member_of(1, &a), member_of(2, &b)], false);

        // Two live sessions, wherever the ring puts them.
        let sessions = [7u64, 21u64];
        for &s in &sessions {
            let (_, addr) = gateway.place(s).expect("placed");
            feed_rounds(addr.parse().unwrap(), s, 3);
        }
        let drained_node = gateway.place(sessions[0]).unwrap().0;
        let expected_moves = sessions
            .iter()
            .filter(|&&s| gateway.place(s).unwrap().0 == drained_node)
            .count();

        let moved = gateway.drain_node(drained_node).expect("drain");
        assert_eq!(moved, expected_moves);
        for &s in &sessions {
            assert_ne!(gateway.place(s).unwrap().0, drained_node);
        }
        // New sessions avoid the drained node too.
        for s in 100..110u64 {
            assert_ne!(gateway.place(s).unwrap().0, drained_node);
        }

        gateway.shutdown();
        a.shutdown();
        b.shutdown();
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn drain_discovers_resident_sessions_without_placement_entries() {
        let dir1 = state_dir("drain-scrape-1");
        let dir2 = state_dir("drain-scrape-2");
        let a = start_daemon(1, Some(&dir1), true);
        let b = start_daemon(2, Some(&dir2), true);

        // A session fed *directly* into node 1 — it exists on the daemon
        // (live and durable) but no gateway ever placed it.
        let session = 4242u64;
        let fed = feed_rounds(a.local_addr(), session, 3);
        assert_eq!(fed.len(), 3);

        // A gateway started *after* the fact: its placement table is
        // empty, exactly like one restarted mid-flight. Draining node 1
        // must still discover the resident session over the admin plane
        // and ship its history.
        let gateway = gateway_for(vec![member_of(1, &a), member_of(2, &b)], false);
        let moved = gateway.drain_node(1).expect("drain");
        assert_eq!(moved, 1, "the scraped session must have shipped");

        // The history landed warm on node 2, at the fused frontier.
        match resume_at(b.local_addr(), session, Some(2)) {
            Message::Resumed {
                high_round, warm, ..
            } => {
                assert!(warm, "scraped session restored cold");
                assert_eq!(high_round, Some(2));
            }
            other => panic!("expected Resumed, got {other:?}"),
        }

        gateway.shutdown();
        a.shutdown();
        b.shutdown();
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn health_probe_marks_dead_members_and_routes_around_them() {
        let a = start_daemon(1, None, true);
        let b = start_daemon(2, None, true);
        let addr_b = b.local_addr().to_string();
        let gateway = gateway_for(vec![member_of(1, &a), member_of(2, &b)], true);

        // Both healthy: /healthz is ok.
        let admin = gateway.admin_addr().unwrap().to_string();
        let (status, body) = http::get(&admin, "/healthz").expect("gateway healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        // Kill node 2 (admin plane and all); the prober notices.
        b.shutdown();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let (_, members) = http::get(&admin, "/members").expect("members");
            if members.contains("\"healthy\":false") {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "prober never noticed");
            std::thread::sleep(Duration::from_millis(25));
        }
        // Every placement now avoids the dead node's address.
        for s in 0..64u64 {
            let (node, addr) = gateway.place(s).expect("placed");
            assert_eq!(node, 1);
            assert_ne!(addr, addr_b);
        }

        gateway.shutdown();
        a.shutdown();
    }

    #[test]
    fn metrics_rollup_sums_member_scrapes() {
        let a = start_daemon(1, None, true);
        let b = start_daemon(2, None, true);
        let gateway = gateway_for(vec![member_of(1, &a), member_of(2, &b)], true);

        // One live session per daemon, fed directly.
        feed_rounds(a.local_addr(), 1000, 2);
        feed_rounds(b.local_addr(), 2000, 3);

        let scrape_a = http::get(&a.admin_addr().unwrap().to_string(), "/metrics")
            .expect("scrape a")
            .1;
        let scrape_b = http::get(&b.admin_addr().unwrap().to_string(), "/metrics")
            .expect("scrape b")
            .1;
        let rolled = http::get(&gateway.admin_addr().unwrap().to_string(), "/metrics")
            .expect("rollup")
            .1;

        for key in ["avoc_sessions_opened_total", "avoc_rounds_fused_total"] {
            let sum = rollup::sample_value(&scrape_a, key).unwrap_or(0.0)
                + rollup::sample_value(&scrape_b, key).unwrap_or(0.0);
            assert_eq!(
                rollup::sample_value(&rolled, key),
                Some(sum),
                "roll-up mismatch for {key}"
            );
        }
        // The gateway's own cells ride along in the same surface.
        assert!(rolled.contains("avoc_gateway_nodes_unhealthy"));

        gateway.shutdown();
        a.shutdown();
        b.shutdown();
    }
}
