//! `avoc-gateway`: the multi-node routing tier in front of `avoc-serve`.
//!
//! A single [`avoc_serve::TcpServer`] daemon scales to many tenants on one
//! machine; this crate scales the *deployment* to many machines without
//! giving up the single-node story's crash guarantees. The design keeps
//! the gateway stateless about fusion and sessions-at-rest — it owns only
//! *placement*:
//!
//! ```text
//!            OpenSession / ResumeSession
//!   client ────────────────────────────▶ gateway
//!   client ◀──────────────────────────── Redirect { session, epoch, addr }
//!            (client re-dials the owning daemon directly;
//!             the gateway is off the data path)
//!
//!   gateway ── ExportSession ──▶ daemon A      (drain / rebalance)
//!   gateway ◀── SessionState ─── daemon A      (quiesced checkpoint + WAL)
//!   gateway ── SessionState ───▶ daemon B
//!   gateway ◀── Resumed{warm} ── daemon B      (placement flips, epoch++)
//! ```
//!
//! * [`HashRing`] — consistent hashing with virtual nodes: session ids
//!   hash onto a `u64` ring, each member contributes `vnodes` points, and
//!   excluding a degraded node moves only that node's sessions.
//! * [`Gateway`] — the running tier: an `avoc-net` reactor answering
//!   open/resume frames with `Redirect`, a `/healthz` prober that routes
//!   around degraded members, checkpoint-shipping migration
//!   ([`Gateway::migrate_session_to`], [`Gateway::drain_node`]), and a
//!   cluster admin endpoint whose `/metrics` merges every member's scrape
//!   into one roll-up ([`avoc_obs::rollup`]).
//! * [`Member`] / [`GatewayConfig`] — the static membership and tuning.
//!
//! Clients need no new machinery: [`avoc_serve::ResilientClient`] already
//! follows `Redirect` frames (hop-capped, loop-rejecting), so pointing it
//! at a gateway instead of a daemon is the whole integration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gateway;
mod ring;

pub use gateway::{Gateway, GatewayConfig, Member};
pub use ring::HashRing;
