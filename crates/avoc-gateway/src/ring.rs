//! The consistent-hash ring placing sessions on cluster nodes.
//!
//! Each member node contributes `vnodes` pseudo-random points on a `u64`
//! ring; a session id hashes to a point and is owned by the first node
//! point at or clockwise of it. Virtual nodes smooth the per-node share
//! (with one point per node, a 2-node ring can split 90/10), and the
//! clockwise-successor rule gives the property the gateway leans on for
//! health-based re-placement: excluding a node moves **only that node's
//! sessions**, each to its next distinct neighbour — everyone else's
//! placement is untouched.
//!
//! Hashing is [`splitmix64`] — the same finalizer the daemon uses for
//! shard pinning — so placement is deterministic across gateway restarts
//! and across gateways: any gateway with the same member list computes
//! the same ring.

use std::collections::HashSet;

/// SplitMix64 finalizer: a cheap, well-mixed `u64 -> u64` permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring with virtual nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring point, node id)`, sorted by point. Collisions are dropped
    /// deterministically (first node to claim a point keeps it), which at
    /// 2^64 points never costs a real replica.
    points: Vec<(u64, u64)>,
    /// Distinct node ids on the ring.
    nodes: Vec<u64>,
}

impl HashRing {
    /// Builds a ring with `vnodes` points per node. `vnodes` is clamped to
    /// at least 1; duplicate node ids contribute once.
    pub fn new(nodes: &[u64], vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut distinct: Vec<u64> = nodes.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut points = Vec::with_capacity(distinct.len() * vnodes);
        for &node in &distinct {
            for replica in 0..vnodes as u64 {
                // Double-mix so node 2 replica 0 and node 0 replica 2
                // land nowhere near each other.
                points.push((splitmix64(splitmix64(node) ^ replica), node));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        HashRing {
            points,
            nodes: distinct,
        }
    }

    /// The distinct node ids on the ring, ascending.
    pub fn nodes(&self) -> &[u64] {
        &self.nodes
    }

    /// The node owning `session`, or `None` on an empty ring.
    pub fn owner(&self, session: u64) -> Option<u64> {
        self.owner_excluding(session, &HashSet::new())
    }

    /// The node owning `session` when every node in `excluded` is off the
    /// table: walks clockwise from the session's point past excluded
    /// nodes' replicas. `None` when no eligible node remains.
    pub fn owner_excluding(&self, session: u64, excluded: &HashSet<u64>) -> Option<u64> {
        if self.points.is_empty() {
            return None;
        }
        let h = splitmix64(session);
        let start = self.points.partition_point(|&(p, _)| p < h);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !excluded.contains(&node) {
                return Some(node);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_total() {
        let a = HashRing::new(&[1, 2, 3], 64);
        let b = HashRing::new(&[3, 1, 2], 64); // order-independent
        for session in 0..1000u64 {
            let owner = a.owner(session).unwrap();
            assert_eq!(Some(owner), b.owner(session));
            assert!([1, 2, 3].contains(&owner));
        }
    }

    #[test]
    fn virtual_nodes_keep_the_split_roughly_even() {
        let ring = HashRing::new(&[1, 2, 3], 128);
        let mut counts = [0u32; 3];
        for session in 0..30_000u64 {
            counts[(ring.owner(session).unwrap() - 1) as usize] += 1;
        }
        for &c in &counts {
            // A perfectly even split is 10k each; 128 vnodes should hold
            // every node well inside [6k, 14k].
            assert!((6_000..14_000).contains(&c), "unbalanced split: {counts:?}");
        }
    }

    #[test]
    fn excluding_a_node_moves_only_its_sessions() {
        let ring = HashRing::new(&[1, 2, 3], 64);
        let excluded: HashSet<u64> = [2].into_iter().collect();
        for session in 0..2000u64 {
            let before = ring.owner(session).unwrap();
            let after = ring.owner_excluding(session, &excluded).unwrap();
            assert_ne!(after, 2);
            if before != 2 {
                assert_eq!(before, after, "healthy node's session moved");
            }
        }
    }

    #[test]
    fn empty_and_fully_excluded_rings_place_nothing() {
        assert_eq!(HashRing::new(&[], 64).owner(7), None);
        let ring = HashRing::new(&[1], 64);
        let all: HashSet<u64> = [1].into_iter().collect();
        assert_eq!(ring.owner_excluding(7, &all), None);
        assert_eq!(ring.owner(7), Some(1));
    }

    #[test]
    fn duplicate_nodes_and_zero_vnodes_are_tolerated() {
        let ring = HashRing::new(&[5, 5, 5], 0);
        assert_eq!(ring.nodes(), &[5]);
        assert_eq!(ring.owner(99), Some(5));
    }
}
