//! Absolute accuracy against ground truth.
//!
//! Real deployments lack external ground truth — that is the paper's whole
//! premise ("in the absence of external ground truth ... voting is a
//! pragmatic substitute as it leads to internal ground truth"). The
//! simulators, however, *know* the true field, so fused outputs can be
//! scored absolutely: this module provides the error measures used to show
//! that the internal ground truth genuinely tracks the external one.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error statistics of an output series against a known truth series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Rounds where the output was present and scored.
    pub scored: usize,
    /// Rounds where the output was missing.
    pub missing: usize,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Largest absolute error.
    pub max_abs_error: f64,
    /// Mean signed error (bias; positive = output reads high).
    pub bias: f64,
}

impl AccuracyReport {
    /// Scores `output[r]` against `truth[r]` for every round. Returns
    /// `None` when no round could be scored.
    ///
    /// # Panics
    ///
    /// Panics when the series lengths differ.
    pub fn score(output: &[Option<f64>], truth: &[f64]) -> Option<AccuracyReport> {
        assert_eq!(output.len(), truth.len(), "series length mismatch");
        let mut scored = 0usize;
        let mut missing = 0usize;
        let mut sq_sum = 0.0;
        let mut abs_sum = 0.0;
        let mut signed_sum = 0.0;
        let mut max_abs = 0.0f64;
        for (o, &t) in output.iter().zip(truth) {
            match o {
                Some(v) => {
                    let e = v - t;
                    scored += 1;
                    sq_sum += e * e;
                    abs_sum += e.abs();
                    signed_sum += e;
                    max_abs = max_abs.max(e.abs());
                }
                None => missing += 1,
            }
        }
        if scored == 0 {
            return None;
        }
        let n = scored as f64;
        Some(AccuracyReport {
            scored,
            missing,
            rmse: (sq_sum / n).sqrt(),
            mae: abs_sum / n,
            max_abs_error: max_abs,
            bias: signed_sum / n,
        })
    }
}

impl fmt::Display for AccuracyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rmse {:.4}, mae {:.4}, bias {:+.4}, max |e| {:.4} over {} rounds ({} missing)",
            self.rmse, self.mae, self.bias, self.max_abs_error, self.scored, self.missing
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_output_scores_zero() {
        let truth = [1.0, 2.0, 3.0];
        let output = [Some(1.0), Some(2.0), Some(3.0)];
        let r = AccuracyReport::score(&output, &truth).unwrap();
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.bias, 0.0);
        assert_eq!(r.scored, 3);
    }

    #[test]
    fn constant_offset_shows_as_bias() {
        let truth = [10.0; 5];
        let output = [Some(10.5); 5];
        let r = AccuracyReport::score(&output, &truth).unwrap();
        assert!((r.bias - 0.5).abs() < 1e-12);
        assert!((r.mae - 0.5).abs() < 1e-12);
        assert!((r.rmse - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rmse_penalises_spikes_more_than_mae() {
        let truth = [0.0; 4];
        let output = [Some(0.0), Some(0.0), Some(0.0), Some(2.0)];
        let r = AccuracyReport::score(&output, &truth).unwrap();
        assert!((r.mae - 0.5).abs() < 1e-12);
        assert!((r.rmse - 1.0).abs() < 1e-12);
        assert_eq!(r.max_abs_error, 2.0);
    }

    #[test]
    fn missing_rounds_are_counted_not_scored() {
        let truth = [1.0, 2.0];
        let output = [None, Some(2.5)];
        let r = AccuracyReport::score(&output, &truth).unwrap();
        assert_eq!(r.scored, 1);
        assert_eq!(r.missing, 1);
        assert!((r.mae - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_missing_is_none() {
        assert!(AccuracyReport::score(&[None, None], &[1.0, 2.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = AccuracyReport::score(&[Some(1.0)], &[]);
    }
}
