//! Stack-discrimination ambiguity — the UC-2 comparison criterion.
//!
//! "In order to determine the best results, we study the number of rounds
//! while it is ambiguous which stack of sensors is closest to the robot at
//! any given time" (§7). Given the per-round fused RSSI of stack A and
//! stack B, a round is *ambiguous* when the two outputs are within a margin
//! of each other (no confident winner), and *misclassified* when the
//! confident winner contradicts the ground truth.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-run ambiguity metrics for a two-stack discrimination task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmbiguityReport {
    /// Rounds where either output was missing.
    pub missing: usize,
    /// Rounds with both outputs present but within the margin — no winner.
    pub ambiguous: usize,
    /// Confident rounds whose winner contradicts ground truth.
    pub misclassified: usize,
    /// Confident, correct rounds.
    pub correct: usize,
}

impl AmbiguityReport {
    /// Evaluates fused outputs for stack A and stack B against ground
    /// truth. `truth_a_closer[r]` is `true` when stack A is genuinely the
    /// closer stack in round `r`; `margin` is the dB gap below which the
    /// round counts as ambiguous.
    ///
    /// # Panics
    ///
    /// Panics when the three slices differ in length or `margin` is
    /// negative.
    pub fn evaluate(
        stack_a: &[Option<f64>],
        stack_b: &[Option<f64>],
        truth_a_closer: &[bool],
        margin: f64,
    ) -> Self {
        assert_eq!(stack_a.len(), stack_b.len(), "series length mismatch");
        assert_eq!(stack_a.len(), truth_a_closer.len(), "truth length mismatch");
        assert!(margin >= 0.0, "margin must be non-negative");
        let mut report = AmbiguityReport {
            missing: 0,
            ambiguous: 0,
            misclassified: 0,
            correct: 0,
        };
        for ((a, b), &truth_a) in stack_a.iter().zip(stack_b).zip(truth_a_closer) {
            match (a, b) {
                (Some(a), Some(b)) => {
                    if (a - b).abs() <= margin {
                        report.ambiguous += 1;
                    } else if (a > b) == truth_a {
                        // Stronger RSSI ⇒ closer stack.
                        report.correct += 1;
                    } else {
                        report.misclassified += 1;
                    }
                }
                _ => report.missing += 1,
            }
        }
        report
    }

    /// Total rounds evaluated.
    pub fn total(&self) -> usize {
        self.missing + self.ambiguous + self.misclassified + self.correct
    }

    /// Fraction of rounds with a confident, correct winner.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.correct as f64 / t as f64
        }
    }

    /// Fraction of rounds that were ambiguous.
    pub fn ambiguity_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.ambiguous as f64 / t as f64
        }
    }
}

impl fmt::Display for AmbiguityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds: {} correct, {} ambiguous, {} misclassified, {} missing ({:.1}% accuracy)",
            self.total(),
            self.correct,
            self.ambiguous,
            self.misclassified,
            self.missing,
            self.accuracy() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_each_round() {
        let a = [Some(-60.0), Some(-80.0), Some(-70.0), None];
        let b = [Some(-80.0), Some(-60.0), Some(-69.0), Some(-50.0)];
        let truth = [true, false, true, false];
        let r = AmbiguityReport::evaluate(&a, &b, &truth, 3.0);
        // round 0: A louder, truth A → correct
        // round 1: B louder, truth B → correct
        // round 2: |Δ| = 1 ≤ 3 → ambiguous
        // round 3: A missing → missing
        assert_eq!(r.correct, 2);
        assert_eq!(r.ambiguous, 1);
        assert_eq!(r.missing, 1);
        assert_eq!(r.misclassified, 0);
        assert_eq!(r.total(), 4);
    }

    #[test]
    fn misclassification_detected() {
        let a = [Some(-90.0)];
        let b = [Some(-60.0)];
        let truth = [true]; // A is closer but B is much louder
        let r = AmbiguityReport::evaluate(&a, &b, &truth, 2.0);
        assert_eq!(r.misclassified, 1);
        assert_eq!(r.accuracy(), 0.0);
    }

    #[test]
    fn rates() {
        let r = AmbiguityReport {
            missing: 1,
            ambiguous: 2,
            misclassified: 1,
            correct: 6,
        };
        assert_eq!(r.total(), 10);
        assert!((r.accuracy() - 0.6).abs() < 1e-12);
        assert!((r.ambiguity_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let r = AmbiguityReport::evaluate(&[], &[], &[], 1.0);
        assert_eq!(r.total(), 0);
        assert_eq!(r.accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = AmbiguityReport::evaluate(&[Some(1.0)], &[], &[true], 1.0);
    }

    #[test]
    fn zero_margin_never_ambiguous_unless_equal() {
        let a = [Some(-60.0), Some(-70.0)];
        let b = [Some(-60.0), Some(-71.0)];
        let truth = [true, true];
        let r = AmbiguityReport::evaluate(&a, &b, &truth, 0.0);
        assert_eq!(r.ambiguous, 1);
        assert_eq!(r.correct, 1);
    }
}
