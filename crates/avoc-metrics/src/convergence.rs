//! Convergence metrics — the UC-1 comparison criteria.
//!
//! The paper compares algorithms by "(a) voting rounds required to converge
//! back to the baseline, and by extension how quickly outliers are
//! eliminated; and (b) how far the new stable value is from the original",
//! and headlines AVOC "boost\[ing\] the convergence of the measurements by
//! 4×".

use crate::series::diff_series;
use serde::{Deserialize, Serialize};
use std::fmt;

/// First round index from which the series stays within `epsilon` of
/// `target` for at least `sustain` consecutive non-missing samples.
///
/// Returns `None` when the series never converges. Missing samples inside a
/// sustained window are skipped (they neither confirm nor break the streak).
///
/// # Example
///
/// ```
/// use avoc_metrics::rounds_to_converge;
///
/// let series = [Some(5.0), Some(3.0), Some(1.1), Some(0.9), Some(1.0)];
/// assert_eq!(rounds_to_converge(&series, 1.0, 0.2, 2), Some(2));
/// ```
pub fn rounds_to_converge(
    series: &[Option<f64>],
    target: f64,
    epsilon: f64,
    sustain: usize,
) -> Option<usize> {
    let sustain = sustain.max(1);
    let mut streak = 0usize;
    let mut streak_start = 0usize;
    for (i, v) in series.iter().enumerate() {
        match v {
            None => continue,
            Some(v) if (v - target).abs() <= epsilon => {
                if streak == 0 {
                    streak_start = i;
                }
                streak += 1;
                if streak >= sustain {
                    return Some(streak_start);
                }
            }
            Some(_) => streak = 0,
        }
    }
    None
}

/// The stable value of a series: the mean of its last `tail_fraction`
/// (e.g. `0.1` = final 10%). Returns `None` when that tail holds no samples.
pub fn stable_value(series: &[Option<f64>], tail_fraction: f64) -> Option<f64> {
    let tail_fraction = tail_fraction.clamp(0.0, 1.0);
    let start = ((series.len() as f64) * (1.0 - tail_fraction)) as usize;
    let xs: Vec<f64> = series[start.min(series.len())..]
        .iter()
        .flatten()
        .copied()
        .collect();
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// A complete UC-1-style convergence comparison of one algorithm's faulty
/// run against its clean run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// Algorithm label.
    pub algorithm: String,
    /// Metric (a): rounds until the faulty output returns to the clean
    /// output (within `epsilon`, sustained); `None` = never converged.
    pub rounds_to_converge: Option<usize>,
    /// Metric (b): |stable faulty value − stable clean value|.
    pub stable_deviation: f64,
    /// Peak |faulty − clean| over the run — the startup spike of Fig. 6-f.
    pub peak_deviation: f64,
    /// The epsilon band used.
    pub epsilon: f64,
}

impl ConvergenceReport {
    /// Builds the report from a clean-run output series and a faulty-run
    /// output series.
    ///
    /// Convergence is measured on the *pointwise difference* of the two
    /// series (the Fig. 6-e signal) returning to the ±`epsilon` band and
    /// staying there for `sustain` rounds.
    ///
    /// # Panics
    ///
    /// Panics when the series lengths differ.
    pub fn compare(
        algorithm: impl Into<String>,
        clean: &[Option<f64>],
        faulty: &[Option<f64>],
        epsilon: f64,
        sustain: usize,
    ) -> Self {
        let diff = diff_series(faulty, clean);
        let rounds = rounds_to_converge(&diff, 0.0, epsilon, sustain);
        let stable_clean = stable_value(clean, 0.1).unwrap_or(0.0);
        let stable_faulty = stable_value(faulty, 0.1).unwrap_or(0.0);
        let peak = diff
            .iter()
            .flatten()
            .map(|v| v.abs())
            .fold(0.0f64, f64::max);
        ConvergenceReport {
            algorithm: algorithm.into(),
            rounds_to_converge: rounds,
            stable_deviation: (stable_faulty - stable_clean).abs(),
            peak_deviation: peak,
            epsilon,
        }
    }

    /// Like [`ConvergenceReport::compare`], but thresholds a *moving
    /// average of the absolute* difference signal instead of the raw
    /// pointwise values.
    ///
    /// Selection collations (mean-nearest-neighbour) emit genuine sensor
    /// readings, so the faulty-vs-clean difference jitters between real
    /// values even in steady state; smoothing `|Δ|` with `window` (e.g. one
    /// second of rounds) recovers the paper's "converged back to the
    /// baseline" reading. Smoothing the absolute value — rather than the
    /// signed signal — keeps a startup spike from being cancelled by
    /// negative settling inside the same window. Peak/stable deviations
    /// still report the raw signal.
    ///
    /// # Panics
    ///
    /// Panics when the series lengths differ or `window == 0`.
    pub fn compare_smoothed(
        algorithm: impl Into<String>,
        clean: &[Option<f64>],
        faulty: &[Option<f64>],
        epsilon: f64,
        sustain: usize,
        window: usize,
    ) -> Self {
        let raw = Self::compare(algorithm, clean, faulty, epsilon, sustain);
        let abs_diff: Vec<Option<f64>> = diff_series(faulty, clean)
            .into_iter()
            .map(|v| v.map(f64::abs))
            .collect();
        let smoothed = crate::series::moving_average(&abs_diff, window);
        ConvergenceReport {
            rounds_to_converge: rounds_to_converge(&smoothed, 0.0, epsilon, sustain),
            ..raw
        }
    }

    /// The convergence boost of `self` over `other`:
    /// `other.rounds / self.rounds` (the paper reports AVOC at 4× over the
    /// state of the art). `None` when either never converged;
    /// `f64::INFINITY` when `self` converged instantly and `other` did not
    /// do so in round 0.
    pub fn boost_over(&self, other: &ConvergenceReport) -> Option<f64> {
        let mine = self.rounds_to_converge? as f64;
        let theirs = other.rounds_to_converge? as f64;
        if mine == 0.0 {
            return Some(if theirs == 0.0 { 1.0 } else { f64::INFINITY });
        }
        Some(theirs / mine)
    }
}

impl fmt::Display for ConvergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rounds_to_converge {
            Some(r) => write!(
                f,
                "{}: converged at round {} (±{}), stable dev {:.4}, peak {:.4}",
                self.algorithm, r, self.epsilon, self.stable_deviation, self.peak_deviation
            ),
            None => write!(
                f,
                "{}: never converged (±{}), stable dev {:.4}, peak {:.4}",
                self.algorithm, self.epsilon, self.stable_deviation, self.peak_deviation
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(xs: &[f64]) -> Vec<Option<f64>> {
        xs.iter().map(|&x| Some(x)).collect()
    }

    #[test]
    fn converges_at_first_sustained_round() {
        let s = dense(&[5.0, 3.0, 1.0, 0.9, 1.1, 1.0]);
        assert_eq!(rounds_to_converge(&s, 1.0, 0.2, 3), Some(2));
    }

    #[test]
    fn sustain_rejects_transient_touches() {
        let s = dense(&[1.0, 5.0, 1.0, 5.0, 1.0, 1.0, 1.0]);
        assert_eq!(rounds_to_converge(&s, 1.0, 0.1, 3), Some(4));
    }

    #[test]
    fn never_converging_is_none() {
        let s = dense(&[5.0; 20]);
        assert_eq!(rounds_to_converge(&s, 0.0, 0.1, 2), None);
    }

    #[test]
    fn gaps_do_not_break_streaks() {
        let s = vec![Some(9.0), Some(1.0), None, Some(1.0), Some(1.0)];
        assert_eq!(rounds_to_converge(&s, 1.0, 0.1, 3), Some(1));
    }

    #[test]
    fn immediate_convergence_is_round_zero() {
        let s = dense(&[1.0, 1.0, 1.0]);
        assert_eq!(rounds_to_converge(&s, 1.0, 0.1, 2), Some(0));
    }

    #[test]
    fn stable_value_uses_the_tail() {
        let mut xs = vec![Some(0.0); 90];
        xs.extend(vec![Some(10.0); 10]);
        assert_eq!(stable_value(&xs, 0.1), Some(10.0));
        assert_eq!(stable_value(&[], 0.1), None);
    }

    #[test]
    fn report_compares_clean_and_faulty() {
        let clean = dense(&[18.0; 10]);
        let mut faulty_vals = vec![19.2, 19.0, 18.6, 18.3];
        faulty_vals.extend([18.0; 6]);
        let faulty = dense(&faulty_vals);
        let rep = ConvergenceReport::compare("standard", &clean, &faulty, 0.05, 3);
        assert_eq!(rep.rounds_to_converge, Some(4));
        assert!((rep.peak_deviation - 1.2).abs() < 1e-12);
        assert!(rep.stable_deviation < 1e-9);
    }

    #[test]
    fn smoothed_compare_ignores_selection_jitter() {
        // Steady state: small deviations with an occasional 0.5 jump (MNN
        // picking a different sensor every few rounds) after an initial
        // spike. The raw comparison never sustains ε = 0.2; the smoothed
        // one converges once the startup spike leaves the window.
        let clean = dense(&[18.0; 60]);
        let faulty: Vec<Option<f64>> = (0..60)
            .map(|i| {
                if i == 0 {
                    Some(19.2)
                } else if i % 5 == 0 {
                    Some(18.5)
                } else {
                    Some(18.05)
                }
            })
            .collect();
        let raw = ConvergenceReport::compare("mnn", &clean, &faulty, 0.2, 8);
        assert_eq!(raw.rounds_to_converge, None);
        let smooth = ConvergenceReport::compare_smoothed("mnn", &clean, &faulty, 0.2, 8, 8);
        let converged = smooth.rounds_to_converge.expect("smoothed must converge");
        assert!(converged > 0, "spike must delay convergence past round 0");
        // Peak still reports the raw spike.
        assert!((smooth.peak_deviation - 1.2).abs() < 1e-9);
    }

    #[test]
    fn smoothing_does_not_let_settling_cancel_a_spike() {
        // A +1.2 spike followed by compensating negative settling: a signed
        // moving average would dip under ε at round 0; the absolute one
        // must not.
        let clean = dense(&[18.0; 30]);
        let mut vals = vec![19.2, 17.7, 17.7, 17.7, 17.7];
        vals.extend([18.0; 25]);
        let faulty = dense(&vals);
        let smooth = ConvergenceReport::compare_smoothed("hybrid", &clean, &faulty, 0.2, 4, 8);
        assert!(smooth.rounds_to_converge.expect("converges") > 0);
    }

    #[test]
    fn boost_ratio() {
        let fast = ConvergenceReport {
            algorithm: "avoc".into(),
            rounds_to_converge: Some(1),
            stable_deviation: 0.0,
            peak_deviation: 0.1,
            epsilon: 0.05,
        };
        let slow = ConvergenceReport {
            algorithm: "hybrid".into(),
            rounds_to_converge: Some(4),
            ..fast.clone()
        };
        assert_eq!(fast.boost_over(&slow), Some(4.0));
        assert_eq!(slow.boost_over(&fast), Some(0.25));

        let never = ConvergenceReport {
            rounds_to_converge: None,
            ..fast.clone()
        };
        assert_eq!(fast.boost_over(&never), None);

        let instant = ConvergenceReport {
            rounds_to_converge: Some(0),
            ..fast.clone()
        };
        assert_eq!(instant.boost_over(&slow), Some(f64::INFINITY));
        assert_eq!(instant.boost_over(&instant), Some(1.0));
    }

    #[test]
    fn display_mentions_rounds() {
        let rep = ConvergenceReport {
            algorithm: "me".into(),
            rounds_to_converge: Some(2),
            stable_deviation: 0.2,
            peak_deviation: 1.0,
            epsilon: 0.05,
        };
        assert!(rep.to_string().contains("round 2"));
    }
}
