//! # avoc-metrics — evaluation metrics for the AVOC experiments
//!
//! The quantities the paper's evaluation reports:
//!
//! * [`convergence`] — "voting rounds required to converge back to the
//!   baseline" and "how far the new stable value is from the original"
//!   (UC-1 metrics (a) and (b)), plus the convergence-boost ratio behind
//!   the 4× headline claim;
//! * [`series`] — output differencing for Fig. 6-e ("output difference
//!   between voting on the raw values and voting on the error-injected
//!   values");
//! * [`ambiguity`] — "the number of rounds while it is ambiguous which
//!   stack of sensors is closest to the robot" (UC-2, Fig. 7);
//! * [`accuracy`] — RMSE/MAE/bias against the simulators' known ground
//!   truth (the external truth real deployments lack);
//! * [`stats`] — summary statistics;
//! * [`report`] — ASCII tables and line plots for the bench binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod ambiguity;
pub mod convergence;
pub mod report;
pub mod series;
pub mod stats;

pub use accuracy::AccuracyReport;
pub use ambiguity::AmbiguityReport;
pub use convergence::{rounds_to_converge, stable_value, ConvergenceReport};
pub use report::{AsciiPlot, Table};
pub use series::{diff_series, moving_average};
pub use stats::Summary;
