//! ASCII tables and plots for the experiment binaries — the terminal
//! counterpart of the paper's figures and of the Fig. 5 comparison app.

use std::fmt;

/// A simple fixed-width ASCII table.
///
/// # Example
///
/// ```
/// use avoc_metrics::Table;
///
/// let mut t = Table::new(vec!["algorithm".into(), "rounds".into()]);
/// t.row(vec!["avoc".into(), "1".into()]);
/// t.row(vec!["hybrid".into(), "4".into()]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("avoc"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match {} headers",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// A terminal line plot for one or more (gappy) series — the textual
/// stand-in for the paper's figures.
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    title: String,
    width: usize,
    height: usize,
    series: Vec<(char, Vec<Option<f64>>)>,
}

impl AsciiPlot {
    /// Creates a plot canvas.
    ///
    /// # Panics
    ///
    /// Panics when `width` or `height` is zero.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "plot dimensions must be positive");
        AsciiPlot {
            title: title.into(),
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Adds a series drawn with the given glyph.
    pub fn series(&mut self, glyph: char, data: Vec<Option<f64>>) -> &mut Self {
        self.series.push((glyph, data));
        self
    }

    /// Renders the plot.
    pub fn render(&self) -> String {
        let values: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, s)| s.iter().flatten().copied())
            .collect();
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        if values.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = if (hi - lo).abs() < 1e-12 {
            1.0
        } else {
            hi - lo
        };
        let max_len = self.series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (glyph, data) in &self.series {
            for (i, v) in data.iter().enumerate() {
                let Some(v) = v else { continue };
                let x = if max_len <= 1 {
                    0
                } else {
                    i * (self.width - 1) / (max_len - 1)
                };
                let yf = (v - lo) / span;
                let y = ((1.0 - yf) * (self.height - 1) as f64).round() as usize;
                grid[y.min(self.height - 1)][x.min(self.width - 1)] = *glyph;
            }
        }
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                format!("{hi:>10.2} ")
            } else if r == self.height - 1 {
                format!("{lo:>10.2} ")
            } else {
                " ".repeat(11)
            };
            out.push_str(&label);
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(11));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_alignment() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["avoc".into(), "1".into()]);
        t.row(vec!["module-elimination".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("| name"));
        assert!(s.contains("module-elimination"));
        // All lines equally wide.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec!["x".into()]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.to_string().contains("| x |"));
    }

    #[test]
    fn plot_renders_extremes() {
        let mut p = AsciiPlot::new("test", 20, 5);
        p.series('*', (0..20).map(|i| Some(i as f64)).collect());
        let s = p.render();
        assert!(s.contains("== test =="));
        assert!(s.contains("19.00"));
        assert!(s.contains("0.00"));
        assert!(s.contains('*'));
    }

    #[test]
    fn plot_handles_empty_and_flat_series() {
        let p = AsciiPlot::new("empty", 10, 3);
        assert!(p.render().contains("(no data)"));

        let mut p = AsciiPlot::new("flat", 10, 3);
        p.series('x', vec![Some(5.0); 10]);
        let s = p.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn plot_skips_gaps() {
        let mut p = AsciiPlot::new("gaps", 10, 3);
        p.series('o', vec![Some(1.0), None, Some(2.0)]);
        let s = p.render();
        assert_eq!(s.matches('o').count(), 2);
    }
}
