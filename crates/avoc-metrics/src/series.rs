//! Series operations: differencing (Fig. 6-e) and smoothing.

/// Pointwise difference `a - b`, `None` wherever either side is missing.
///
/// This is exactly the Fig. 6-e quantity: the per-round difference between
/// the voting output on error-injected data (`a`) and on the raw reference
/// data (`b`) — zero means the voter fully masked the fault.
///
/// # Panics
///
/// Panics when the series lengths differ.
pub fn diff_series(a: &[Option<f64>], b: &[Option<f64>]) -> Vec<Option<f64>> {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| match (x, y) {
            (Some(x), Some(y)) => Some(x - y),
            _ => None,
        })
        .collect()
}

/// Centred-window moving average with the given window size (gaps skipped;
/// a window with no samples yields `None`).
///
/// # Panics
///
/// Panics when `window == 0`.
pub fn moving_average(series: &[Option<f64>], window: usize) -> Vec<Option<f64>> {
    assert!(window > 0, "window must be positive");
    let half = window / 2;
    (0..series.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(series.len());
            let xs: Vec<f64> = series[lo..hi].iter().flatten().copied().collect();
            if xs.is_empty() {
                None
            } else {
                Some(xs.iter().sum::<f64>() / xs.len() as f64)
            }
        })
        .collect()
}

/// Largest absolute value of a (gappy) series; `None` when all-missing.
pub fn max_abs(series: &[Option<f64>]) -> Option<f64> {
    series
        .iter()
        .flatten()
        .map(|v| v.abs())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_matches_pointwise() {
        let a = [Some(2.0), Some(3.0), None];
        let b = [Some(1.0), None, Some(5.0)];
        assert_eq!(diff_series(&a, &b), vec![Some(1.0), None, None]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn diff_rejects_mismatched_lengths() {
        let _ = diff_series(&[Some(1.0)], &[]);
    }

    #[test]
    fn moving_average_smooths() {
        let noisy: Vec<Option<f64>> = (0..100)
            .map(|i| Some(10.0 + if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let smooth = moving_average(&noisy, 10);
        for v in smooth.iter().skip(5).take(90) {
            assert!((v.unwrap() - 10.0).abs() < 0.2);
        }
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let s = [Some(1.0), None, Some(3.0)];
        assert_eq!(moving_average(&s, 1), s.to_vec());
    }

    #[test]
    fn moving_average_bridges_gaps() {
        let s = [Some(1.0), None, Some(3.0)];
        let out = moving_average(&s, 3);
        assert_eq!(out[1], Some(2.0));
    }

    #[test]
    fn max_abs_finds_extremes() {
        assert_eq!(max_abs(&[Some(-3.0), Some(2.0), None]), Some(3.0));
        assert_eq!(max_abs(&[None]), None);
    }
}
