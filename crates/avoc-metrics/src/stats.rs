//! Summary statistics over output series.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary of a numeric series (gaps skipped).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of non-missing samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
}

impl Summary {
    /// Summarises a series, skipping `None` gaps. Returns `None` when no
    /// samples remain.
    pub fn of(series: &[Option<f64>]) -> Option<Summary> {
        let xs: Vec<f64> = series.iter().flatten().copied().collect();
        Self::of_values(&xs)
    }

    /// Summarises a dense series. Returns `None` when empty.
    pub fn of_values(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        Some(Summary {
            count: xs.len(),
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            median,
        })
    }

    /// The `p`-th percentile (0–100) of a series via nearest-rank.
    ///
    /// Returns `None` for an empty series.
    pub fn percentile(series: &[f64], p: f64) -> Option<f64> {
        if series.is_empty() {
            return None;
        }
        let mut sorted = series.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        Some(sorted[rank])
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} med={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.median, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of_values(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn summary_skips_gaps() {
        let s = Summary::of(&[Some(1.0), None, Some(3.0)]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[None, None]).is_none());
        assert!(Summary::of_values(&[]).is_none());
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        let s = Summary::of_values(&[5.0; 10]).unwrap();
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn percentiles() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(Summary::percentile(&xs, 0.0), Some(0.0));
        assert_eq!(Summary::percentile(&xs, 50.0), Some(50.0));
        assert_eq!(Summary::percentile(&xs, 100.0), Some(100.0));
        assert_eq!(Summary::percentile(&[], 50.0), None);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of_values(&[1.0, 2.0]).unwrap();
        assert!(s.to_string().contains("n=2"));
    }
}
