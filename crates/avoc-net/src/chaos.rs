//! A deterministic fault-injection TCP proxy — the chaos harness.
//!
//! Sits between a client and a daemon and injects the network's four
//! canonical misbehaviours: **connection resets**, **stalls**, **partial
//! writes**, and **byte corruption**. Every fault is scheduled from the
//! connection index and a fixed seed, so a failing chaos test replays
//! byte-for-byte — "deterministic chaos" in the tradition of seeded fault
//! injectors (the simulator's `FaultInjector` does the same for sensor
//! values; this module does it for the transport under them).
//!
//! Faults are applied to the client→server direction (the readings path,
//! where the recovery protocol has to work hardest); the server→client
//! direction is forwarded verbatim, except that a [`Fault::Reset`] severs
//! both. Each accepted connection takes the next fault from the configured
//! schedule, cycling — so a client that reconnects after a reset meets the
//! next fault in line.
//!
//! # Example
//!
//! ```no_run
//! use avoc_net::chaos::{ChaosConfig, ChaosProxy, Fault};
//!
//! let config = ChaosConfig {
//!     seed: 7,
//!     faults: vec![Fault::Reset { after_bytes: 512 }, Fault::None],
//! };
//! let proxy = ChaosProxy::start("127.0.0.1:9000".parse().unwrap(), config)?;
//! // Point the client at proxy.local_addr() instead of the daemon ...
//! proxy.stop();
//! # Ok::<(), std::io::Error>(())
//! ```

use avoc_obs::{Counter, Registry};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One connection's scheduled misbehaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward traffic untouched.
    None,
    /// Forward writes in deterministic dribbles of at most `max_chunk`
    /// bytes (never aligned to frame boundaries), exercising the decoder's
    /// partial-frame reassembly.
    Chop {
        /// Largest forwarded piece, in bytes (at least 1).
        max_chunk: usize,
    },
    /// Freeze the stream for `millis` once `after_bytes` client bytes have
    /// been forwarded, then continue normally.
    Stall {
        /// Bytes forwarded before the stall.
        after_bytes: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Sever the connection (both directions) after forwarding exactly
    /// `after_bytes` client bytes.
    Reset {
        /// Bytes forwarded before the cut.
        after_bytes: u64,
    },
    /// XOR-flip one bit of the client byte at absolute stream offset
    /// `at_byte`, leaving everything else intact.
    Corrupt {
        /// Zero-based offset of the corrupted byte in the client→server
        /// stream.
        at_byte: u64,
    },
}

/// Proxy configuration: a seed and a per-connection fault schedule.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seeds the chop-size stream; two proxies with the same seed and
    /// schedule inject byte-identical faults.
    pub seed: u64,
    /// Connection `k` suffers `faults[k % faults.len()]`. An empty schedule
    /// means every connection is [`Fault::None`].
    pub faults: Vec<Fault>,
}

/// A running fault-injection proxy. Dropping it without [`ChaosProxy::stop`]
/// leaves its threads serving until the process exits — tests should stop it.
#[derive(Debug)]
pub struct ChaosProxy {
    local_addr: SocketAddr,
    running: Arc<AtomicBool>,
    accept_join: JoinHandle<()>,
    accepted: Arc<AtomicUsize>,
    /// Clones of every live socket, so `stop` can shut them down and
    /// unblock the pump threads.
    live: Arc<Mutex<Vec<TcpStream>>>,
}

/// Per-kind counters of faults that actually fired (not merely scheduled):
/// a `Reset` only counts once it severs, a `Stall` once it sleeps, a
/// `Corrupt` once a bit flips, a `Chop` once the first dribbled write
/// happens. Registered as `avoc_chaos_faults_total{kind="..."}`.
#[derive(Debug, Clone)]
pub struct ChaosMetrics {
    reset: Counter,
    stall: Counter,
    chop: Counter,
    corrupt: Counter,
}

impl ChaosMetrics {
    /// Registers (or finds) the fault counters on `registry`.
    pub fn register(registry: &Registry) -> Self {
        let kind = |k: &str| {
            registry.counter_with(
                "avoc_chaos_faults_total",
                "Network faults injected by the chaos proxy, by kind.",
                &[("kind", k)],
            )
        };
        ChaosMetrics {
            reset: kind("reset"),
            stall: kind("stall"),
            chop: kind("chop"),
            corrupt: kind("corrupt"),
        }
    }
}

/// splitmix64 — the deterministic byte-stream generator behind `Chop`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaosProxy {
    /// Binds an ephemeral local port and proxies every accepted connection
    /// to `upstream`, injecting the configured faults.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(upstream: SocketAddr, config: ChaosConfig) -> io::Result<ChaosProxy> {
        ChaosProxy::start_inner(upstream, config, None)
    }

    /// As [`ChaosProxy::start`], additionally counting every fault that
    /// fires into `registry` as `avoc_chaos_faults_total{kind="..."}`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start_instrumented(
        upstream: SocketAddr,
        config: ChaosConfig,
        registry: &Registry,
    ) -> io::Result<ChaosProxy> {
        ChaosProxy::start_inner(upstream, config, Some(ChaosMetrics::register(registry)))
    }

    fn start_inner(
        upstream: SocketAddr,
        config: ChaosConfig,
        metrics: Option<ChaosMetrics>,
    ) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let accepted = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(Mutex::new(Vec::new()));
        let accept_join = {
            let running = Arc::clone(&running);
            let accepted = Arc::clone(&accepted);
            let live = Arc::clone(&live);
            std::thread::Builder::new()
                .name("avoc-chaos-accept".into())
                .spawn(move || {
                    accept_loop(listener, upstream, config, running, accepted, live, metrics)
                })
                .expect("spawn chaos accept loop")
        };
        Ok(ChaosProxy {
            local_addr,
            running,
            accept_join,
            accepted,
            live,
        })
    }

    /// The address clients should connect to instead of the daemon.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections accepted so far (each consumed one schedule slot).
    pub fn connections(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Stops accepting, severs every proxied connection and joins the
    /// worker threads.
    pub fn stop(self) {
        self.running.store(false, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        for s in self.live.lock().expect("chaos live-socket lock").drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        let _ = self.accept_join.join();
    }
}

#[allow(clippy::needless_pass_by_value, clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    config: ChaosConfig,
    running: Arc<AtomicBool>,
    accepted: Arc<AtomicUsize>,
    live: Arc<Mutex<Vec<TcpStream>>>,
    metrics: Option<ChaosMetrics>,
) {
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    while running.load(Ordering::SeqCst) {
        let Ok((client, _)) = listener.accept() else {
            break;
        };
        if !running.load(Ordering::SeqCst) {
            break; // the stop() wake-up connection
        }
        let index = accepted.fetch_add(1, Ordering::SeqCst);
        let fault = if config.faults.is_empty() {
            Fault::None
        } else {
            config.faults[index % config.faults.len()]
        };
        let Ok(server) = TcpStream::connect(upstream) else {
            // Upstream down (e.g. mid kill/restart): drop the client so it
            // retries against a later incarnation.
            continue;
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        {
            let mut reg = live.lock().expect("chaos live-socket lock");
            if let (Ok(c), Ok(s)) = (client.try_clone(), server.try_clone()) {
                reg.push(c);
                reg.push(s);
            }
        }
        let seed = config.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let (c2s_from, c2s_to) = (client.try_clone(), server.try_clone());
        let pump_metrics = metrics.clone();
        pumps.push(std::thread::spawn(move || {
            if let (Ok(from), Ok(to)) = (c2s_from, c2s_to) {
                pump_faulted(from, to, fault, seed, pump_metrics);
            }
        }));
        pumps.push(std::thread::spawn(move || pump_clean(server, client)));
    }
    for p in pumps {
        let _ = p.join();
    }
}

/// Server→client: verbatim forwarding; EOF or error on either side severs
/// the other so its pump exits too.
fn pump_clean(mut from: TcpStream, mut to: TcpStream) {
    // One buffer for the lifetime of the pump, allocated up front — the
    // forwarding loop itself never touches the allocator. The 4096-byte
    // read granularity is part of the deterministic fault schedule; keep
    // it in sync with the chop arithmetic below.
    let mut buf = vec![0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

/// Client→server: forwarding with the connection's scheduled fault.
fn pump_faulted(
    mut from: TcpStream,
    mut to: TcpStream,
    fault: Fault,
    seed: u64,
    metrics: Option<ChaosMetrics>,
) {
    let mut rng = seed;
    let mut forwarded: u64 = 0;
    let mut stalled = false;
    let mut chopped = false;
    // As in `pump_clean`: one reused buffer per pump thread, and the
    // 1024-byte read granularity is load-bearing for determinism (fault
    // offsets are computed against these read boundaries).
    let mut buf = vec![0u8; 1024];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let end = forwarded + n as u64;
        if let Fault::Corrupt { at_byte } = fault {
            if at_byte >= forwarded && at_byte < end {
                buf[(at_byte - forwarded) as usize] ^= 0x01;
                if let Some(m) = &metrics {
                    m.corrupt.inc();
                }
            }
        }
        if let Fault::Reset { after_bytes } = fault {
            if end > after_bytes {
                // Forward the prefix up to the cut, then sever both ways.
                let keep = after_bytes.saturating_sub(forwarded) as usize;
                let _ = to.write_all(&buf[..keep]);
                let _ = to.shutdown(Shutdown::Both);
                let _ = from.shutdown(Shutdown::Both);
                if let Some(m) = &metrics {
                    m.reset.inc();
                }
                return;
            }
        }
        if let Fault::Stall {
            after_bytes,
            millis,
        } = fault
        {
            if !stalled && end > after_bytes {
                stalled = true;
                if let Some(m) = &metrics {
                    m.stall.inc();
                }
                std::thread::sleep(Duration::from_millis(millis));
            }
        }
        let ok = match fault {
            Fault::Chop { max_chunk } => {
                if !chopped {
                    chopped = true;
                    if let Some(m) = &metrics {
                        m.chop.inc();
                    }
                }
                let max_chunk = max_chunk.max(1);
                let mut rest = &buf[..n];
                let mut ok = true;
                while !rest.is_empty() {
                    let take = (splitmix64(&mut rng) as usize % max_chunk + 1).min(rest.len());
                    if to.write_all(&rest[..take]).is_err() {
                        ok = false;
                        break;
                    }
                    // A write boundary only forces a segment boundary if the
                    // kernel doesn't coalesce; with nodelay set and a yield
                    // between pieces the receiver sees genuinely partial
                    // frames.
                    std::thread::yield_now();
                    rest = &rest[take..];
                }
                ok
            }
            _ => to.write_all(&buf[..n]).is_ok(),
        };
        if !ok {
            break;
        }
        forwarded = end;
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An echo server for proxy tests.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            // Serve a bounded number of connections, then exit.
            for stream in listener.incoming().take(4).flatten() {
                std::thread::spawn(move || {
                    let mut stream = stream;
                    let mut buf = [0u8; 1024];
                    loop {
                        match stream.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                if stream.write_all(&buf[..n]).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, join)
    }

    fn send_recv(addr: SocketAddr, payload: &[u8]) -> io::Result<Vec<u8>> {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_secs(5)))?;
        s.write_all(payload)?;
        let mut got = vec![0u8; payload.len()];
        s.read_exact(&mut got)?;
        Ok(got)
    }

    #[test]
    fn clean_and_chopped_connections_pass_traffic_through() {
        let (addr, _join) = echo_server();
        let proxy = ChaosProxy::start(
            addr,
            ChaosConfig {
                seed: 1,
                faults: vec![Fault::None, Fault::Chop { max_chunk: 3 }],
            },
        )
        .unwrap();
        let payload: Vec<u8> = (0..=255u8).collect();
        // Connection 0: None. Connection 1: Chop. Both must be lossless.
        assert_eq!(send_recv(proxy.local_addr(), &payload).unwrap(), payload);
        assert_eq!(send_recv(proxy.local_addr(), &payload).unwrap(), payload);
        assert_eq!(proxy.connections(), 2);
        proxy.stop();
    }

    #[test]
    fn reset_severs_after_the_configured_bytes() {
        let (addr, _join) = echo_server();
        let proxy = ChaosProxy::start(
            addr,
            ChaosConfig {
                seed: 2,
                faults: vec![Fault::Reset { after_bytes: 8 }],
            },
        )
        .unwrap();
        let mut s = TcpStream::connect(proxy.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(&[7u8; 64]).unwrap();
        // At most the 8 pre-cut bytes echo back before EOF.
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match s.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
            }
        }
        assert!(got.len() <= 8, "read {} bytes past the cut", got.len());
        proxy.stop();
    }

    #[test]
    fn instrumented_proxy_counts_fired_faults_by_kind() {
        let (addr, _join) = echo_server();
        let registry = Registry::new();
        let proxy = ChaosProxy::start_instrumented(
            addr,
            ChaosConfig {
                seed: 9,
                faults: vec![Fault::Corrupt { at_byte: 2 }, Fault::Chop { max_chunk: 3 }],
            },
            &registry,
        )
        .unwrap();
        let payload = [0u8; 16];
        let _ = send_recv(proxy.local_addr(), &payload).unwrap();
        let echoed: Vec<u8> = (0..=255u8).collect();
        assert_eq!(send_recv(proxy.local_addr(), &echoed).unwrap(), echoed);
        proxy.stop();
        let text = registry.render_prometheus();
        assert!(text.contains("avoc_chaos_faults_total{kind=\"corrupt\"} 1"));
        assert!(text.contains("avoc_chaos_faults_total{kind=\"chop\"} 1"));
        // Scheduled-but-never-fired kinds stay at zero.
        assert!(text.contains("avoc_chaos_faults_total{kind=\"reset\"} 0"));
        assert!(text.contains("avoc_chaos_faults_total{kind=\"stall\"} 0"));
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let (addr, _join) = echo_server();
        let proxy = ChaosProxy::start(
            addr,
            ChaosConfig {
                seed: 3,
                faults: vec![Fault::Corrupt { at_byte: 5 }],
            },
        )
        .unwrap();
        let payload = [0u8; 16];
        let got = send_recv(proxy.local_addr(), &payload).unwrap();
        let diffs: Vec<usize> = (0..16).filter(|&i| got[i] != payload[i]).collect();
        assert_eq!(diffs, vec![5]);
        assert_eq!(got[5], 0x01);
        proxy.stop();
    }
}
