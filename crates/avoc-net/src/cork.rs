//! Syscall-coalescing egress: the corked writer.
//!
//! Every sender in the pipeline used to issue one `write_all` per frame —
//! at daemon scale the serve path is bound by those syscalls, not by
//! fusion. [`CorkedWriter`] restores the batching the kernel can't do for
//! us: frames are encoded (allocation-free, via
//! [`Message::encode_into`]) into one reusable buffer and the whole
//! backlog is flushed with as few `write` calls as the socket accepts.
//!
//! The policy is adaptive, chosen by the *caller's* queue state rather
//! than a timer: when the outbound queue is empty the sender flushes
//! immediately (an interactive single frame keeps its latency), and under
//! load it corks frames until [`CorkedWriter::is_corked_full`] trips or
//! the queue drains — so coalescing only ever happens when there is a
//! backlog to coalesce. No frame waits on a clock tick.

use crate::message::Message;
use avoc_obs::{Counter, Registry};
use bytes::{Buf, BytesMut};
use std::io::{self, Write};

/// Default cork threshold: flush once this many bytes are pending even if
/// the outbound queue still has frames. 64 KiB comfortably exceeds a
/// loopback send buffer slice while bounding sender-side memory per
/// connection.
pub const DEFAULT_CORK_LIMIT: usize = 64 * 1024;

/// Cumulative I/O counters for one [`CorkedWriter`] — the instrumentation
/// `bench_serve` and the service counters read to report frames per flush
/// and syscalls per reading.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Frames pushed (encoded into the cork buffer).
    pub frames: u64,
    /// Completed flushes that moved at least one byte.
    pub flushes: u64,
    /// `write` syscalls issued (a flush needs more than one only when the
    /// socket accepts a short write).
    pub writes: u64,
    /// Payload bytes handed to the socket.
    pub bytes: u64,
}

/// Live registry handles mirroring [`WriterStats`], so corked-writer I/O
/// shows up on a scrape while the connection is still alive. Counters are
/// relaxed atomics: attaching metrics adds no locks or allocations to the
/// push/flush paths.
#[derive(Debug, Clone)]
pub struct CorkMetrics {
    frames: Counter,
    flushes: Counter,
    writes: Counter,
    bytes: Counter,
}

impl CorkMetrics {
    /// Builds the handle set from existing counter cells — for callers (the
    /// serve daemon) that already own registered counters under their own
    /// names and want writers to feed those cells directly.
    pub fn from_parts(frames: Counter, flushes: Counter, writes: Counter, bytes: Counter) -> Self {
        CorkMetrics {
            frames,
            flushes,
            writes,
            bytes,
        }
    }

    /// Registers (or finds) the four writer counters under the standard
    /// `avoc_net_*` names with `labels` (idempotent, so every connection of
    /// one daemon shares the same cells).
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        CorkMetrics {
            frames: registry.counter_with(
                "avoc_net_frames_sent_total",
                "Frames encoded into cork buffers.",
                labels,
            ),
            flushes: registry.counter_with(
                "avoc_net_writer_flushes_total",
                "Completed corked-writer flushes.",
                labels,
            ),
            writes: registry.counter_with(
                "avoc_net_writer_writes_total",
                "write(2) calls issued by corked writers.",
                labels,
            ),
            bytes: registry.counter_with(
                "avoc_net_bytes_sent_total",
                "Payload bytes handed to sockets by corked writers.",
                labels,
            ),
        }
    }
}

/// A per-connection corked writer: encode many frames, write once.
///
/// [`push`](CorkedWriter::push) never touches the socket;
/// [`flush`](CorkedWriter::flush) drains everything pending. A failed
/// flush keeps the unwritten suffix buffered (the written prefix is
/// consumed), so callers with transient errors can retry without
/// duplicating bytes on the wire.
#[derive(Debug)]
pub struct CorkedWriter<W: Write> {
    inner: W,
    buf: BytesMut,
    cork_limit: usize,
    stats: WriterStats,
    metrics: Option<CorkMetrics>,
}

impl<W: Write> CorkedWriter<W> {
    /// Wraps `inner` with the [`DEFAULT_CORK_LIMIT`].
    pub fn new(inner: W) -> Self {
        CorkedWriter::with_cork_limit(inner, DEFAULT_CORK_LIMIT)
    }

    /// Wraps `inner`, flushing whenever more than `cork_limit` bytes are
    /// pending.
    pub fn with_cork_limit(inner: W, cork_limit: usize) -> Self {
        CorkedWriter {
            inner,
            buf: BytesMut::with_capacity(cork_limit.min(DEFAULT_CORK_LIMIT)),
            cork_limit,
            stats: WriterStats::default(),
            metrics: None,
        }
    }

    /// Mirrors this writer's counters into live registry cells (in addition
    /// to the local [`WriterStats`]).
    pub fn set_metrics(&mut self, metrics: CorkMetrics) {
        self.metrics = Some(metrics);
    }

    /// Encodes one frame into the cork buffer. No I/O happens here.
    pub fn push(&mut self, msg: &Message) {
        msg.encode_into(&mut self.buf);
        self.stats.frames += 1;
        if let Some(m) = &self.metrics {
            m.frames.inc();
        }
    }

    /// Whether the pending bytes have reached the cork threshold — the
    /// sender should flush before pushing more.
    pub fn is_corked_full(&self) -> bool {
        self.buf.len() >= self.cork_limit
    }

    /// Whether any encoded bytes await a flush.
    pub fn has_pending(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Bytes currently corked.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> WriterStats {
        self.stats
    }

    /// The wrapped writer (e.g. to set socket deadlines).
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Mutable access to the wrapped writer.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }

    /// Writes every pending byte to the socket, issuing as few `write`
    /// calls as it accepts. A no-op (no syscall) when nothing is pending.
    ///
    /// # Errors
    ///
    /// Propagates the first write error. The written prefix is consumed
    /// from the buffer before returning, so a retrying caller resumes at
    /// the exact unwritten byte; `Ok(0)` surfaces as
    /// [`io::ErrorKind::WriteZero`].
    pub fn flush(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        while !self.buf.is_empty() {
            match self.inner.write(&self.buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer accepted zero bytes",
                    ));
                }
                Ok(n) => {
                    self.stats.writes += 1;
                    self.stats.bytes += n as u64;
                    if let Some(m) = &self.metrics {
                        m.writes.inc();
                        m.bytes.add(n as u64);
                    }
                    self.buf.advance(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        // Fully drained: reset the cursor so the allocation is reused
        // instead of compacted on the next push.
        self.buf.clear();
        self.stats.flushes += 1;
        if let Some(m) = &self.metrics {
            m.flushes.inc();
        }
        Ok(())
    }

    /// [`CorkedWriter::flush`] for non-blocking sockets: drains as much as
    /// the socket accepts *right now* and reports [`FlushOutcome::Blocked`]
    /// instead of an error when the kernel pushes back (`EWOULDBLOCK`). The
    /// unwritten suffix stays buffered for the next readiness event, exactly
    /// like a failed blocking flush.
    ///
    /// # Errors
    ///
    /// Propagates real write errors (peer reset, `Ok(0)` as `WriteZero`);
    /// `WouldBlock` is *not* an error in this mode.
    pub fn flush_nonblocking(&mut self) -> io::Result<FlushOutcome> {
        if self.buf.is_empty() {
            return Ok(FlushOutcome::Drained);
        }
        while !self.buf.is_empty() {
            match self.inner.write(&self.buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer accepted zero bytes",
                    ));
                }
                Ok(n) => {
                    self.stats.writes += 1;
                    self.stats.bytes += n as u64;
                    if let Some(m) = &self.metrics {
                        m.writes.inc();
                        m.bytes.add(n as u64);
                    }
                    self.buf.advance(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(FlushOutcome::Blocked);
                }
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.stats.flushes += 1;
        if let Some(m) = &self.metrics {
            m.flushes.inc();
        }
        Ok(FlushOutcome::Drained)
    }
}

/// What [`CorkedWriter::flush_nonblocking`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushOutcome {
    /// Every pending byte reached the socket.
    Drained,
    /// The socket stopped accepting bytes; the suffix stays buffered and
    /// the caller should re-arm write interest.
    Blocked,
}

#[cfg(test)]
mod tests {
    use super::*;
    use avoc_core::ModuleId;
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    fn sample_frames() -> Vec<Message> {
        vec![
            Message::Reading {
                module: ModuleId::new(1),
                round: 7,
                value: 18.5,
            },
            Message::SessionResult {
                session: 3,
                round: 9,
                value: None,
                voted: false,
            },
            Message::Error {
                session: 4,
                message: "boom".into(),
            },
            Message::Shutdown,
        ]
    }

    #[test]
    fn coalesced_bytes_match_per_frame_encoding() {
        let mut w = CorkedWriter::new(Vec::new());
        let mut expected = Vec::new();
        for msg in sample_frames() {
            w.push(&msg);
            expected.extend_from_slice(&msg.encode());
        }
        assert!(w.has_pending());
        w.flush().unwrap();
        assert!(!w.has_pending());
        assert_eq!(w.get_ref().as_slice(), expected.as_slice());
    }

    #[test]
    fn stats_count_frames_flushes_and_writes() {
        let mut w = CorkedWriter::new(Vec::new());
        w.flush().unwrap(); // empty flush: no syscall, no counter
        assert_eq!(w.stats(), WriterStats::default());
        for msg in sample_frames() {
            w.push(&msg);
        }
        let pending = w.pending_bytes() as u64;
        w.flush().unwrap();
        let stats = w.stats();
        assert_eq!(stats.frames, 4);
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.writes, 1, "Vec accepts everything in one write");
        assert_eq!(stats.bytes, pending);
    }

    #[test]
    fn registry_metrics_mirror_local_stats() {
        let registry = Registry::new();
        let mut w = CorkedWriter::new(Vec::new());
        w.set_metrics(CorkMetrics::register(&registry, &[("shard", "0")]));
        for msg in sample_frames() {
            w.push(&msg);
        }
        w.flush().unwrap();
        let stats = w.stats();
        let text = registry.render_prometheus();
        assert!(text.contains(&format!(
            "avoc_net_frames_sent_total{{shard=\"0\"}} {}",
            stats.frames
        )));
        assert!(text.contains(&format!(
            "avoc_net_writer_flushes_total{{shard=\"0\"}} {}",
            stats.flushes
        )));
        assert!(text.contains(&format!(
            "avoc_net_bytes_sent_total{{shard=\"0\"}} {}",
            stats.bytes
        )));
        // A second writer with the same labels lands on the same cells.
        let mut w2 = CorkedWriter::new(Vec::new());
        w2.set_metrics(CorkMetrics::register(&registry, &[("shard", "0")]));
        w2.push(&Message::Shutdown);
        w2.flush().unwrap();
        assert!(registry.render_prometheus().contains(&format!(
            "avoc_net_frames_sent_total{{shard=\"0\"}} {}",
            stats.frames + 1
        )));
    }

    /// A writer that accepts at most `cap` bytes per call and fails on the
    /// calls whose index is in `fail_on`, for exercising short writes and
    /// retry-after-error.
    struct Choppy {
        out: Vec<u8>,
        cap: usize,
        calls: usize,
        fail_on: Vec<usize>,
    }

    impl Write for Choppy {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            let call = self.calls;
            self.calls += 1;
            if self.fail_on.contains(&call) {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "wedged"));
            }
            let n = data.len().min(self.cap);
            self.out.extend_from_slice(&data[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_drain_fully_in_one_flush() {
        let mut w = CorkedWriter::new(Choppy {
            out: Vec::new(),
            cap: 7,
            calls: 0,
            fail_on: vec![],
        });
        let mut expected = Vec::new();
        for msg in sample_frames() {
            w.push(&msg);
            expected.extend_from_slice(&msg.encode());
        }
        w.flush().unwrap();
        assert_eq!(w.get_ref().out, expected);
        let stats = w.stats();
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.writes as usize, expected.len().div_ceil(7));
    }

    #[test]
    fn failed_flush_keeps_the_unwritten_suffix_for_retry() {
        let mut w = CorkedWriter::new(Choppy {
            out: Vec::new(),
            cap: 5,
            calls: 0,
            fail_on: vec![2],
        });
        let mut expected = Vec::new();
        for msg in sample_frames() {
            w.push(&msg);
            expected.extend_from_slice(&msg.encode());
        }
        let err = w.flush().expect_err("third write is wedged");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(w.has_pending(), "unwritten suffix stays buffered");
        assert_eq!(w.get_ref().out, expected[..10].to_vec());
        // The retry resumes at byte 10 — nothing duplicated on the wire.
        w.flush().unwrap();
        assert_eq!(w.get_ref().out, expected);
        assert_eq!(w.stats().flushes, 1, "only the completed flush counts");
    }

    #[test]
    fn nonblocking_flush_parks_on_wouldblock_and_resumes() {
        let mut w = CorkedWriter::new(Choppy {
            out: Vec::new(),
            cap: 5,
            calls: 0,
            fail_on: vec![2],
        });
        let mut expected = Vec::new();
        for msg in sample_frames() {
            w.push(&msg);
            expected.extend_from_slice(&msg.encode());
        }
        // Third write reports WouldBlock: not an error in this mode, the
        // suffix stays corked for the next readiness event.
        assert_eq!(w.flush_nonblocking().unwrap(), FlushOutcome::Blocked);
        assert!(w.has_pending());
        assert_eq!(w.get_ref().out, expected[..10].to_vec());
        assert_eq!(w.stats().flushes, 0, "a parked flush is not complete");
        // Readiness: the retry resumes at byte 10 and drains.
        assert_eq!(w.flush_nonblocking().unwrap(), FlushOutcome::Drained);
        assert_eq!(w.get_ref().out, expected);
        assert_eq!(w.stats().flushes, 1);
        // Empty buffer: drained without a syscall.
        let calls = w.get_ref().calls;
        assert_eq!(w.flush_nonblocking().unwrap(), FlushOutcome::Drained);
        assert_eq!(w.get_ref().calls, calls);
    }

    #[test]
    fn wedged_peer_surfaces_the_socket_write_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        // Accept but never read, so kernel buffers eventually fill.
        let (_peer, _) = listener.accept().unwrap();
        stream
            .set_write_timeout(Some(Duration::from_millis(50)))
            .unwrap();

        let mut w = CorkedWriter::new(stream);
        let big = Message::Error {
            session: 1,
            message: "x".repeat(64 * 1024),
        };
        // ~16 MiB corked: far beyond any default socket buffer.
        for _ in 0..256 {
            w.push(&big);
        }
        let start = Instant::now();
        let err = w.flush().expect_err("peer never reads");
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "unexpected error kind {:?}",
            err.kind()
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline must fire long before a blocking write would return"
        );
        assert!(w.has_pending(), "the wedged suffix stays buffered");
    }
}
