//! The edge voter service: the full Fig. 1 pipeline, VDX-configured.
//!
//! "We proposed voting definition format VDX that can be used to describe a
//! voting procedure to a compatible voter service running on an edge node"
//! (§8) — [`EdgeVoter`] is that service: it takes a VDX document, spawns one
//! feeder thread per sensor (each speaking the wire protocol), assembles
//! rounds in a [`SensorHub`] and fuses them on a [`SinkNode`].

use crate::hub::SensorHub;
use crate::message::Message;
use crate::sink::{SinkNode, SinkOutput};
use crate::tcp::{SensorClient, TcpHub};
use avoc_core::ModuleId;
use avoc_sim::RecordedTrace;
use avoc_vdx::{build_engine, VdxError, VdxSpec};
use crossbeam::channel;

/// Capacity of the feeder → hub wire channel. Trace replays are bursty —
/// every feeder pushes as fast as it can — so the channel is bounded to
/// backpressure feeders once the hub falls behind, instead of buffering an
/// entire trace. Entries are multi-frame chunks of up to
/// [`FEEDER_CHUNK_BYTES`], so 256 slots still bound memory to ~1 MiB.
const WIRE_CHANNEL_CAPACITY: usize = 256;

/// Feeders encode frames allocation-free into a reused scratch buffer and
/// ship it once this many bytes accumulate (~160 frames), so the
/// per-reading cost is one `Vec` per chunk instead of two allocations per
/// frame.
const FEEDER_CHUNK_BYTES: usize = 4096;

/// Capacity of the hub → sink and sink → collector round channels. Rounds
/// are produced at most once per `expected.len()` frames, so a much smaller
/// buffer than [`WIRE_CHANNEL_CAPACITY`] already decouples voting latency
/// spikes from round assembly without unbounded growth.
const ROUND_CHANNEL_CAPACITY: usize = 64;

/// A VDX-configured edge voting service.
///
/// # Example
///
/// ```
/// use avoc_net::EdgeVoter;
/// use avoc_sim::LightScenario;
/// use avoc_vdx::VdxSpec;
///
/// let trace = LightScenario::new(5, 20, 3).generate();
/// let outputs = EdgeVoter::new(VdxSpec::avoc())?.run_trace(&trace);
/// assert_eq!(outputs.len(), 20);
/// assert!(outputs.iter().all(|o| o.result.is_ok()));
/// # Ok::<(), avoc_vdx::VdxError>(())
/// ```
#[derive(Debug)]
pub struct EdgeVoter {
    spec: VdxSpec,
}

impl EdgeVoter {
    /// Creates the service, validating the spec eagerly.
    ///
    /// # Errors
    ///
    /// Propagates [`VdxSpec::validate`] failures.
    pub fn new(spec: VdxSpec) -> Result<Self, VdxError> {
        spec.validate()?;
        Ok(EdgeVoter { spec })
    }

    /// The service's VDX definition.
    pub fn spec(&self) -> &VdxSpec {
        &self.spec
    }

    /// Like [`EdgeVoter::run_trace`], but over real TCP sockets on
    /// loopback: one [`SensorClient`] connection per sensor streams to a
    /// [`TcpHub`], whose assembled rounds feed the sink — the deployment
    /// shape of Fig. 1 with the WiFi link made concrete.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind/connect/write).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn run_trace_tcp(&self, trace: &RecordedTrace) -> std::io::Result<Vec<SinkOutput>> {
        let engine = build_engine(&self.spec).expect("spec validated in constructor");
        let modules: Vec<ModuleId> = (0..trace.modules().len())
            .map(|i| ModuleId::new(i as u32))
            .collect();
        let (hub, round_rx) = TcpHub::bind("127.0.0.1:0", modules.clone(), modules.len())?;
        let addr = hub.local_addr();

        let mut feeders = Vec::new();
        for (idx, &module) in modules.iter().enumerate() {
            let series = trace.series(idx);
            feeders.push(std::thread::spawn(move || -> std::io::Result<()> {
                let mut client = SensorClient::connect(addr)?;
                client.send_series(module, &series)
            }));
        }

        let (out_tx, out_rx) = crossbeam::channel::bounded(ROUND_CHANNEL_CAPACITY);
        let sink = SinkNode::spawn(engine, round_rx, out_tx);
        let mut outputs: Vec<SinkOutput> = out_rx.iter().collect();
        for f in feeders {
            f.join().expect("feeder thread panicked")?;
        }
        hub.join();
        sink.join();
        outputs.sort_by_key(|o| o.round);
        Ok(outputs)
    }

    /// Replays a recorded trace through the full pipeline: one feeder
    /// thread per sensor encodes wire messages, the hub assembles rounds,
    /// the sink votes. Returns the per-round outputs in round order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn run_trace(&self, trace: &RecordedTrace) -> Vec<SinkOutput> {
        let engine = build_engine(&self.spec).expect("spec validated in constructor");
        let modules: Vec<ModuleId> = (0..trace.modules().len())
            .map(|i| ModuleId::new(i as u32))
            .collect();

        // Sensor feeders → hub thread.
        let (wire_tx, wire_rx) = channel::bounded::<Vec<u8>>(WIRE_CHANNEL_CAPACITY);
        let mut feeders = Vec::new();
        for (idx, &module) in modules.iter().enumerate() {
            let series = trace.series(idx);
            let tx = wire_tx.clone();
            feeders.push(std::thread::spawn(move || {
                // One reused scratch per feeder thread: frames append
                // in place and whole chunks cross the channel.
                let mut scratch = bytes::BytesMut::with_capacity(FEEDER_CHUNK_BYTES + 64);
                for (round, value) in series.into_iter().enumerate() {
                    let msg = match value {
                        Some(v) => Message::Reading {
                            module,
                            round: round as u64,
                            value: v,
                        },
                        None => Message::Missing {
                            module,
                            round: round as u64,
                        },
                    };
                    msg.encode_into(&mut scratch);
                    if scratch.len() >= FEEDER_CHUNK_BYTES {
                        if tx.send(scratch.to_vec()).is_err() {
                            return;
                        }
                        scratch.clear();
                    }
                }
                if !scratch.is_empty() {
                    let _ = tx.send(scratch.to_vec());
                }
            }));
        }
        drop(wire_tx);

        // Hub thread: decode frames, assemble rounds.
        let (round_tx, round_rx) = channel::bounded(ROUND_CHANNEL_CAPACITY);
        let hub_modules = modules.clone();
        let rounds_total = trace.rounds();
        let hub_handle = std::thread::spawn(move || {
            // Feeders interleave arbitrarily; a generous lag tolerance keeps
            // rounds complete, and the final flush drains the tail.
            let mut hub = SensorHub::new(hub_modules).with_lag_tolerance(rounds_total as u64 + 1);
            let mut buf = bytes::BytesMut::new();
            for frame in wire_rx.iter() {
                buf.extend_from_slice(&frame);
                loop {
                    match Message::decode(&mut buf) {
                        Ok(msg) => {
                            for round in hub.accept(msg) {
                                if round_tx.send(round).is_err() {
                                    return hub;
                                }
                            }
                        }
                        Err(crate::message::DecodeError::Incomplete) => break,
                        Err(crate::message::DecodeError::FrameTooLarge { .. }) => {
                            // Unreachable with our own encoder upstream, but
                            // a capped frame cannot be resynced past: stop.
                            return hub;
                        }
                        Err(_) => continue, // resynchronised past a bad frame
                    }
                }
            }
            for round in hub.flush_all() {
                if round_tx.send(round).is_err() {
                    break;
                }
            }
            hub
        });

        // Sink node.
        let (out_tx, out_rx) = channel::bounded(ROUND_CHANNEL_CAPACITY);
        let sink = SinkNode::spawn(engine, round_rx, out_tx);

        let mut outputs: Vec<SinkOutput> = out_rx.iter().collect();
        for f in feeders {
            f.join().expect("feeder thread panicked");
        }
        hub_handle.join().expect("hub thread panicked");
        sink.join();
        outputs.sort_by_key(|o| o.round);
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avoc_core::RoundResult;
    use avoc_sim::{FaultInjector, FaultKind, LightScenario};

    #[test]
    fn pipeline_votes_every_round() {
        let trace = LightScenario::new(5, 40, 1).generate();
        let outputs = EdgeVoter::new(VdxSpec::avoc()).unwrap().run_trace(&trace);
        assert_eq!(outputs.len(), 40);
        for (i, o) in outputs.iter().enumerate() {
            assert_eq!(o.round, i as u64);
            assert!(o.result.is_ok());
        }
    }

    #[test]
    fn pipeline_masks_injected_fault() {
        let clean = LightScenario::new(5, 30, 2).generate();
        let faulty = FaultInjector::new(3, FaultKind::Offset(6.0)).apply(&clean, 0);
        let voter = EdgeVoter::new(VdxSpec::avoc()).unwrap();
        let outputs = voter.run_trace(&faulty);
        for o in &outputs {
            let val = match o.result.as_ref().unwrap() {
                RoundResult::Voted(v) => v.number().unwrap(),
                other => panic!("expected vote, got {other:?}"),
            };
            assert!(val < 20.0, "fault leaked into output: {val}");
        }
    }

    #[test]
    fn pipeline_handles_missing_values() {
        let clean = LightScenario::new(5, 30, 3).generate();
        let sparse =
            FaultInjector::new(1, FaultKind::Dropout { probability: 0.5 }).apply(&clean, 1);
        let mut spec = VdxSpec::avoc();
        // Majority quorum so dropped readings don't kill rounds.
        spec.quorum = avoc_vdx::QuorumKind::Majority;
        let outputs = EdgeVoter::new(spec).unwrap().run_trace(&sparse);
        assert_eq!(outputs.len(), 30);
        assert!(outputs.iter().all(|o| o.result.is_ok()));
    }

    #[test]
    fn tcp_run_matches_channel_run() {
        let trace = LightScenario::new(4, 25, 31).generate();
        let voter = EdgeVoter::new(VdxSpec::avoc()).unwrap();
        let via_channels = voter.run_trace(&trace);
        let via_tcp = voter.run_trace_tcp(&trace).expect("loopback sockets");
        assert_eq!(via_channels.len(), via_tcp.len());
        for (a, b) in via_channels.iter().zip(&via_tcp) {
            assert_eq!(a.round, b.round);
            let va = a.result.as_ref().unwrap().number();
            let vb = b.result.as_ref().unwrap().number();
            assert_eq!(va, vb, "round {}", a.round);
        }
    }

    #[test]
    fn invalid_spec_is_rejected_up_front() {
        let mut spec = VdxSpec::avoc();
        spec.params.error = f64::NAN;
        assert!(EdgeVoter::new(spec).is_err());
    }
}
