//! The sensor hub: assembling per-module messages into voting rounds.
//!
//! Mirrors the paper's VINT hub (Fig. 1): sensors stream readings tagged
//! with a round number; the hub emits a complete [`Round`] once every
//! expected module has reported — or, when a later round starts arriving,
//! flushes the stale round with `None` ballots for the silent modules
//! (UC-2's missing-value fault made visible to the voter).

use crate::message::Message;
use avoc_core::{Ballot, ModuleId, Round};
use std::collections::BTreeMap;

/// Liveness of one expected module, as observed by the hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// The module has never been heard from.
    NeverSeen,
    /// The module reported (a reading, an explicit missing, or a heartbeat)
    /// within the liveness window.
    Alive,
    /// The module has been silent for more than the liveness window.
    Dead {
        /// The last round the module was heard in.
        last_seen: u64,
    },
}

/// Round assembler.
///
/// # Example
///
/// ```
/// use avoc_core::ModuleId;
/// use avoc_net::{Message, SensorHub};
///
/// let mut hub = SensorHub::new(vec![ModuleId::new(0), ModuleId::new(1)]);
/// assert!(hub
///     .accept(Message::Reading { module: ModuleId::new(0), round: 0, value: 18.0 })
///     .is_empty());
/// let done = hub.accept(Message::Reading { module: ModuleId::new(1), round: 0, value: 18.1 });
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].present_count(), 2);
/// ```
#[derive(Debug)]
pub struct SensorHub {
    expected: Vec<ModuleId>,
    pending: BTreeMap<u64, BTreeMap<ModuleId, Option<f64>>>,
    /// Rounds at or below this id have been emitted; late readings for them
    /// are counted as stragglers and dropped.
    completed_through: Option<u64>,
    stragglers: u64,
    /// How many newer rounds may open before a stale round is flushed.
    lag_tolerance: u64,
    /// Last round (or heartbeat-time proxy) each module was heard in.
    last_seen: BTreeMap<ModuleId, u64>,
    /// Highest round id observed on any message.
    newest_round: u64,
    /// Rounds of silence after which a module counts as dead.
    liveness_window: u64,
}

impl SensorHub {
    /// Creates a hub expecting the given module set each round.
    ///
    /// # Panics
    ///
    /// Panics if `expected` is empty or contains duplicates.
    pub fn new(expected: Vec<ModuleId>) -> Self {
        assert!(!expected.is_empty(), "hub needs at least one module");
        let mut dedup = expected.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), expected.len(), "duplicate module ids");
        SensorHub {
            expected,
            pending: BTreeMap::new(),
            completed_through: None,
            stragglers: 0,
            lag_tolerance: 1,
            last_seen: BTreeMap::new(),
            newest_round: 0,
            liveness_window: 8,
        }
    }

    /// Sets the number of rounds of silence after which a module is
    /// reported dead (default 8).
    pub fn with_liveness_window(mut self, rounds: u64) -> Self {
        self.liveness_window = rounds.max(1);
        self
    }

    /// Sets how many newer rounds may open before an incomplete older round
    /// is force-flushed with missing ballots (default 1).
    pub fn with_lag_tolerance(mut self, rounds: u64) -> Self {
        self.lag_tolerance = rounds;
        self
    }

    /// Marks every round at or below `round` as already emitted, so late
    /// copies of them are counted as stragglers and dropped. This is the
    /// resume path: a session restored from a checkpoint that covers rounds
    /// `..=round` pre-seeds the floor, and a reconnecting client that
    /// replays its unacked readings cannot double-fuse a round the previous
    /// incarnation already emitted.
    pub fn with_completed_through(mut self, round: Option<u64>) -> Self {
        self.completed_through = match (self.completed_through, round) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self
    }

    /// The module set this hub expects.
    pub fn expected(&self) -> &[ModuleId] {
        &self.expected
    }

    /// Readings that arrived after their round was already emitted.
    pub fn straggler_count(&self) -> u64 {
        self.stragglers
    }

    /// Liveness of every expected module, judged against the newest round
    /// seen on any message — the operational signal the paper's
    /// missing-value fault analysis calls for ("some beacons not being
    /// reachable").
    pub fn liveness(&self) -> Vec<(ModuleId, Liveness)> {
        self.expected
            .iter()
            .map(|&m| {
                let state = match self.last_seen.get(&m) {
                    None => Liveness::NeverSeen,
                    Some(&seen) => {
                        if self.newest_round.saturating_sub(seen) > self.liveness_window {
                            Liveness::Dead { last_seen: seen }
                        } else {
                            Liveness::Alive
                        }
                    }
                };
                (m, state)
            })
            .collect()
    }

    /// The modules currently judged dead or never seen.
    pub fn suspect_modules(&self) -> Vec<ModuleId> {
        self.liveness()
            .into_iter()
            .filter(|(_, l)| *l != Liveness::Alive)
            .map(|(m, _)| m)
            .collect()
    }

    /// Feeds one message; returns any rounds that became ready (in order).
    pub fn accept(&mut self, msg: Message) -> Vec<Round> {
        match msg {
            Message::Reading {
                module,
                round,
                value,
            } => self.record(module, round, Some(value)),
            Message::Missing { module, round } => self.record(module, round, None),
            Message::Heartbeat { module } => {
                if self.expected.contains(&module) {
                    self.last_seen.insert(module, self.newest_round);
                }
                Vec::new()
            }
            Message::Shutdown => self.flush_all(),
            // Session-scoped control frames (tags 5–9) are daemon traffic;
            // a single-tenant hub has no session table and ignores them.
            _ => Vec::new(),
        }
    }

    /// Flushes every pending round regardless of completeness.
    pub fn flush_all(&mut self) -> Vec<Round> {
        let ids: Vec<u64> = self.pending.keys().copied().collect();
        ids.into_iter().map(|id| self.emit(id)).collect()
    }

    fn record(&mut self, module: ModuleId, round: u64, value: Option<f64>) -> Vec<Round> {
        if !self.expected.contains(&module) {
            // Unknown sensor: ignore but keep a trace via stragglers.
            self.stragglers += 1;
            return Vec::new();
        }
        self.newest_round = self.newest_round.max(round);
        self.last_seen
            .entry(module)
            .and_modify(|r| *r = (*r).max(round))
            .or_insert(round);
        if let Some(done) = self.completed_through {
            if round <= done {
                self.stragglers += 1;
                return Vec::new();
            }
        }
        self.pending.entry(round).or_default().insert(module, value);

        let mut out = Vec::new();
        // Complete round?
        if self.pending.get(&round).map(BTreeMap::len) == Some(self.expected.len()) {
            // Flush everything up to and including this round, oldest first.
            let stale: Vec<u64> = self
                .pending
                .keys()
                .copied()
                .take_while(|&id| id <= round)
                .collect();
            for id in stale {
                out.push(self.emit(id));
            }
            return out;
        }
        // Deadline flush: rounds lagging more than `lag_tolerance` behind
        // the newest open round go out incomplete.
        let newest = *self.pending.keys().next_back().expect("just inserted");
        let stale: Vec<u64> = self
            .pending
            .keys()
            .copied()
            .take_while(|&id| id + self.lag_tolerance < newest)
            .collect();
        for id in stale {
            out.push(self.emit(id));
        }
        out
    }

    fn emit(&mut self, round_id: u64) -> Round {
        let collected = self.pending.remove(&round_id).unwrap_or_default();
        let ballots = self
            .expected
            .iter()
            .map(|&m| match collected.get(&m) {
                Some(Some(v)) => Ballot::new(m, *v),
                _ => Ballot::missing(m),
            })
            .collect();
        self.completed_through = Some(self.completed_through.map_or(round_id, |d| d.max(round_id)));
        Round::new(round_id, ballots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> ModuleId {
        ModuleId::new(i)
    }

    fn reading(module: u32, round: u64, value: f64) -> Message {
        Message::Reading {
            module: m(module),
            round,
            value,
        }
    }

    fn hub3() -> SensorHub {
        SensorHub::new(vec![m(0), m(1), m(2)])
    }

    #[test]
    fn emits_on_completion() {
        let mut hub = hub3();
        assert!(hub.accept(reading(0, 0, 1.0)).is_empty());
        assert!(hub.accept(reading(1, 0, 2.0)).is_empty());
        let done = hub.accept(reading(2, 0, 3.0));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].round, 0);
        assert_eq!(done[0].present_count(), 3);
    }

    #[test]
    fn completed_through_floor_drops_replayed_rounds() {
        let mut hub = SensorHub::new(vec![m(0), m(1), m(2)]).with_completed_through(Some(4));
        // A replayed reading for an already-checkpointed round is a
        // straggler, not the seed of a duplicate round.
        assert!(hub.accept(reading(0, 3, 1.0)).is_empty());
        assert!(hub.accept(reading(1, 4, 1.0)).is_empty());
        assert_eq!(hub.straggler_count(), 2);
        // The first un-checkpointed round fuses normally.
        hub.accept(reading(0, 5, 1.0));
        hub.accept(reading(1, 5, 2.0));
        let done = hub.accept(reading(2, 5, 3.0));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].round, 5);
        // `None` leaves an existing floor untouched.
        let hub = SensorHub::new(vec![m(0)])
            .with_completed_through(Some(7))
            .with_completed_through(None);
        assert_eq!(hub.completed_through, Some(7));
    }

    #[test]
    fn explicit_missing_counts_towards_completion() {
        let mut hub = hub3();
        hub.accept(reading(0, 0, 1.0));
        hub.accept(Message::Missing {
            module: m(1),
            round: 0,
        });
        let done = hub.accept(reading(2, 0, 3.0));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].present_count(), 2);
        assert!(!done[0].ballots[1].is_present());
    }

    #[test]
    fn deadline_flushes_silent_sensor() {
        let mut hub = hub3(); // lag tolerance 1
        hub.accept(reading(0, 0, 1.0));
        hub.accept(reading(1, 0, 2.0));
        // Sensor 2 never reports round 0; rounds 1 and 2 start arriving.
        hub.accept(reading(0, 1, 1.1));
        let done = hub.accept(reading(0, 2, 1.2));
        assert_eq!(done.len(), 1, "round 0 must be deadline-flushed");
        assert_eq!(done[0].round, 0);
        assert_eq!(done[0].present_count(), 2);
    }

    #[test]
    fn stragglers_are_counted_not_applied() {
        let mut hub = hub3();
        hub.accept(reading(0, 0, 1.0));
        hub.accept(reading(1, 0, 2.0));
        hub.accept(reading(2, 0, 3.0)); // round 0 emitted
        assert_eq!(hub.straggler_count(), 0);
        hub.accept(reading(1, 0, 9.9)); // late duplicate
        assert_eq!(hub.straggler_count(), 1);
    }

    #[test]
    fn unknown_module_is_ignored() {
        let mut hub = hub3();
        let out = hub.accept(reading(7, 0, 5.0));
        assert!(out.is_empty());
        assert_eq!(hub.straggler_count(), 1);
    }

    #[test]
    fn shutdown_flushes_partial_rounds() {
        let mut hub = hub3();
        hub.accept(reading(0, 4, 1.0));
        hub.accept(reading(1, 5, 2.0));
        let done = hub.accept(Message::Shutdown);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].round, 4);
        assert_eq!(done[1].round, 5);
        assert_eq!(done[0].present_count(), 1);
    }

    #[test]
    fn completion_flushes_older_incomplete_rounds_first() {
        let mut hub = hub3().with_lag_tolerance(10);
        hub.accept(reading(0, 0, 1.0)); // round 0 stays incomplete
        hub.accept(reading(0, 1, 1.0));
        hub.accept(reading(1, 1, 2.0));
        let done = hub.accept(reading(2, 1, 3.0));
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].round, 0);
        assert_eq!(done[1].round, 1);
    }

    #[test]
    fn heartbeat_is_inert() {
        let mut hub = hub3();
        assert!(hub.accept(Message::Heartbeat { module: m(0) }).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate module")]
    fn duplicate_modules_panic() {
        let _ = SensorHub::new(vec![m(0), m(0)]);
    }
}

#[cfg(test)]
mod liveness_tests {
    use super::*;

    fn m(i: u32) -> ModuleId {
        ModuleId::new(i)
    }

    fn reading(module: u32, round: u64) -> Message {
        Message::Reading {
            module: m(module),
            round,
            value: 1.0,
        }
    }

    #[test]
    fn all_never_seen_initially() {
        let hub = SensorHub::new(vec![m(0), m(1)]);
        assert!(hub
            .liveness()
            .iter()
            .all(|(_, l)| *l == Liveness::NeverSeen));
        assert_eq!(hub.suspect_modules(), vec![m(0), m(1)]);
    }

    #[test]
    fn reporting_makes_a_module_alive() {
        let mut hub = SensorHub::new(vec![m(0), m(1)]);
        hub.accept(reading(0, 0));
        let live = hub.liveness();
        assert_eq!(live[0].1, Liveness::Alive);
        assert_eq!(live[1].1, Liveness::NeverSeen);
    }

    #[test]
    fn prolonged_silence_marks_a_module_dead() {
        let mut hub = SensorHub::new(vec![m(0), m(1)]).with_liveness_window(3);
        hub.accept(reading(0, 0));
        hub.accept(reading(1, 0));
        // Module 1 goes silent while rounds advance.
        for r in 1..6 {
            hub.accept(reading(0, r));
        }
        let live = hub.liveness();
        assert_eq!(live[0].1, Liveness::Alive);
        assert_eq!(live[1].1, Liveness::Dead { last_seen: 0 });
        assert_eq!(hub.suspect_modules(), vec![m(1)]);
    }

    #[test]
    fn heartbeat_keeps_a_module_alive() {
        let mut hub = SensorHub::new(vec![m(0), m(1)]).with_liveness_window(3);
        hub.accept(reading(0, 0));
        hub.accept(reading(1, 0));
        for r in 1..10 {
            hub.accept(reading(0, r));
            // Module 1 sends no readings but heartbeats each round.
            hub.accept(Message::Heartbeat { module: m(1) });
        }
        assert_eq!(hub.liveness()[1].1, Liveness::Alive);
    }

    #[test]
    fn explicit_missing_counts_as_contact() {
        let mut hub = SensorHub::new(vec![m(0), m(1)]).with_liveness_window(3);
        for r in 0..10 {
            hub.accept(reading(0, r));
            hub.accept(Message::Missing {
                module: m(1),
                round: r,
            });
        }
        assert_eq!(hub.liveness()[1].1, Liveness::Alive);
    }

    #[test]
    fn unknown_module_heartbeat_is_ignored() {
        let mut hub = SensorHub::new(vec![m(0)]);
        hub.accept(Message::Heartbeat { module: m(9) });
        assert_eq!(hub.liveness().len(), 1);
    }
}
