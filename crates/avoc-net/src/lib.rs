//! # avoc-net — the edge-voting middleware substrate
//!
//! The paper's UC-1 deployment (Fig. 1) wires five light sensors through a
//! VINT hub that streams to a voting sink node; UC-2 runs an "edge voter"
//! on a laptop. This crate reproduces that pipeline as an in-process
//! middleware over `crossbeam` channels:
//!
//! * [`message`] — the length-prefixed binary wire protocol (built on
//!   `bytes`) sensors speak to the hub;
//! * [`cork`] — the [`cork::CorkedWriter`]: allocation-free frame
//!   encoding into a reusable buffer, flushed with one `write` per
//!   wakeup instead of one per frame;
//! * [`hub`] — the [`hub::SensorHub`]: assembles per-module readings into
//!   complete voting rounds, deadline-flushing partial rounds so missing
//!   values surface as `None` ballots;
//! * [`sink`] — the [`sink::SinkNode`]: a worker thread driving a
//!   [`avoc_core::VotingEngine`] over incoming rounds;
//! * [`edge`] — the [`edge::EdgeVoter`]: the full VDX-configured service —
//!   spawn sensor feeders from a recorded trace, run hub + sink, collect
//!   fused outputs;
//! * [`tcp`] — the same hub over real `std::net` sockets, for deployments
//!   that split sensors and voter across machines.
//!
//! # Example
//!
//! ```
//! use avoc_net::edge::EdgeVoter;
//! use avoc_sim::LightScenario;
//! use avoc_vdx::VdxSpec;
//!
//! let trace = LightScenario::new(5, 50, 7).generate();
//! let outputs = EdgeVoter::new(VdxSpec::avoc())?.run_trace(&trace);
//! assert_eq!(outputs.len(), 50);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod cork;
pub mod edge;
pub mod hub;
pub mod message;
pub mod reactor;
pub mod sink;
pub mod tcp;

pub use cork::{CorkMetrics, CorkedWriter, FlushOutcome, WriterStats};
pub use edge::EdgeVoter;
pub use hub::{Liveness, SensorHub};
pub use message::{
    BatchReading, BatchResult, Message, SpecSource, MAX_BATCH_READINGS, MAX_BATCH_RESULTS,
};
pub use reactor::{
    spawn_pool, ConnWaker, DecodeStep, FrameVerdict, Handler, ReactorConfig, ReactorHandle,
    ReactorMetrics, ReactorPool, StreamDecoder,
};
pub use sink::SinkNode;
pub use tcp::{SensorClient, TcpHub};
