//! The sensor → hub wire protocol.
//!
//! A compact, length-prefixed binary framing (the hub runs on constrained
//! hardware — the paper demonstrates on a Raspberry Pi 4). Each frame is
//! `u32` big-endian payload length followed by the payload:
//!
//! ```text
//! tag: u8          1 = Reading, 2 = Missing, 3 = Heartbeat, 4 = Shutdown
//! module: u32 BE   (Reading/Missing/Heartbeat)
//! round: u64 BE    (Reading/Missing)
//! value: f64 bits BE (Reading only)
//! ```

use avoc_core::ModuleId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// A protocol message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Message {
    /// A measurement for a round.
    Reading {
        /// Submitting module.
        module: ModuleId,
        /// Round number.
        round: u64,
        /// The measured value.
        value: f64,
    },
    /// An explicit "no value this round" notification (a sensor that knows
    /// it failed to sample; silent sensors are handled by hub deadlines).
    Missing {
        /// Submitting module.
        module: ModuleId,
        /// Round number.
        round: u64,
    },
    /// Liveness signal.
    Heartbeat {
        /// Sending module.
        module: ModuleId,
    },
    /// The sender is going away.
    Shutdown,
}

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not yet hold a complete frame.
    Incomplete,
    /// The frame's tag byte is unknown.
    UnknownTag(u8),
    /// The frame length does not match its tag's layout.
    BadLength {
        /// Tag whose layout was violated.
        tag: u8,
        /// Payload length found.
        len: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Incomplete => write!(f, "incomplete frame"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::BadLength { tag, len } => {
                write!(f, "bad frame length {len} for tag {tag}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const TAG_READING: u8 = 1;
const TAG_MISSING: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_SHUTDOWN: u8 = 4;

impl Message {
    /// Encodes the message as one length-prefixed frame.
    pub fn encode(&self) -> Bytes {
        let mut payload = BytesMut::with_capacity(21);
        match *self {
            Message::Reading {
                module,
                round,
                value,
            } => {
                payload.put_u8(TAG_READING);
                payload.put_u32(module.index());
                payload.put_u64(round);
                payload.put_f64(value);
            }
            Message::Missing { module, round } => {
                payload.put_u8(TAG_MISSING);
                payload.put_u32(module.index());
                payload.put_u64(round);
            }
            Message::Heartbeat { module } => {
                payload.put_u8(TAG_HEARTBEAT);
                payload.put_u32(module.index());
            }
            Message::Shutdown => payload.put_u8(TAG_SHUTDOWN),
        }
        let mut frame = BytesMut::with_capacity(4 + payload.len());
        frame.put_u32(payload.len() as u32);
        frame.extend_from_slice(&payload);
        frame.freeze()
    }

    /// Decodes one frame from the front of `buf`, consuming it.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Incomplete`] when `buf` holds less than a full frame
    /// (nothing is consumed); tag/layout errors consume the bad frame so a
    /// stream can resynchronise.
    pub fn decode(buf: &mut BytesMut) -> Result<Message, DecodeError> {
        if buf.len() < 4 {
            return Err(DecodeError::Incomplete);
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if buf.len() < 4 + len {
            return Err(DecodeError::Incomplete);
        }
        buf.advance(4);
        let mut payload = buf.split_to(len);
        if payload.is_empty() {
            return Err(DecodeError::BadLength { tag: 0, len });
        }
        let tag = payload.get_u8();
        let expect = |want: usize| -> Result<(), DecodeError> {
            if len != want {
                Err(DecodeError::BadLength { tag, len })
            } else {
                Ok(())
            }
        };
        match tag {
            TAG_READING => {
                expect(1 + 4 + 8 + 8)?;
                Ok(Message::Reading {
                    module: ModuleId::new(payload.get_u32()),
                    round: payload.get_u64(),
                    value: payload.get_f64(),
                })
            }
            TAG_MISSING => {
                expect(1 + 4 + 8)?;
                Ok(Message::Missing {
                    module: ModuleId::new(payload.get_u32()),
                    round: payload.get_u64(),
                })
            }
            TAG_HEARTBEAT => {
                expect(1 + 4)?;
                Ok(Message::Heartbeat {
                    module: ModuleId::new(payload.get_u32()),
                })
            }
            TAG_SHUTDOWN => {
                expect(1)?;
                Ok(Message::Shutdown)
            }
            other => Err(DecodeError::UnknownTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let frame = msg.encode();
        let mut buf = BytesMut::from(&frame[..]);
        assert_eq!(Message::decode(&mut buf).unwrap(), msg);
        assert!(buf.is_empty());
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Message::Reading {
            module: ModuleId::new(3),
            round: 42,
            value: -78.25,
        });
        round_trip(Message::Missing {
            module: ModuleId::new(8),
            round: 7,
        });
        round_trip(Message::Heartbeat {
            module: ModuleId::new(0),
        });
        round_trip(Message::Shutdown);
    }

    #[test]
    fn incomplete_frames_do_not_consume() {
        let frame = Message::Shutdown.encode();
        let mut buf = BytesMut::from(&frame[..frame.len() - 1]);
        let before = buf.len();
        assert_eq!(Message::decode(&mut buf), Err(DecodeError::Incomplete));
        assert_eq!(buf.len(), before);
    }

    #[test]
    fn stream_of_frames_decodes_in_order() {
        let mut buf = BytesMut::new();
        let msgs = [
            Message::Reading {
                module: ModuleId::new(0),
                round: 1,
                value: 18.5,
            },
            Message::Heartbeat {
                module: ModuleId::new(1),
            },
            Message::Shutdown,
        ];
        for m in &msgs {
            buf.extend_from_slice(&m.encode());
        }
        for m in &msgs {
            assert_eq!(Message::decode(&mut buf).unwrap(), *m);
        }
        assert_eq!(Message::decode(&mut buf), Err(DecodeError::Incomplete));
    }

    #[test]
    fn unknown_tag_consumes_and_errors() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u8(99);
        assert_eq!(Message::decode(&mut buf), Err(DecodeError::UnknownTag(99)));
        assert!(buf.is_empty(), "bad frame must be consumed for resync");
    }

    #[test]
    fn bad_length_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(2); // Shutdown must be exactly 1 byte
        buf.put_u8(TAG_SHUTDOWN);
        buf.put_u8(0);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_SHUTDOWN,
                len: 2
            })
        ));
    }

    #[test]
    fn nan_values_survive_the_wire() {
        let frame = Message::Reading {
            module: ModuleId::new(1),
            round: 0,
            value: f64::NAN,
        }
        .encode();
        let mut buf = BytesMut::from(&frame[..]);
        match Message::decode(&mut buf).unwrap() {
            Message::Reading { value, .. } => assert!(value.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
