//! The sensor → hub wire protocol.
//!
//! A compact, length-prefixed binary framing (the hub runs on constrained
//! hardware — the paper demonstrates on a Raspberry Pi 4). Each frame is
//! `u32` big-endian payload length (capped at [`MAX_FRAME_LEN`]) followed by
//! the payload:
//!
//! ```text
//! tag: u8          1 = Reading, 2 = Missing, 3 = Heartbeat, 4 = Shutdown
//! module: u32 BE   (Reading/Missing/Heartbeat)
//! round: u64 BE    (Reading/Missing)
//! value: f64 bits BE (Reading only)
//! ```
//!
//! Tags 5–9 extend the substrate for the `avoc-serve` voter daemon, which
//! multiplexes many voting sessions over one connection. Control frames
//! carry a `session: u64` and, for [`Message::OpenSession`], a VDX document
//! reference. Strings are encoded as `u32` BE length + UTF-8 bytes:
//!
//! ```text
//! tag: u8          5 = OpenSession, 6 = CloseSession, 7 = SessionReading,
//!                  8 = SessionResult, 9 = Error
//! session: u64 BE  (all control frames)
//! ```
//!
//! Tag 10 is the batched ingestion frame, [`Message::FeedBatch`]: many
//! readings for one session in a single frame, amortising the per-frame
//! header and the per-reading dispatch on both ends:
//!
//! ```text
//! tag: u8          10 = FeedBatch
//! session: u64 BE
//! count: u32 BE    1 ..= MAX_BATCH_READINGS
//! count × { module: u32 BE, round: u64 BE, value: f64 bits BE }
//! ```
//!
//! The payload length must be exactly `13 + 20 × count` bytes — a count
//! that disagrees with the frame length (truncated readings, or an
//! oversized count fishing for a huge allocation) rejects the frame, and
//! `count = 0` is rejected too (a batch carries at least one reading).
//! [`MAX_BATCH_READINGS`] is the largest count that fits under
//! [`MAX_FRAME_LEN`].
//!
//! Tags 11–12 are the crash-recovery handshake. [`Message::ResumeSession`]
//! is the idempotent open: it carries a client-chosen resume token and the
//! highest round the client has seen a result for, so a reconnect
//! re-attaches to a live (or checkpointed) session instead of resetting its
//! history. [`Message::Resumed`] answers with the server's fused-round
//! frontier, telling the client which buffered readings still need replay:
//!
//! ```text
//! tag: u8          11 = ResumeSession
//! session: u64 BE
//! modules: u32 BE
//! token: u64 BE
//! acked flag: u8   0 = nothing acked, 1 = last_acked follows
//! [last_acked: u64 BE]
//! spec: u8 discriminant + u32 BE length + UTF-8 bytes
//!
//! tag: u8          12 = Resumed
//! session: u64 BE
//! high flag: u8    0 = fresh session, 1 = high_round follows
//! [high_round: u64 BE]
//! warm: u8         1 = history restored (live or checkpoint), 0 = fresh
//! ```
//!
//! Both are hardened like `FeedBatch`: flag bytes other than 0/1, missing
//! optional fields, or trailing bytes reject the frame.
//!
//! Tag 13 is the egress mirror of `FeedBatch`: [`Message::ResultBatch`]
//! carries many fused rounds for one session in a single frame, so a burst
//! of readings that fuses thousands of rounds ships its verdicts without a
//! per-round frame header or syscall:
//!
//! ```text
//! tag: u8          13 = ResultBatch
//! session: u64 BE
//! count: u32 BE    1 ..= MAX_BATCH_RESULTS
//! count × { round: u64 BE, flags: u8, value: f64 bits BE }
//! ```
//!
//! `flags` bit 0 = a fused value is present, bit 1 = a genuine vote
//! produced it; any other bit rejects the frame. When bit 0 is clear the
//! value field must be all-zero bits, so every accepted frame re-encodes
//! byte-identically (the canonical-acceptance invariant the resume replay
//! path relies on). Count-vs-length hardening matches `FeedBatch`: the
//! payload must be exactly `13 + 17 × count` bytes and `count = 0` is
//! rejected.
//!
//! Tags 14–15 are the in-band observability pair. [`Message::StatsRequest`]
//! asks the daemon for its live counters; [`Message::StatsReply`] answers
//! with the `CountersSnapshot` JSON — the same document the daemon dumps at
//! drain time and serves at `/stats` — so operators can read counters over
//! an existing session connection without the admin endpoint enabled:
//!
//! ```text
//! tag: u8          14 = StatsRequest (tag only)
//! tag: u8          15 = StatsReply
//! json: u32 BE length + UTF-8 bytes
//! ```
//!
//! Tags 16–18 are the cluster tier. [`Message::Redirect`] is how a gateway
//! (or a daemon that just migrated a session away) tells a client which
//! node owns a session now; [`Message::ExportSession`] asks a daemon to
//! quiesce a session at a round boundary and ship it; [`Message::SessionState`]
//! carries the shipped state — the meta sidecar and compacted WAL, as raw
//! byte blobs — from source to gateway and gateway to target. An import is
//! acknowledged by the existing tag-12 `Resumed { warm: true }`.
//!
//! Tags 17 and 18 are *cluster verbs*, not tenant verbs: they move whole
//! sessions — including the resume token inside the meta sidecar — so they
//! carry a cluster credential (`auth`) that a daemon checks against its
//! configured inter-node secret before acting. A daemon with no secret
//! configured refuses them outright, so a standalone deployment exposes no
//! migration surface at all:
//!
//! ```text
//! tag: u8          16 = Redirect
//! session: u64 BE
//! epoch: u64 BE    ownership epoch, bumped on every placement change
//! addr: u32 BE length + UTF-8 bytes (host:port of the owning node)
//!
//! tag: u8          17 = ExportSession
//! session: u64 BE
//! target_node: u64 BE
//! epoch: u64 BE    the ownership epoch this placement change installs
//! auth: u64 BE     cluster credential (the shared inter-node secret)
//! target_addr: u32 BE length + UTF-8 bytes
//!
//! tag: u8          18 = SessionState
//! session: u64 BE
//! epoch: u64 BE
//! auth: u64 BE     cluster credential (the shared inter-node secret)
//! meta: u32 BE length + bytes (avoc-session-meta v1 sidecar)
//! wal: u32 BE length + bytes (compacted history log)
//! ```
//!
//! Both blob lengths must exactly consume the payload (lying lengths,
//! truncation and trailing bytes reject the frame), and the whole frame is
//! still bounded by [`MAX_FRAME_LEN`] — exports compact the WAL first so
//! shipped state stays small, and oversize sessions refuse to export rather
//! than emit an undecodable frame.

use avoc_core::ModuleId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Where a voting session's VDX document comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecSource {
    /// A spec registered under a name in the server's registry.
    Named(String),
    /// A full VDX JSON document shipped inline at session open.
    Inline(String),
}

/// One reading inside a [`Message::FeedBatch`] frame (20 bytes on the wire:
/// module `u32`, round `u64`, value `f64`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchReading {
    /// Submitting module.
    pub module: ModuleId,
    /// Round number.
    pub round: u64,
    /// The measured value.
    pub value: f64,
}

/// One fused round inside a [`Message::ResultBatch`] frame (17 bytes on
/// the wire: round `u64`, flags `u8`, value `f64` bits — zeroed when the
/// round was skipped so the encoding stays canonical).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchResult {
    /// Round number.
    pub round: u64,
    /// Fused value (`None` when the round was skipped).
    pub value: Option<f64>,
    /// Whether a genuine vote produced the value (`false` for tie-breaks
    /// and last-good fallbacks).
    pub voted: bool,
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A measurement for a round.
    Reading {
        /// Submitting module.
        module: ModuleId,
        /// Round number.
        round: u64,
        /// The measured value.
        value: f64,
    },
    /// An explicit "no value this round" notification (a sensor that knows
    /// it failed to sample; silent sensors are handled by hub deadlines).
    Missing {
        /// Submitting module.
        module: ModuleId,
        /// Round number.
        round: u64,
    },
    /// Liveness signal.
    Heartbeat {
        /// Sending module.
        module: ModuleId,
    },
    /// The sender is going away.
    Shutdown,
    /// Opens a voting session on an `avoc-serve` daemon.
    OpenSession {
        /// Client-chosen session identifier (unique per daemon).
        session: u64,
        /// How many modules feed this session's rounds.
        modules: u32,
        /// The VDX document governing the session.
        spec: SpecSource,
    },
    /// Closes a session, flushing any partially assembled rounds.
    CloseSession {
        /// Session to close.
        session: u64,
    },
    /// A measurement addressed to one session of a multi-tenant daemon.
    SessionReading {
        /// Target session.
        session: u64,
        /// Submitting module.
        module: ModuleId,
        /// Round number.
        round: u64,
        /// The measured value.
        value: f64,
    },
    /// One fused round emitted by a session.
    SessionResult {
        /// Originating session.
        session: u64,
        /// Round number.
        round: u64,
        /// Fused value (`None` when the round was skipped).
        value: Option<f64>,
        /// Whether a genuine vote produced the value (`false` for
        /// tie-breaks and last-good fallbacks).
        voted: bool,
    },
    /// A service-side failure scoped to one session.
    Error {
        /// Affected session.
        session: u64,
        /// Human-readable cause.
        message: String,
    },
    /// Many readings for one session in a single frame (tag 10). Batches
    /// amortise framing and dispatch; each reading still counts
    /// individually against the receiver's backpressure budget.
    FeedBatch {
        /// Target session.
        session: u64,
        /// The batched readings, in submission order. Never empty; at most
        /// [`MAX_BATCH_READINGS`] per frame.
        readings: Vec<BatchReading>,
    },
    /// Idempotent session open / re-attach (tag 11). A fresh open creates
    /// the session; a reconnect after a connection (or daemon) failure
    /// re-attaches to the live session or restores it from a checkpoint,
    /// provided `token` matches the one the session was created with.
    ResumeSession {
        /// Session identifier.
        session: u64,
        /// How many modules feed this session's rounds.
        modules: u32,
        /// The VDX document governing the session (used when the session
        /// must be created or rebuilt).
        spec: SpecSource,
        /// Client-chosen resume token; proves this client owns the session.
        token: u64,
        /// Highest round the client has received a [`Message::SessionResult`]
        /// for (`None` before the first result). The server re-emits any
        /// retained results above this.
        last_acked: Option<u64>,
    },
    /// Server acknowledgement of a [`Message::ResumeSession`] (tag 12).
    Resumed {
        /// The session that was attached, restored, or created.
        session: u64,
        /// The server's fused-round frontier: rounds at or below this are
        /// already fused and must *not* be replayed as readings (`None`
        /// for a fresh session — replay everything).
        high_round: Option<u64>,
        /// Whether the session kept warm history (live re-attach or
        /// checkpoint restore); `false` means it was built fresh and the
        /// voter will bootstrap.
        warm: bool,
    },
    /// Many fused rounds for one session in a single frame (tag 13) — the
    /// egress mirror of [`Message::FeedBatch`]. Shard workers accumulate a
    /// burst's verdicts and ship them together, amortising framing and the
    /// per-result write on the result path.
    ResultBatch {
        /// Originating session.
        session: u64,
        /// The fused rounds, in fuse order. Never empty; at most
        /// [`MAX_BATCH_RESULTS`] per frame.
        results: Vec<BatchResult>,
    },
    /// Asks the daemon for its live service counters (tag 14). Answered
    /// with a [`Message::StatsReply`]; any client connection may send it.
    StatsRequest,
    /// The daemon's live counters as a JSON document (tag 15) — the same
    /// `CountersSnapshot` schema the daemon dumps at drain time.
    StatsReply {
        /// The rendered snapshot JSON.
        json: String,
    },
    /// "That session lives elsewhere" (tag 16). A gateway answers
    /// `OpenSession`/`ResumeSession` with this instead of running the
    /// session itself, and a daemon that just migrated a session away sends
    /// it in-band so a connected client re-homes without waiting for a
    /// failure.
    Redirect {
        /// The session being re-homed.
        session: u64,
        /// Ownership epoch — strictly increasing per session, so a client
        /// can discard a stale redirect that raced a newer placement.
        epoch: u64,
        /// `host:port` of the owning daemon.
        addr: String,
    },
    /// Asks a daemon to quiesce `session` at a round boundary and ship its
    /// checkpoint + WAL tail (tag 17). Answered with a
    /// [`Message::SessionState`] on success or [`Message::Error`] on
    /// failure; idempotent — re-asking after the session already moved to
    /// `target_node` re-ships the same state.
    ExportSession {
        /// The session to export.
        session: u64,
        /// Node id the session is moving to (stamped into the shipped meta
        /// sidecar so the source's boot recovery skips it).
        target_node: u64,
        /// The ownership epoch this placement change installs, echoed in
        /// the [`Message::SessionState`] reply and the in-band
        /// [`Message::Redirect`] the source sends its tenant.
        epoch: u64,
        /// Cluster credential: must equal the daemon's configured
        /// inter-node secret or the export is refused. Exports ship the
        /// session's resume token, so this verb is never tenant-reachable.
        auth: u64,
        /// `host:port` of the target daemon, forwarded to the client in the
        /// migration [`Message::Redirect`].
        target_addr: String,
    },
    /// A migrating session's durable state in flight (tag 18): the meta
    /// sidecar and compacted WAL as raw byte blobs. Sent source → gateway
    /// as the [`Message::ExportSession`] reply, then gateway → target as
    /// the import request; the target restores warm and acknowledges with
    /// [`Message::Resumed`]`{ warm: true }`.
    SessionState {
        /// The session being shipped.
        session: u64,
        /// Ownership epoch after the move.
        epoch: u64,
        /// Cluster credential: must equal the importing daemon's configured
        /// inter-node secret or the import is refused — a forged import
        /// would overwrite durable state with an attacker-chosen token.
        auth: u64,
        /// `avoc-session-meta v1` sidecar bytes.
        meta: Vec<u8>,
        /// Compacted history-log bytes.
        wal: Vec<u8>,
    },
}

/// Hard cap on a frame's payload length (1 MiB). Only [`Message::OpenSession`]
/// and [`Message::Error`] carry variable payloads, and VDX documents are a
/// few KiB — any larger length prefix is hostile or corrupt. Without a cap,
/// an 8-byte header claiming a multi-GiB frame would make a reader buffer
/// without bound waiting for bytes that never arrive.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Fixed header of a [`Message::FeedBatch`] payload: tag + session + count.
const BATCH_HEADER_LEN: usize = 1 + 8 + 4;

/// Wire size of one [`BatchReading`]: module + round + value.
const BATCH_READING_LEN: usize = 4 + 8 + 8;

/// The most readings one [`Message::FeedBatch`] frame can carry while its
/// payload stays under [`MAX_FRAME_LEN`]. Senders with more readings than
/// this must split them across frames (see `ServeClient::send_batch`).
pub const MAX_BATCH_READINGS: usize = (MAX_FRAME_LEN - BATCH_HEADER_LEN) / BATCH_READING_LEN;

/// Fixed header of a [`Message::ResultBatch`] payload: tag + session + count.
const RESULT_HEADER_LEN: usize = 1 + 8 + 4;

/// Wire size of one [`BatchResult`]: round + flags + value bits.
const RESULT_ENTRY_LEN: usize = 8 + 1 + 8;

/// The most results one [`Message::ResultBatch`] frame can carry while its
/// payload stays under [`MAX_FRAME_LEN`]. Senders with more fused rounds
/// than this per burst must split them across frames (see
/// `avoc-serve`'s session result flush).
pub const MAX_BATCH_RESULTS: usize = (MAX_FRAME_LEN - RESULT_HEADER_LEN) / RESULT_ENTRY_LEN;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not yet hold a complete frame.
    Incomplete,
    /// The frame's tag byte is unknown.
    UnknownTag(u8),
    /// The frame length does not match its tag's layout.
    BadLength {
        /// Tag whose layout was violated.
        tag: u8,
        /// Payload length found.
        len: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`]. Unlike the other errors
    /// the frame is *not* consumed (its bytes may never arrive), so there is
    /// no resynchronising past it: readers must drop the stream.
    FrameTooLarge {
        /// Claimed payload length.
        len: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Incomplete => write!(f, "incomplete frame"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::BadLength { tag, len } => {
                write!(f, "bad frame length {len} for tag {tag}")
            }
            DecodeError::FrameTooLarge { len } => {
                write!(
                    f,
                    "frame length {len} exceeds the {MAX_FRAME_LEN}-byte maximum"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const TAG_READING: u8 = 1;
const TAG_MISSING: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_SHUTDOWN: u8 = 4;
const TAG_OPEN_SESSION: u8 = 5;
const TAG_CLOSE_SESSION: u8 = 6;
const TAG_SESSION_READING: u8 = 7;
const TAG_SESSION_RESULT: u8 = 8;
const TAG_ERROR: u8 = 9;
const TAG_FEED_BATCH: u8 = 10;
const TAG_RESUME_SESSION: u8 = 11;
const TAG_RESUMED: u8 = 12;
const TAG_RESULT_BATCH: u8 = 13;
const TAG_STATS_REQUEST: u8 = 14;
const TAG_STATS_REPLY: u8 = 15;
const TAG_REDIRECT: u8 = 16;
const TAG_EXPORT_SESSION: u8 = 17;
const TAG_SESSION_STATE: u8 = 18;

/// Spec-source discriminants inside an `OpenSession` payload.
const SPEC_NAMED: u8 = 0;
const SPEC_INLINE: u8 = 1;

fn put_string(payload: &mut BytesMut, s: &str) {
    payload.put_u32(s.len() as u32);
    payload.extend_from_slice(s.as_bytes());
}

fn get_string(payload: &mut BytesMut, tag: u8, len: usize) -> Result<String, DecodeError> {
    if payload.len() < 4 {
        return Err(DecodeError::BadLength { tag, len });
    }
    let n = payload.get_u32() as usize;
    if payload.len() < n {
        return Err(DecodeError::BadLength { tag, len });
    }
    let raw = payload.split_to(n);
    String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::BadLength { tag, len })
}

fn put_bytes(payload: &mut BytesMut, b: &[u8]) {
    payload.put_u32(b.len() as u32);
    payload.extend_from_slice(b);
}

/// `get_string` without the UTF-8 requirement — the SessionState blobs are
/// raw file bytes. Lying lengths reject the frame the same way.
fn get_bytes(payload: &mut BytesMut, tag: u8, len: usize) -> Result<Vec<u8>, DecodeError> {
    if payload.len() < 4 {
        return Err(DecodeError::BadLength { tag, len });
    }
    let n = payload.get_u32() as usize;
    if payload.len() < n {
        return Err(DecodeError::BadLength { tag, len });
    }
    Ok(payload.split_to(n).to_vec())
}

impl Message {
    /// Encodes the message as one length-prefixed frame.
    ///
    /// Thin allocating wrapper over [`Message::encode_into`]. Hot paths
    /// hold a per-connection scratch [`BytesMut`] and call `encode_into`
    /// directly so steady-state sends never touch the allocator.
    pub fn encode(&self) -> Bytes {
        let mut frame = BytesMut::with_capacity(33);
        self.encode_into(&mut frame);
        frame.freeze()
    }

    /// Appends the message as one length-prefixed frame to `frame`,
    /// reusing its allocation. Byte-for-byte identical to
    /// [`Message::encode`] (pinned by proptest for every tag): the payload
    /// is written in place behind a four-byte length placeholder that is
    /// patched once the payload size is known, so no intermediate payload
    /// buffer ever exists.
    pub fn encode_into(&self, frame: &mut BytesMut) {
        let pos = frame.len();
        frame.put_u32(0); // length placeholder, patched below
        match self {
            Message::Reading {
                module,
                round,
                value,
            } => {
                frame.put_u8(TAG_READING);
                frame.put_u32(module.index());
                frame.put_u64(*round);
                frame.put_f64(*value);
            }
            Message::Missing { module, round } => {
                frame.put_u8(TAG_MISSING);
                frame.put_u32(module.index());
                frame.put_u64(*round);
            }
            Message::Heartbeat { module } => {
                frame.put_u8(TAG_HEARTBEAT);
                frame.put_u32(module.index());
            }
            Message::Shutdown => frame.put_u8(TAG_SHUTDOWN),
            Message::OpenSession {
                session,
                modules,
                spec,
            } => {
                frame.put_u8(TAG_OPEN_SESSION);
                frame.put_u64(*session);
                frame.put_u32(*modules);
                match spec {
                    SpecSource::Named(name) => {
                        frame.put_u8(SPEC_NAMED);
                        put_string(frame, name);
                    }
                    SpecSource::Inline(vdx) => {
                        frame.put_u8(SPEC_INLINE);
                        put_string(frame, vdx);
                    }
                }
            }
            Message::CloseSession { session } => {
                frame.put_u8(TAG_CLOSE_SESSION);
                frame.put_u64(*session);
            }
            Message::SessionReading {
                session,
                module,
                round,
                value,
            } => {
                frame.put_u8(TAG_SESSION_READING);
                frame.put_u64(*session);
                frame.put_u32(module.index());
                frame.put_u64(*round);
                frame.put_f64(*value);
            }
            Message::SessionResult {
                session,
                round,
                value,
                voted,
            } => {
                frame.put_u8(TAG_SESSION_RESULT);
                frame.put_u64(*session);
                frame.put_u64(*round);
                match value {
                    Some(v) => {
                        frame.put_u8(1);
                        frame.put_f64(*v);
                    }
                    None => frame.put_u8(0),
                }
                frame.put_u8(u8::from(*voted));
            }
            Message::Error { session, message } => {
                frame.put_u8(TAG_ERROR);
                frame.put_u64(*session);
                put_string(frame, message);
            }
            Message::FeedBatch { session, readings } => {
                Message::put_feed_batch(*session, readings, frame);
            }
            Message::ResumeSession {
                session,
                modules,
                spec,
                token,
                last_acked,
            } => {
                frame.put_u8(TAG_RESUME_SESSION);
                frame.put_u64(*session);
                frame.put_u32(*modules);
                frame.put_u64(*token);
                match last_acked {
                    Some(r) => {
                        frame.put_u8(1);
                        frame.put_u64(*r);
                    }
                    None => frame.put_u8(0),
                }
                match spec {
                    SpecSource::Named(name) => {
                        frame.put_u8(SPEC_NAMED);
                        put_string(frame, name);
                    }
                    SpecSource::Inline(vdx) => {
                        frame.put_u8(SPEC_INLINE);
                        put_string(frame, vdx);
                    }
                }
            }
            Message::Resumed {
                session,
                high_round,
                warm,
            } => {
                frame.put_u8(TAG_RESUMED);
                frame.put_u64(*session);
                match high_round {
                    Some(r) => {
                        frame.put_u8(1);
                        frame.put_u64(*r);
                    }
                    None => frame.put_u8(0),
                }
                frame.put_u8(u8::from(*warm));
            }
            Message::ResultBatch { session, results } => {
                debug_assert!(
                    !results.is_empty() && results.len() <= MAX_BATCH_RESULTS,
                    "ResultBatch must carry 1..=MAX_BATCH_RESULTS results"
                );
                frame.put_u8(TAG_RESULT_BATCH);
                frame.put_u64(*session);
                frame.put_u32(results.len() as u32);
                for r in results {
                    frame.put_u64(r.round);
                    let mut flags = 0u8;
                    if r.value.is_some() {
                        flags |= 1;
                    }
                    if r.voted {
                        flags |= 2;
                    }
                    frame.put_u8(flags);
                    // Skipped rounds carry +0.0 (all-zero bits) so the
                    // encoding stays canonical: decode rejects anything else.
                    frame.put_f64(r.value.unwrap_or(0.0));
                }
            }
            Message::StatsRequest => frame.put_u8(TAG_STATS_REQUEST),
            Message::StatsReply { json } => {
                frame.put_u8(TAG_STATS_REPLY);
                put_string(frame, json);
            }
            Message::Redirect {
                session,
                epoch,
                addr,
            } => {
                frame.put_u8(TAG_REDIRECT);
                frame.put_u64(*session);
                frame.put_u64(*epoch);
                put_string(frame, addr);
            }
            Message::ExportSession {
                session,
                target_node,
                epoch,
                auth,
                target_addr,
            } => {
                frame.put_u8(TAG_EXPORT_SESSION);
                frame.put_u64(*session);
                frame.put_u64(*target_node);
                frame.put_u64(*epoch);
                frame.put_u64(*auth);
                put_string(frame, target_addr);
            }
            Message::SessionState {
                session,
                epoch,
                auth,
                meta,
                wal,
            } => {
                frame.put_u8(TAG_SESSION_STATE);
                frame.put_u64(*session);
                frame.put_u64(*epoch);
                frame.put_u64(*auth);
                put_bytes(frame, meta);
                put_bytes(frame, wal);
            }
        }
        Message::patch_len(frame, pos);
    }

    /// Appends a [`Message::FeedBatch`] frame built from a borrowed slice —
    /// byte-identical to `Message::FeedBatch { session, readings:
    /// readings.to_vec() }.encode_into(frame)` without materialising the
    /// `Vec`. The batch feed path encodes its chunks through this so
    /// steady-state sends never allocate.
    pub fn encode_feed_batch_into(session: u64, readings: &[BatchReading], frame: &mut BytesMut) {
        let pos = frame.len();
        frame.put_u32(0); // length placeholder, patched below
        Message::put_feed_batch(session, readings, frame);
        Message::patch_len(frame, pos);
    }

    /// Writes a FeedBatch payload (no length prefix) — shared by the enum
    /// arm and the slice-based encoder so the two stay byte-identical.
    fn put_feed_batch(session: u64, readings: &[BatchReading], frame: &mut BytesMut) {
        debug_assert!(
            !readings.is_empty() && readings.len() <= MAX_BATCH_READINGS,
            "FeedBatch must carry 1..=MAX_BATCH_READINGS readings"
        );
        frame.put_u8(TAG_FEED_BATCH);
        frame.put_u64(session);
        frame.put_u32(readings.len() as u32);
        for r in readings {
            frame.put_u32(r.module.index());
            frame.put_u64(r.round);
            frame.put_f64(r.value);
        }
    }

    /// Patches the four-byte length placeholder written at `pos` (an offset
    /// into the readable region) with the payload length that follows it.
    fn patch_len(frame: &mut BytesMut, pos: usize) {
        let payload_len = frame.len() - pos - 4;
        debug_assert!(
            payload_len <= MAX_FRAME_LEN,
            "encoded frame exceeds MAX_FRAME_LEN and would be undecodable"
        );
        frame[pos..pos + 4].copy_from_slice(&(payload_len as u32).to_be_bytes());
    }

    /// Decodes one frame from the front of `buf`, consuming it.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Incomplete`] when `buf` holds less than a full frame
    /// (nothing is consumed); tag/layout errors consume the bad frame so a
    /// stream can resynchronise. [`DecodeError::FrameTooLarge`] — a length
    /// prefix beyond [`MAX_FRAME_LEN`] — consumes nothing and is fatal to
    /// the stream: the caller must stop reading rather than buffer toward a
    /// hostile multi-GiB frame.
    pub fn decode(buf: &mut BytesMut) -> Result<Message, DecodeError> {
        if buf.len() < 4 {
            return Err(DecodeError::Incomplete);
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(DecodeError::FrameTooLarge { len });
        }
        if buf.len() < 4 + len {
            return Err(DecodeError::Incomplete);
        }
        buf.advance(4);
        let mut payload = buf.split_to(len);
        if payload.is_empty() {
            return Err(DecodeError::BadLength { tag: 0, len });
        }
        let tag = payload.get_u8();
        let expect = |want: usize| -> Result<(), DecodeError> {
            if len != want {
                Err(DecodeError::BadLength { tag, len })
            } else {
                Ok(())
            }
        };
        match tag {
            TAG_READING => {
                expect(1 + 4 + 8 + 8)?;
                Ok(Message::Reading {
                    module: ModuleId::new(payload.get_u32()),
                    round: payload.get_u64(),
                    value: payload.get_f64(),
                })
            }
            TAG_MISSING => {
                expect(1 + 4 + 8)?;
                Ok(Message::Missing {
                    module: ModuleId::new(payload.get_u32()),
                    round: payload.get_u64(),
                })
            }
            TAG_HEARTBEAT => {
                expect(1 + 4)?;
                Ok(Message::Heartbeat {
                    module: ModuleId::new(payload.get_u32()),
                })
            }
            TAG_SHUTDOWN => {
                expect(1)?;
                Ok(Message::Shutdown)
            }
            TAG_OPEN_SESSION => {
                // Variable length: session + modules + discriminant + string.
                if len < 1 + 8 + 4 + 1 + 4 {
                    return Err(DecodeError::BadLength { tag, len });
                }
                let session = payload.get_u64();
                let modules = payload.get_u32();
                let kind = payload.get_u8();
                let text = get_string(&mut payload, tag, len)?;
                let spec = match kind {
                    SPEC_NAMED => SpecSource::Named(text),
                    SPEC_INLINE => SpecSource::Inline(text),
                    _ => return Err(DecodeError::BadLength { tag, len }),
                };
                if !payload.is_empty() {
                    return Err(DecodeError::BadLength { tag, len });
                }
                Ok(Message::OpenSession {
                    session,
                    modules,
                    spec,
                })
            }
            TAG_CLOSE_SESSION => {
                expect(1 + 8)?;
                Ok(Message::CloseSession {
                    session: payload.get_u64(),
                })
            }
            TAG_SESSION_READING => {
                expect(1 + 8 + 4 + 8 + 8)?;
                Ok(Message::SessionReading {
                    session: payload.get_u64(),
                    module: ModuleId::new(payload.get_u32()),
                    round: payload.get_u64(),
                    value: payload.get_f64(),
                })
            }
            TAG_SESSION_RESULT => {
                expect(1 + 8 + 8 + 1 + 8 + 1).or_else(|_| expect(1 + 8 + 8 + 1 + 1))?;
                let session = payload.get_u64();
                let round = payload.get_u64();
                let value = match payload.get_u8() {
                    0 => None,
                    1 => {
                        if payload.len() < 8 {
                            return Err(DecodeError::BadLength { tag, len });
                        }
                        Some(payload.get_f64())
                    }
                    _ => return Err(DecodeError::BadLength { tag, len }),
                };
                if payload.len() != 1 {
                    return Err(DecodeError::BadLength { tag, len });
                }
                Ok(Message::SessionResult {
                    session,
                    round,
                    value,
                    voted: payload.get_u8() != 0,
                })
            }
            TAG_ERROR => {
                if len < 1 + 8 + 4 {
                    return Err(DecodeError::BadLength { tag, len });
                }
                let session = payload.get_u64();
                let message = get_string(&mut payload, tag, len)?;
                if !payload.is_empty() {
                    return Err(DecodeError::BadLength { tag, len });
                }
                Ok(Message::Error { session, message })
            }
            TAG_FEED_BATCH => {
                if len < BATCH_HEADER_LEN {
                    return Err(DecodeError::BadLength { tag, len });
                }
                let session = payload.get_u64();
                let count = payload.get_u32() as usize;
                // The count must agree byte-for-byte with the frame length:
                // this rejects truncated batches and hostile counts (which
                // would otherwise size a huge Vec) in one comparison. Empty
                // batches are no-op spam and rejected too.
                if count == 0 || len != BATCH_HEADER_LEN + count * BATCH_READING_LEN {
                    return Err(DecodeError::BadLength { tag, len });
                }
                let mut readings = Vec::with_capacity(count);
                for _ in 0..count {
                    readings.push(BatchReading {
                        module: ModuleId::new(payload.get_u32()),
                        round: payload.get_u64(),
                        value: payload.get_f64(),
                    });
                }
                Ok(Message::FeedBatch { session, readings })
            }
            TAG_RESUME_SESSION => {
                // Variable length: session + modules + token + acked flag
                // (+ acked round) + spec discriminant + string.
                if len < 1 + 8 + 4 + 8 + 1 + 1 + 4 {
                    return Err(DecodeError::BadLength { tag, len });
                }
                let session = payload.get_u64();
                let modules = payload.get_u32();
                let token = payload.get_u64();
                let last_acked = match payload.get_u8() {
                    0 => None,
                    1 => {
                        if payload.len() < 8 {
                            return Err(DecodeError::BadLength { tag, len });
                        }
                        Some(payload.get_u64())
                    }
                    _ => return Err(DecodeError::BadLength { tag, len }),
                };
                if payload.is_empty() {
                    return Err(DecodeError::BadLength { tag, len });
                }
                let kind = payload.get_u8();
                let text = get_string(&mut payload, tag, len)?;
                let spec = match kind {
                    SPEC_NAMED => SpecSource::Named(text),
                    SPEC_INLINE => SpecSource::Inline(text),
                    _ => return Err(DecodeError::BadLength { tag, len }),
                };
                if !payload.is_empty() {
                    return Err(DecodeError::BadLength { tag, len });
                }
                Ok(Message::ResumeSession {
                    session,
                    modules,
                    spec,
                    token,
                    last_acked,
                })
            }
            TAG_RESUMED => {
                expect(1 + 8 + 1 + 8 + 1).or_else(|_| expect(1 + 8 + 1 + 1))?;
                let session = payload.get_u64();
                let high_round = match payload.get_u8() {
                    0 => None,
                    1 => {
                        if payload.len() < 8 {
                            return Err(DecodeError::BadLength { tag, len });
                        }
                        Some(payload.get_u64())
                    }
                    _ => return Err(DecodeError::BadLength { tag, len }),
                };
                if payload.len() != 1 {
                    return Err(DecodeError::BadLength { tag, len });
                }
                let warm = match payload.get_u8() {
                    0 => false,
                    1 => true,
                    // Like the optional-field flags: anything else is a
                    // malformed frame, not a creative boolean.
                    _ => return Err(DecodeError::BadLength { tag, len }),
                };
                Ok(Message::Resumed {
                    session,
                    high_round,
                    warm,
                })
            }
            TAG_RESULT_BATCH => {
                if len < RESULT_HEADER_LEN {
                    return Err(DecodeError::BadLength { tag, len });
                }
                let session = payload.get_u64();
                let count = payload.get_u32() as usize;
                // Count-vs-length hardening as for FeedBatch: a lying count
                // (truncated entries, or an oversized count fishing for a
                // huge Vec) and empty batches reject the frame.
                if count == 0 || len != RESULT_HEADER_LEN + count * RESULT_ENTRY_LEN {
                    return Err(DecodeError::BadLength { tag, len });
                }
                let mut results = Vec::with_capacity(count);
                for _ in 0..count {
                    let round = payload.get_u64();
                    let flags = payload.get_u8();
                    if flags > 3 {
                        return Err(DecodeError::BadLength { tag, len });
                    }
                    let bits = payload.get_u64();
                    let value = if flags & 1 != 0 {
                        Some(f64::from_bits(bits))
                    } else if bits != 0 {
                        // A skipped round must carry all-zero value bits:
                        // accepting arbitrary filler would break the
                        // canonical re-encode invariant resume replay
                        // comparisons rely on.
                        return Err(DecodeError::BadLength { tag, len });
                    } else {
                        None
                    };
                    results.push(BatchResult {
                        round,
                        value,
                        voted: flags & 2 != 0,
                    });
                }
                Ok(Message::ResultBatch { session, results })
            }
            TAG_STATS_REQUEST => {
                expect(1)?;
                Ok(Message::StatsRequest)
            }
            TAG_STATS_REPLY => {
                if len < 1 + 4 {
                    return Err(DecodeError::BadLength { tag, len });
                }
                let json = get_string(&mut payload, tag, len)?;
                if !payload.is_empty() {
                    return Err(DecodeError::BadLength { tag, len });
                }
                Ok(Message::StatsReply { json })
            }
            TAG_REDIRECT => {
                // Variable length: session + epoch + addr string.
                if len < 1 + 8 + 8 + 4 {
                    return Err(DecodeError::BadLength { tag, len });
                }
                let session = payload.get_u64();
                let epoch = payload.get_u64();
                let addr = get_string(&mut payload, tag, len)?;
                if !payload.is_empty() {
                    return Err(DecodeError::BadLength { tag, len });
                }
                Ok(Message::Redirect {
                    session,
                    epoch,
                    addr,
                })
            }
            TAG_EXPORT_SESSION => {
                // Variable length: session + target_node + epoch + auth +
                // addr.
                if len < 1 + 8 + 8 + 8 + 8 + 4 {
                    return Err(DecodeError::BadLength { tag, len });
                }
                let session = payload.get_u64();
                let target_node = payload.get_u64();
                let epoch = payload.get_u64();
                let auth = payload.get_u64();
                let target_addr = get_string(&mut payload, tag, len)?;
                if !payload.is_empty() {
                    return Err(DecodeError::BadLength { tag, len });
                }
                Ok(Message::ExportSession {
                    session,
                    target_node,
                    epoch,
                    auth,
                    target_addr,
                })
            }
            TAG_SESSION_STATE => {
                // Variable length: session + epoch + auth + two
                // length-prefixed blobs, which must together consume the
                // payload exactly — a lying blob length (truncation, or a
                // count fishing past the frame) or trailing bytes reject
                // the frame.
                if len < 1 + 8 + 8 + 8 + 4 + 4 {
                    return Err(DecodeError::BadLength { tag, len });
                }
                let session = payload.get_u64();
                let epoch = payload.get_u64();
                let auth = payload.get_u64();
                let meta = get_bytes(&mut payload, tag, len)?;
                let wal = get_bytes(&mut payload, tag, len)?;
                if !payload.is_empty() {
                    return Err(DecodeError::BadLength { tag, len });
                }
                Ok(Message::SessionState {
                    session,
                    epoch,
                    auth,
                    meta,
                    wal,
                })
            }
            other => Err(DecodeError::UnknownTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let frame = msg.encode();
        let mut buf = BytesMut::from(&frame[..]);
        assert_eq!(Message::decode(&mut buf).unwrap(), msg);
        assert!(buf.is_empty());
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Message::Reading {
            module: ModuleId::new(3),
            round: 42,
            value: -78.25,
        });
        round_trip(Message::Missing {
            module: ModuleId::new(8),
            round: 7,
        });
        round_trip(Message::Heartbeat {
            module: ModuleId::new(0),
        });
        round_trip(Message::Shutdown);
    }

    #[test]
    fn control_frames_round_trip() {
        round_trip(Message::OpenSession {
            session: 9,
            modules: 5,
            spec: SpecSource::Named("avoc".into()),
        });
        round_trip(Message::OpenSession {
            session: u64::MAX,
            modules: 0,
            spec: SpecSource::Inline("{\"algorithm_name\": \"AVOC\"}".into()),
        });
        round_trip(Message::CloseSession { session: 3 });
        round_trip(Message::SessionReading {
            session: 12,
            module: ModuleId::new(2),
            round: 400,
            value: -17.5,
        });
        round_trip(Message::SessionResult {
            session: 12,
            round: 400,
            value: Some(18.25),
            voted: true,
        });
        round_trip(Message::SessionResult {
            session: 1,
            round: 0,
            value: None,
            voted: false,
        });
        round_trip(Message::Error {
            session: 7,
            message: "unknown spec `nope`".into(),
        });
        round_trip(Message::Error {
            session: 0,
            message: String::new(),
        });
    }

    #[test]
    fn truncated_open_session_is_rejected_not_panicked() {
        let frame = Message::OpenSession {
            session: 1,
            modules: 3,
            spec: SpecSource::Named("avoc".into()),
        }
        .encode();
        // Rewrite the outer length to chop the name off mid-string: the
        // decoder must surface BadLength, consuming the frame.
        let cut = frame.len() - 2;
        let mut buf = BytesMut::from(&frame[..cut]);
        let payload_len = (cut - 4) as u32;
        buf[0..4].copy_from_slice(&payload_len.to_be_bytes());
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength { tag: 5, .. })
        ));
        assert!(buf.is_empty(), "bad frame must be consumed for resync");
    }

    #[test]
    fn incomplete_frames_do_not_consume() {
        let frame = Message::Shutdown.encode();
        let mut buf = BytesMut::from(&frame[..frame.len() - 1]);
        let before = buf.len();
        assert_eq!(Message::decode(&mut buf), Err(DecodeError::Incomplete));
        assert_eq!(buf.len(), before);
    }

    #[test]
    fn stream_of_frames_decodes_in_order() {
        let mut buf = BytesMut::new();
        let msgs = [
            Message::Reading {
                module: ModuleId::new(0),
                round: 1,
                value: 18.5,
            },
            Message::Heartbeat {
                module: ModuleId::new(1),
            },
            Message::Shutdown,
        ];
        for m in &msgs {
            buf.extend_from_slice(&m.encode());
        }
        for m in &msgs {
            assert_eq!(Message::decode(&mut buf).unwrap(), *m);
        }
        assert_eq!(Message::decode(&mut buf), Err(DecodeError::Incomplete));
    }

    #[test]
    fn unknown_tag_consumes_and_errors() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u8(99);
        assert_eq!(Message::decode(&mut buf), Err(DecodeError::UnknownTag(99)));
        assert!(buf.is_empty(), "bad frame must be consumed for resync");
    }

    #[test]
    fn bad_length_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(2); // Shutdown must be exactly 1 byte
        buf.put_u8(TAG_SHUTDOWN);
        buf.put_u8(0);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_SHUTDOWN,
                len: 2
            })
        ));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_buffering() {
        // An 8-byte header claiming a ~4 GiB frame must fail immediately,
        // not leave the reader accumulating bytes toward it.
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        buf.put_u8(TAG_OPEN_SESSION);
        let before = buf.len();
        assert_eq!(
            Message::decode(&mut buf),
            Err(DecodeError::FrameTooLarge {
                len: u32::MAX as usize
            })
        );
        assert_eq!(before, buf.len(), "nothing to resync past: stream is dead");

        // One byte over the cap fails; exactly at the cap merely waits for
        // the rest of the frame.
        let mut over = BytesMut::new();
        over.put_u32(MAX_FRAME_LEN as u32 + 1);
        assert!(matches!(
            Message::decode(&mut over),
            Err(DecodeError::FrameTooLarge { .. })
        ));
        let mut at_cap = BytesMut::new();
        at_cap.put_u32(MAX_FRAME_LEN as u32);
        assert_eq!(Message::decode(&mut at_cap), Err(DecodeError::Incomplete));
    }

    #[test]
    fn feed_batch_round_trips() {
        round_trip(Message::FeedBatch {
            session: 12,
            readings: vec![
                BatchReading {
                    module: ModuleId::new(0),
                    round: 7,
                    value: 18.5,
                },
                BatchReading {
                    module: ModuleId::new(1),
                    round: 7,
                    value: -0.25,
                },
                BatchReading {
                    module: ModuleId::new(u32::MAX),
                    round: u64::MAX,
                    value: f64::MIN_POSITIVE,
                },
            ],
        });
    }

    #[test]
    fn largest_batch_fits_under_the_frame_cap() {
        let readings = vec![
            BatchReading {
                module: ModuleId::new(1),
                round: 2,
                value: 3.0,
            };
            MAX_BATCH_READINGS
        ];
        let msg = Message::FeedBatch {
            session: 1,
            readings,
        };
        let frame = msg.encode();
        assert!(frame.len() - 4 <= MAX_FRAME_LEN);
        let mut buf = BytesMut::from(&frame[..]);
        assert_eq!(Message::decode(&mut buf).unwrap(), msg);
    }

    #[test]
    fn empty_batch_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(13); // header only, count = 0
        buf.put_u8(TAG_FEED_BATCH);
        buf.put_u64(1);
        buf.put_u32(0);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_FEED_BATCH,
                ..
            })
        ));
        assert!(buf.is_empty(), "bad frame must be consumed for resync");
    }

    #[test]
    fn batch_count_must_match_frame_length() {
        // A count claiming more readings than the frame carries (the
        // allocation-fishing shape) is rejected without over-reading.
        let mut hostile = BytesMut::new();
        hostile.put_u32(13 + 20); // room for one reading ...
        hostile.put_u8(TAG_FEED_BATCH);
        hostile.put_u64(9);
        hostile.put_u32(50_000); // ... claiming fifty thousand
        hostile.put_u32(0);
        hostile.put_u64(0);
        hostile.put_f64(1.0);
        assert!(matches!(
            Message::decode(&mut hostile),
            Err(DecodeError::BadLength {
                tag: TAG_FEED_BATCH,
                ..
            })
        ));

        // A truncated batch (length cut mid-reading) is rejected too.
        let frame = Message::FeedBatch {
            session: 2,
            readings: vec![
                BatchReading {
                    module: ModuleId::new(0),
                    round: 0,
                    value: 1.0,
                },
                BatchReading {
                    module: ModuleId::new(1),
                    round: 0,
                    value: 2.0,
                },
            ],
        }
        .encode();
        let cut = frame.len() - 6;
        let mut buf = BytesMut::from(&frame[..cut]);
        buf[0..4].copy_from_slice(&((cut - 4) as u32).to_be_bytes());
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_FEED_BATCH,
                ..
            })
        ));
        assert!(buf.is_empty(), "bad frame must be consumed for resync");
    }

    #[test]
    fn resume_frames_round_trip() {
        round_trip(Message::ResumeSession {
            session: 42,
            modules: 5,
            spec: SpecSource::Named("avoc".into()),
            token: u64::MAX,
            last_acked: Some(17),
        });
        round_trip(Message::ResumeSession {
            session: 0,
            modules: 0,
            spec: SpecSource::Inline("{\"algorithm_name\": \"AVOC\"}".into()),
            token: 0,
            last_acked: None,
        });
        round_trip(Message::Resumed {
            session: 42,
            high_round: Some(u64::MAX),
            warm: true,
        });
        round_trip(Message::Resumed {
            session: 1,
            high_round: None,
            warm: false,
        });
    }

    #[test]
    fn resume_session_bad_flag_and_truncation_are_rejected() {
        // Flag bytes other than 0/1 reject the frame.
        let frame = Message::ResumeSession {
            session: 1,
            modules: 2,
            spec: SpecSource::Named("avoc".into()),
            token: 9,
            last_acked: None,
        }
        .encode();
        let mut buf = BytesMut::from(&frame[..]);
        buf[4 + 1 + 8 + 4 + 8] = 2; // the acked flag
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_RESUME_SESSION,
                ..
            })
        ));
        assert!(buf.is_empty(), "bad frame must be consumed for resync");

        // A frame whose length cuts the spec name off mid-string.
        let cut = frame.len() - 2;
        let mut buf = BytesMut::from(&frame[..cut]);
        buf[0..4].copy_from_slice(&((cut - 4) as u32).to_be_bytes());
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_RESUME_SESSION,
                ..
            })
        ));
        assert!(buf.is_empty());

        // A claimed acked round with no bytes behind it (flag says 1 but
        // the length only covers the no-acked layout).
        let mut hostile = BytesMut::new();
        hostile.put_u32(27);
        hostile.put_u8(TAG_RESUME_SESSION);
        hostile.put_u64(1); // session
        hostile.put_u32(1); // modules
        hostile.put_u64(2); // token
        hostile.put_u8(1); // "an acked round follows" ...
        hostile.put_u8(SPEC_NAMED); // ... but the spec starts instead
        hostile.put_u32(0);
        assert!(matches!(
            Message::decode(&mut hostile),
            Err(DecodeError::BadLength {
                tag: TAG_RESUME_SESSION,
                ..
            })
        ));
        assert!(hostile.is_empty());
    }

    #[test]
    fn resume_session_trailing_bytes_are_rejected() {
        let frame = Message::ResumeSession {
            session: 3,
            modules: 1,
            spec: SpecSource::Named("a".into()),
            token: 4,
            last_acked: Some(0),
        }
        .encode();
        // Re-encode with two stray bytes inside the declared length.
        let mut buf = BytesMut::new();
        buf.put_u32((frame.len() - 4 + 2) as u32);
        buf.extend_from_slice(&frame[4..]);
        buf.put_u8(0xAA);
        buf.put_u8(0xBB);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_RESUME_SESSION,
                ..
            })
        ));
        assert!(buf.is_empty());
    }

    #[test]
    fn resumed_bad_layouts_are_rejected() {
        // Wrong overall length.
        let mut buf = BytesMut::new();
        buf.put_u32(10);
        buf.put_u8(TAG_RESUMED);
        buf.put_u64(1);
        buf.put_u8(0);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_RESUMED,
                ..
            })
        ));
        // Flag byte 2 with the long layout.
        let frame = Message::Resumed {
            session: 1,
            high_round: Some(3),
            warm: true,
        }
        .encode();
        let mut buf = BytesMut::from(&frame[..]);
        buf[4 + 1 + 8] = 2;
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_RESUMED,
                ..
            })
        ));
        // Flag 0 (no round) inside the long layout leaves trailing bytes.
        let mut buf = BytesMut::from(&frame[..]);
        buf[4 + 1 + 8] = 0;
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_RESUMED,
                ..
            })
        ));
    }

    #[test]
    fn result_batch_round_trips() {
        round_trip(Message::ResultBatch {
            session: 12,
            results: vec![
                BatchResult {
                    round: 7,
                    value: Some(18.5),
                    voted: true,
                },
                BatchResult {
                    round: 8,
                    value: None,
                    voted: false,
                },
                BatchResult {
                    round: u64::MAX,
                    value: Some(f64::MIN_POSITIVE),
                    voted: false,
                },
            ],
        });
    }

    #[test]
    fn largest_result_batch_fits_under_the_frame_cap() {
        let results = vec![
            BatchResult {
                round: 3,
                value: Some(1.5),
                voted: true,
            };
            MAX_BATCH_RESULTS
        ];
        let msg = Message::ResultBatch {
            session: 1,
            results,
        };
        let frame = msg.encode();
        assert!(frame.len() - 4 <= MAX_FRAME_LEN);
        let mut buf = BytesMut::from(&frame[..]);
        assert_eq!(Message::decode(&mut buf).unwrap(), msg);
    }

    #[test]
    fn empty_result_batch_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(13); // header only, count = 0
        buf.put_u8(TAG_RESULT_BATCH);
        buf.put_u64(1);
        buf.put_u32(0);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_RESULT_BATCH,
                ..
            })
        ));
        assert!(buf.is_empty(), "bad frame must be consumed for resync");
    }

    #[test]
    fn result_batch_count_must_match_frame_length() {
        // A hostile count claiming more results than the frame carries.
        let mut hostile = BytesMut::new();
        hostile.put_u32(13 + 17); // room for one result ...
        hostile.put_u8(TAG_RESULT_BATCH);
        hostile.put_u64(9);
        hostile.put_u32(50_000); // ... claiming fifty thousand
        hostile.put_u64(0);
        hostile.put_u8(1);
        hostile.put_f64(1.0);
        assert!(matches!(
            Message::decode(&mut hostile),
            Err(DecodeError::BadLength {
                tag: TAG_RESULT_BATCH,
                ..
            })
        ));
        assert!(hostile.is_empty());

        // Truncation mid-entry is rejected too.
        let frame = Message::ResultBatch {
            session: 2,
            results: vec![
                BatchResult {
                    round: 0,
                    value: Some(1.0),
                    voted: true,
                },
                BatchResult {
                    round: 1,
                    value: Some(2.0),
                    voted: true,
                },
            ],
        }
        .encode();
        let cut = frame.len() - 5;
        let mut buf = BytesMut::from(&frame[..cut]);
        buf[0..4].copy_from_slice(&((cut - 4) as u32).to_be_bytes());
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_RESULT_BATCH,
                ..
            })
        ));
        assert!(buf.is_empty(), "bad frame must be consumed for resync");
    }

    #[test]
    fn result_batch_rejects_bad_flags_and_noncanonical_filler() {
        let frame = Message::ResultBatch {
            session: 1,
            results: vec![BatchResult {
                round: 5,
                value: None,
                voted: true,
            }],
        }
        .encode();
        // Flag bits beyond 0/1 reject the frame.
        let mut buf = BytesMut::from(&frame[..]);
        buf[4 + 13 + 8] = 4;
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_RESULT_BATCH,
                ..
            })
        ));
        assert!(buf.is_empty());

        // A skipped round with nonzero value bits is non-canonical filler.
        let mut buf = BytesMut::from(&frame[..]);
        buf[4 + 13 + 8 + 1 + 7] = 1; // last byte of the value field
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_RESULT_BATCH,
                ..
            })
        ));
        assert!(buf.is_empty());
    }

    #[test]
    fn encode_into_matches_encode_and_appends() {
        // encode_into on a dirty buffer appends a frame byte-identical to
        // encode(), leaving the existing bytes alone.
        let msgs = [
            Message::Shutdown,
            Message::SessionResult {
                session: 3,
                round: 9,
                value: Some(-2.5),
                voted: true,
            },
            Message::ResultBatch {
                session: 4,
                results: vec![BatchResult {
                    round: 1,
                    value: None,
                    voted: false,
                }],
            },
        ];
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"prefix");
        let mut expected = b"prefix".to_vec();
        for m in &msgs {
            m.encode_into(&mut buf);
            expected.extend_from_slice(&m.encode());
        }
        assert_eq!(&buf[..], &expected[..]);
    }

    #[test]
    fn encode_feed_batch_into_matches_the_enum_arm() {
        let readings = vec![
            BatchReading {
                module: ModuleId::new(0),
                round: 7,
                value: 18.5,
            },
            BatchReading {
                module: ModuleId::new(3),
                round: 8,
                value: -0.25,
            },
        ];
        let mut via_slice = BytesMut::new();
        Message::encode_feed_batch_into(5, &readings, &mut via_slice);
        let via_enum = Message::FeedBatch {
            session: 5,
            readings,
        }
        .encode();
        assert_eq!(&via_slice[..], &via_enum[..]);
    }

    #[test]
    fn stats_frames_round_trip() {
        round_trip(Message::StatsRequest);
        round_trip(Message::StatsReply {
            json: "{\"rounds_fused\": 42}".into(),
        });
        round_trip(Message::StatsReply {
            json: String::new(),
        });
    }

    #[test]
    fn stats_reply_rejects_truncation_and_trailing_bytes() {
        let frame = Message::StatsReply {
            json: "{\"ok\": true}".into(),
        }
        .encode();
        // Length cut mid-string.
        let cut = frame.len() - 3;
        let mut buf = BytesMut::from(&frame[..cut]);
        buf[0..4].copy_from_slice(&((cut - 4) as u32).to_be_bytes());
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_STATS_REPLY,
                ..
            })
        ));
        assert!(buf.is_empty(), "bad frame must be consumed for resync");

        // Stray bytes after the string inside the declared length.
        let mut buf = BytesMut::new();
        buf.put_u32((frame.len() - 4 + 1) as u32);
        buf.extend_from_slice(&frame[4..]);
        buf.put_u8(0xCC);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_STATS_REPLY,
                ..
            })
        ));
        assert!(buf.is_empty());

        // StatsRequest carries nothing but its tag.
        let mut buf = BytesMut::new();
        buf.put_u32(2);
        buf.put_u8(TAG_STATS_REQUEST);
        buf.put_u8(0);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_STATS_REQUEST,
                ..
            })
        ));
    }

    #[test]
    fn nan_values_survive_the_wire() {
        let frame = Message::Reading {
            module: ModuleId::new(1),
            round: 0,
            value: f64::NAN,
        }
        .encode();
        let mut buf = BytesMut::from(&frame[..]);
        match Message::decode(&mut buf).unwrap() {
            Message::Reading { value, .. } => assert!(value.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cluster_frames_round_trip() {
        round_trip(Message::Redirect {
            session: 7,
            epoch: 3,
            addr: "127.0.0.1:4100".into(),
        });
        round_trip(Message::Redirect {
            session: u64::MAX,
            epoch: 0,
            addr: String::new(),
        });
        round_trip(Message::ExportSession {
            session: 9,
            target_node: 2,
            epoch: 5,
            auth: 0xC0FFEE,
            target_addr: "10.0.0.2:4000".into(),
        });
        round_trip(Message::SessionState {
            session: 9,
            epoch: 4,
            auth: u64::MAX,
            meta: b"avoc-session-meta v1\n".to_vec(),
            wal: vec![0u8, 0xFF, 0x13, 0x37],
        });
        round_trip(Message::SessionState {
            session: 0,
            epoch: 0,
            auth: 0,
            meta: Vec::new(),
            wal: Vec::new(),
        });
    }

    #[test]
    fn redirect_rejects_truncation_and_trailing_bytes() {
        let frame = Message::Redirect {
            session: 1,
            epoch: 2,
            addr: "127.0.0.1:4100".into(),
        }
        .encode();
        // Length cut mid-address.
        let cut = frame.len() - 3;
        let mut buf = BytesMut::from(&frame[..cut]);
        buf[0..4].copy_from_slice(&((cut - 4) as u32).to_be_bytes());
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_REDIRECT,
                ..
            })
        ));
        assert!(buf.is_empty(), "bad frame must be consumed for resync");

        // Stray bytes after the address inside the declared length.
        let mut buf = BytesMut::new();
        buf.put_u32((frame.len() - 4 + 1) as u32);
        buf.extend_from_slice(&frame[4..]);
        buf.put_u8(0xCC);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_REDIRECT,
                ..
            })
        ));
        assert!(buf.is_empty());

        // Non-UTF-8 address bytes.
        let mut buf = BytesMut::new();
        buf.put_u32(1 + 8 + 8 + 4 + 2);
        buf.put_u8(TAG_REDIRECT);
        buf.put_u64(1);
        buf.put_u64(2);
        buf.put_u32(2);
        buf.put_u8(0xFF);
        buf.put_u8(0xFE);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_REDIRECT,
                ..
            })
        ));
    }

    #[test]
    fn session_state_rejects_lying_blob_lengths() {
        let good = Message::SessionState {
            session: 5,
            epoch: 1,
            auth: 7,
            meta: vec![1, 2, 3],
            wal: vec![4, 5],
        }
        .encode();

        // Meta blob length claiming past the end of the frame.
        let mut buf = BytesMut::from(&good[..]);
        // meta length field sits after len(4) + tag(1) + session(8) +
        // epoch(8) + auth(8).
        buf[29..33].copy_from_slice(&1000u32.to_be_bytes());
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_SESSION_STATE,
                ..
            })
        ));
        assert!(buf.is_empty(), "bad frame must be consumed for resync");

        // Meta blob length lying *short*: the leftover bytes shift into the
        // wal length and leave trailing garbage — rejected either way.
        let mut buf = BytesMut::from(&good[..]);
        buf[29..33].copy_from_slice(&1u32.to_be_bytes());
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_SESSION_STATE,
                ..
            })
        ));

        // Frame chopped mid-wal with the outer length rewritten to match.
        let cut = good.len() - 1;
        let mut buf = BytesMut::from(&good[..cut]);
        buf[0..4].copy_from_slice(&((cut - 4) as u32).to_be_bytes());
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_SESSION_STATE,
                ..
            })
        ));

        // Trailing bytes after both blobs inside the declared length.
        let mut buf = BytesMut::new();
        buf.put_u32((good.len() - 4 + 1) as u32);
        buf.extend_from_slice(&good[4..]);
        buf.put_u8(0xAB);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_SESSION_STATE,
                ..
            })
        ));

        // Too short to hold even the fixed header + two length fields.
        let mut buf = BytesMut::new();
        buf.put_u32(1 + 8 + 8 + 8 + 4);
        buf.put_u8(TAG_SESSION_STATE);
        buf.put_u64(5);
        buf.put_u64(1);
        buf.put_u64(7);
        buf.put_u32(0);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_SESSION_STATE,
                ..
            })
        ));
    }

    #[test]
    fn export_session_rejects_truncation() {
        let frame = Message::ExportSession {
            session: 3,
            target_node: 1,
            epoch: 2,
            auth: 9,
            target_addr: "127.0.0.1:4200".into(),
        }
        .encode();
        let cut = frame.len() - 5;
        let mut buf = BytesMut::from(&frame[..cut]);
        buf[0..4].copy_from_slice(&((cut - 4) as u32).to_be_bytes());
        assert!(matches!(
            Message::decode(&mut buf),
            Err(DecodeError::BadLength {
                tag: TAG_EXPORT_SESSION,
                ..
            })
        ));
        assert!(buf.is_empty());
    }
}
