//! Re-entrant streaming frame decoding for non-blocking reads.
//!
//! The blocking servers fed [`Message::decode`] straight from a read
//! loop; a reactor instead receives arbitrary byte slivers — half a
//! length prefix here, three frames and a tail there — whenever the
//! socket turns readable. [`StreamDecoder`] owns the carry-over buffer
//! and re-enters the frame codec at every readiness event, yielding the
//! exact same frame sequence the one-shot decoder produces on the whole
//! stream (property-tested in this module).
//!
//! Hostility handling is sticky: a length prefix beyond
//! [`crate::message::MAX_FRAME_LEN`] poisons the decoder — the carry
//! buffer is released immediately and later [`StreamDecoder::extend`]
//! calls are discarded, so a hostile peer can neither grow daemon memory
//! nor resynchronise past the attack.

use crate::message::{DecodeError, Message};
use bytes::BytesMut;

/// What one [`StreamDecoder::next`] call produced.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeStep {
    /// A complete, well-formed frame.
    Frame(Message),
    /// A malformed frame was consumed whole; the stream resynchronises at
    /// the next frame boundary (carries the reason for accounting).
    Skipped(DecodeError),
    /// No complete frame is buffered — feed more bytes.
    Incomplete,
    /// A hostile length prefix was seen: the stream is dead, nothing is
    /// buffered, and every further byte is discarded. Sticky.
    Dead(DecodeError),
}

/// The per-connection streaming decoder: extend with whatever the socket
/// yields, then pull [`DecodeStep`]s until [`DecodeStep::Incomplete`].
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: BytesMut,
    poisoned: Option<DecodeError>,
}

impl StreamDecoder {
    /// An empty decoder.
    pub fn new() -> StreamDecoder {
        StreamDecoder {
            buf: BytesMut::with_capacity(4096),
            poisoned: None,
        }
    }

    /// Appends bytes read off the socket. Discarded (not buffered) once
    /// the decoder is poisoned.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.poisoned.is_none() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Decodes the next frame out of the carry buffer.
    pub fn next_frame(&mut self) -> DecodeStep {
        if let Some(e) = self.poisoned.clone() {
            return DecodeStep::Dead(e);
        }
        match Message::decode(&mut self.buf) {
            Ok(msg) => DecodeStep::Frame(msg),
            Err(DecodeError::Incomplete) => DecodeStep::Incomplete,
            Err(e @ DecodeError::FrameTooLarge { .. }) => {
                // Fatal and non-consuming: drop the buffer *now* rather
                // than accumulate toward a multi-GiB frame that may never
                // arrive.
                self.buf = BytesMut::new();
                self.poisoned = Some(e.clone());
                DecodeStep::Dead(e)
            }
            Err(e) => DecodeStep::Skipped(e),
        }
    }

    /// Bytes currently carried between readiness events.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether a hostile frame killed this stream.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MAX_FRAME_LEN;
    use avoc_core::ModuleId;
    use proptest::prelude::*;

    /// The reference: one-shot decoding of the whole stream with the raw
    /// codec, recording every step the server loop would take.
    fn one_shot(stream: &[u8]) -> Vec<DecodeStep> {
        let mut buf = BytesMut::from(stream);
        let mut steps = Vec::new();
        loop {
            match Message::decode(&mut buf) {
                Ok(m) => steps.push(DecodeStep::Frame(m)),
                Err(DecodeError::Incomplete) => break,
                Err(e @ DecodeError::FrameTooLarge { .. }) => {
                    steps.push(DecodeStep::Dead(e));
                    break;
                }
                Err(e) => steps.push(DecodeStep::Skipped(e)),
            }
        }
        steps
    }

    /// Streaming decoding with the given chunking.
    fn streamed(stream: &[u8], cuts: &[usize]) -> (Vec<DecodeStep>, StreamDecoder) {
        let mut dec = StreamDecoder::new();
        let mut steps = Vec::new();
        let mut consumed = 0;
        let feed = |dec: &mut StreamDecoder, steps: &mut Vec<DecodeStep>, chunk: &[u8]| {
            dec.extend(chunk);
            loop {
                match dec.next_frame() {
                    DecodeStep::Incomplete => break,
                    DecodeStep::Dead(e) => {
                        // Record once; a server drops the connection here.
                        if !matches!(steps.last(), Some(DecodeStep::Dead(_))) {
                            steps.push(DecodeStep::Dead(e));
                        }
                        break;
                    }
                    step => steps.push(step),
                }
            }
        };
        for &cut in cuts {
            let cut = cut.min(stream.len());
            if cut > consumed {
                feed(&mut dec, &mut steps, &stream[consumed..cut]);
                consumed = cut;
            }
        }
        if consumed < stream.len() {
            feed(&mut dec, &mut steps, &stream[consumed..]);
        }
        (steps, dec)
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Reading {
                module: ModuleId::new(3),
                round: 41,
                value: -2.75,
            },
            Message::Missing {
                module: ModuleId::new(1),
                round: 42,
            },
            Message::Heartbeat {
                module: ModuleId::new(2),
            },
            Message::SessionReading {
                session: 77,
                module: ModuleId::new(4),
                round: 43,
                value: 19.25,
            },
            Message::SessionResult {
                session: 77,
                round: 43,
                value: Some(19.0),
                voted: true,
            },
            Message::OpenSession {
                session: 5,
                modules: 4,
                spec: crate::message::SpecSource::Named("avoc".into()),
            },
            Message::CloseSession { session: 5 },
            Message::Error {
                session: 9,
                message: "mailbox full".into(),
            },
            Message::StatsRequest,
            Message::Shutdown,
        ]
    }

    #[test]
    fn byte_by_byte_matches_one_shot_for_every_frame_kind() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            let cuts: Vec<usize> = (1..bytes.len()).collect();
            let (steps, dec) = streamed(&bytes, &cuts);
            assert_eq!(steps, one_shot(&bytes), "frame {msg:?} split per byte");
            assert_eq!(dec.buffered(), 0, "no carry-over after a whole frame");
        }
    }

    #[test]
    fn hostile_length_prefix_dies_without_buffering() {
        let huge = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes();
        let mut dec = StreamDecoder::new();
        dec.extend(&huge);
        let step = dec.next_frame();
        assert!(matches!(
            step,
            DecodeStep::Dead(DecodeError::FrameTooLarge { .. })
        ));
        assert_eq!(dec.buffered(), 0, "hostile prefix is not retained");
        // The poisoning is sticky and feeding more never buffers.
        dec.extend(&vec![0u8; 1 << 16]);
        assert!(matches!(dec.next_frame(), DecodeStep::Dead(_)));
        assert_eq!(dec.buffered(), 0);
        assert!(dec.is_poisoned());
    }

    proptest! {
        /// Any frame sequence, cut at any split points — the streaming
        /// decoder yields the byte-identical step sequence the one-shot
        /// decoder produces, with no bytes left behind.
        #[test]
        fn random_splits_match_one_shot(
            picks in proptest::collection::vec(0usize..10, 1..8),
            cuts in proptest::collection::vec(0usize..4096, 0..12),
            trailing in proptest::collection::vec(any::<u8>(), 0..7),
        ) {
            let msgs = sample_messages();
            let mut stream = Vec::new();
            for &p in &picks {
                stream.extend_from_slice(&msgs[p].encode());
            }
            // A truncated tail exercises the Incomplete carry path.
            stream.extend_from_slice(&trailing);
            let mut cuts = cuts;
            cuts.sort_unstable();
            let (steps, dec) = streamed(&stream, &cuts);
            prop_assert_eq!(&steps, &one_shot(&stream));
            prop_assert!(dec.buffered() <= stream.len());
            if !dec.is_poisoned() {
                prop_assert!(dec.buffered() < 4 + trailing.len().max(4));
            }
        }

        /// Hostile prefixes injected mid-stream kill the stream at the
        /// same frame boundary regardless of chunking, and never buffer.
        #[test]
        fn random_splits_agree_on_hostile_streams(
            lead in 0usize..4,
            claimed in (MAX_FRAME_LEN as u32 + 1)..u32::MAX,
            cuts in proptest::collection::vec(0usize..256, 0..8),
        ) {
            let msgs = sample_messages();
            let mut stream = Vec::new();
            for m in msgs.iter().take(lead) {
                stream.extend_from_slice(&m.encode());
            }
            stream.extend_from_slice(&claimed.to_be_bytes());
            stream.extend_from_slice(&[7u8; 32]); // junk after the attack
            let mut cuts = cuts;
            cuts.sort_unstable();
            let (steps, dec) = streamed(&stream, &cuts);
            prop_assert_eq!(&steps, &one_shot(&stream));
            prop_assert!(matches!(steps.last(), Some(DecodeStep::Dead(_))));
            prop_assert_eq!(dec.buffered(), 0, "hostile stream buffers nothing");
        }
    }
}
