//! Reactor health metrics: how hard the event loop is working.

use avoc_obs::{Counter, Gauge, Histogram, Registry};

/// Live registry handles for one reactor. Registration is idempotent —
/// re-registering under the same labels lands on the same cells, so the
/// serve daemon's counters snapshot and the reactor itself can share
/// them. All cells are relaxed atomics; recording adds no locks to the
/// event loop.
#[derive(Debug, Clone)]
pub struct ReactorMetrics {
    /// Sockets currently owned by the reactor (listener excluded).
    pub connections_open: Gauge,
    /// `epoll_wait`/`poll` returns — every wakeup of the event loop.
    pub epoll_wakeups: Counter,
    /// Readiness events dispatched. Divide by
    /// [`ReactorMetrics::epoll_wakeups`] for events per wakeup — the
    /// batching factor that makes a reactor cheaper than a thread per
    /// socket.
    pub events: Counter,
    /// Nanoseconds spent dispatching one wakeup's events (reads, frame
    /// decoding, handler calls, flushes) before the loop sleeps again.
    pub readiness_dispatch_ns: Histogram,
    /// Connections accepted since start.
    pub accepted: Counter,
    /// Connections closed because a peer stayed unwritable past the
    /// write deadline (the timer-wheel replacement for `SO_SNDTIMEO`).
    pub wedged_closed: Counter,
    /// Times the reactor paused accepting because the process ran out of
    /// file descriptors (`EMFILE`/`ENFILE`); each pause resumes on a
    /// timer once the emergency reserve re-arms.
    pub accept_pauses: Counter,
    /// Nanoseconds one full event-loop iteration spends working (from
    /// `epoll_wait` returning to the loop parking again — dispatch, dirty
    /// pumping, and timer expiry). Compared across `{reactor}` labels this
    /// exposes a hot or imbalanced reactor in a multi-reactor pool.
    pub loop_iter_ns: Histogram,
}

impl ReactorMetrics {
    /// Registers (or finds) the reactor cells under the standard
    /// `avoc_net_*` names with `labels`.
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        ReactorMetrics {
            connections_open: registry.gauge_with(
                "avoc_net_connections_open",
                "Sockets currently owned by the reactor.",
                labels,
            ),
            epoll_wakeups: registry.counter_with(
                "avoc_net_epoll_wakeups_total",
                "Event-loop wakeups (epoll_wait/poll returns).",
                labels,
            ),
            events: registry.counter_with(
                "avoc_net_reactor_events_total",
                "Readiness events dispatched; divide by avoc_net_epoll_wakeups_total \
                 for events per wakeup.",
                labels,
            ),
            readiness_dispatch_ns: registry.latency_histogram_with(
                "avoc_net_readiness_dispatch_ns",
                "Nanoseconds dispatching one wakeup's readiness events.",
                labels,
            ),
            accepted: registry.counter_with(
                "avoc_net_connections_accepted_total",
                "Connections accepted by the reactor.",
                labels,
            ),
            wedged_closed: registry.counter_with(
                "avoc_net_wedged_closed_total",
                "Connections closed for staying unwritable past the write deadline.",
                labels,
            ),
            accept_pauses: registry.counter_with(
                "avoc_net_accept_pauses_total",
                "Times the reactor paused accepting on fd exhaustion.",
                labels,
            ),
            loop_iter_ns: registry.latency_histogram_with(
                "avoc_net_loop_iter_ns",
                "Nanoseconds of work per event-loop iteration (wakeup to park).",
                labels,
            ),
        }
    }
}
