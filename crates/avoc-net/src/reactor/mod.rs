//! The readiness-based I/O core: a hand-rolled epoll reactor, sharded
//! across cores.
//!
//! Each reactor thread owns a share of the data-plane sockets — its own
//! listener (or a handoff inbox), a self-wake pipe, and every connection
//! pinned to it — and multiplexes them through level-triggered readiness
//! (epoll on Linux, `poll(2)` fallback; see [`poller`]). This retires the
//! daemon's thread-per-connection model: connection counts no longer add
//! threads, wakeups batch many sockets per syscall, and an idle daemon
//! makes *zero* syscalls (each loop parks in `epoll_wait` with no timeout
//! unless a deadline is armed).
//!
//! [`spawn`] runs the classic single reactor. [`spawn_pool`] runs R of
//! them ([`ReactorPool`]), each with its own epoll instance, slab, timer
//! wheel, and wake pipe; nothing readiness-related is shared between
//! them. Listener distribution prefers `SO_REUSEPORT` (one listener per
//! reactor, the kernel load-balances handshakes); where that is
//! unavailable — non-Linux, `AVOC_FORCE_POLL` poll mode, or a failed
//! reuseport bind — reactor 0 owns the single listener and hands accepted
//! sockets round-robin to its peers through their wake pipes. Either way
//! a connection is **pinned to its reactor for life**: all of its
//! transport state stays thread-local and its [`ConnWaker`] routes to the
//! owning reactor's pipe, so producers never need to know the pool
//! exists.
//!
//! The division of labour:
//!
//! * the **reactor** (this module) does transport: non-blocking accept,
//!   reads into the re-entrant [`StreamDecoder`], per-connection
//!   [`CorkedWriter`] flushing with `EWOULDBLOCK` parking and
//!   `EPOLLOUT` re-arming, and wedged-peer deadlines on a
//!   [timer wheel](timer);
//! * the [`Handler`] does protocol: it is handed each decoded
//!   [`Message`] and decides what to open, feed, and close;
//! * result producers (shard workers) stay on their own threads and
//!   enqueue outbound frames on a per-connection channel, then call
//!   [`ConnWaker::wake`] — the reactor drains the channel into the cork
//!   buffer and flushes on its next dispatch.
//!
//! Backpressure composes with the shard mailboxes unchanged: inbound
//! readings are routed synchronously from the dispatch loop, so a full
//! `Block`-mode mailbox pushes back on the reactor, which stops reading
//! sockets, which fills TCP windows — the kernel applies backpressure to
//! every peer at once. Outbound, a slow tenant fills its bounded channel
//! and its overflow is dropped and counted, exactly as before.

pub mod decoder;
mod metrics;
mod poller;
mod timer;

pub use decoder::{DecodeStep, StreamDecoder};
pub use metrics::ReactorMetrics;

use crate::cork::{CorkMetrics, CorkedWriter, FlushOutcome, DEFAULT_CORK_LIMIT};
use crate::message::Message;
use avoc_obs::Counter;
use crossbeam::channel::Receiver;
use parking_lot::Mutex;
use poller::Poller;
use std::io::{self, Read as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sysio::{Interest, WakePipe};
use timer::{TimerEntry, TimerWheel};

/// Registration token of the accept socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Registration token of the wake pipe's read end.
const TOKEN_WAKE: u64 = u64::MAX - 1;
/// Timer token that re-probes a paused accept loop after fd exhaustion.
const TOKEN_ACCEPT_RESUME: u64 = u64::MAX - 2;

/// How long a paused accept loop waits before probing for free fds.
const ACCEPT_RESUME_PROBE: Duration = Duration::from_millis(50);

/// Read chunk size per `read(2)`.
const READ_CHUNK: usize = 16 * 1024;
/// Reads per readiness event before yielding to other connections. A
/// firehose peer gets at most this much attention per dispatch; level
/// triggering re-reports it immediately if more is pending.
const MAX_READS_PER_EVENT: usize = 16;

/// Default wedged-peer deadline: how long a connection may stay
/// unwritable with output pending before the reactor closes it.
pub const DEFAULT_WRITE_DEADLINE: Duration = Duration::from_secs(5);

/// Accept-queue depth the reactor re-arms on its listener (clamped by the
/// kernel to `net.core.somaxconn`).
pub const DEFAULT_ACCEPT_BACKLOG: i32 = 1024;

/// What [`Handler::on_frame`] wants done with the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameVerdict {
    /// Keep serving.
    Continue,
    /// Drop the connection (protocol error, shutdown frame, …).
    Close,
}

/// The protocol half of a reactor: one instance serves every connection,
/// called only from the reactor thread (no locking needed inside).
pub trait Handler: Send + 'static {
    /// Per-connection protocol state (open session lists, reply sink, …).
    type Conn: Send;

    /// A connection was accepted. Returns its state and the outbound
    /// frame channel the reactor will drain; producers must call
    /// [`ConnWaker::wake`] after sending on it.
    fn on_open(&mut self, waker: ConnWaker) -> (Self::Conn, Receiver<Message>);

    /// One decoded inbound frame.
    fn on_frame(&mut self, conn: &mut Self::Conn, msg: Message) -> FrameVerdict;

    /// The connection is going away (EOF, error, hostile frame, wedged
    /// write deadline, or reactor shutdown). Called exactly once per
    /// connection, before its socket closes; outbound frames already
    /// queued are still flushed on a best-effort basis afterwards.
    fn on_close(&mut self, conn: Self::Conn);
}

/// Cross-thread wake-up list shared by every [`ConnWaker`] of a reactor.
#[derive(Debug)]
struct WakeShared {
    /// Tokens with pending outbound work, deduplicated by each waker's
    /// dirty flag.
    pending: Mutex<Vec<u64>>,
    /// Whether a wake byte is already in flight — collapses any number of
    /// producer wakes into one pipe write per dispatch cycle.
    armed: AtomicBool,
    /// Accepted sockets handed off by the pool's distributor reactor
    /// (single-listener fallback mode only); the owning reactor adopts
    /// them under the same disarm-then-take protocol as `pending`.
    inbox: Mutex<Vec<TcpStream>>,
    pipe: WakePipe,
}

impl WakeShared {
    fn new() -> io::Result<Arc<WakeShared>> {
        Ok(Arc::new(WakeShared {
            pending: Mutex::new(Vec::new()),
            armed: AtomicBool::new(false),
            inbox: Mutex::new(Vec::new()),
            pipe: WakePipe::new()?,
        }))
    }

    /// Disarm-then-take: a producer that pushes after the take must have
    /// swapped `armed` after our disarm, so it notifies the pipe and the
    /// next dispatch sees it.
    fn take_pending(&self) -> Vec<u64> {
        self.armed.store(false, Ordering::SeqCst);
        std::mem::take(&mut *self.pending.lock())
    }
}

/// Wakes the reactor for one connection's outbound queue. Cloneable and
/// cheap: a wake is one atomic swap when already pending, one list push
/// plus at most one pipe write otherwise.
#[derive(Debug, Clone)]
pub struct ConnWaker {
    token: u64,
    dirty: Arc<AtomicBool>,
    shared: Arc<WakeShared>,
}

impl ConnWaker {
    /// Tells the reactor this connection's outbound channel has work (or
    /// that a sender dropped — disconnection is also an event worth
    /// dispatching). Safe from any thread, never blocks.
    pub fn wake(&self) {
        if !self.dirty.swap(true, Ordering::AcqRel) {
            self.shared.pending.lock().push(self.token);
            if !self.shared.armed.swap(true, Ordering::AcqRel) {
                let _ = self.shared.pipe.notify();
            }
        }
    }

    /// Reactor-side: re-enable wakes before draining, so a send racing
    /// the drain re-marks the connection.
    fn clear_dirty(&self) {
        self.dirty.store(false, Ordering::Release);
    }
}

/// Tuning and instrumentation for [`spawn`].
#[derive(Debug, Default)]
pub struct ReactorConfig {
    /// Wedged-peer deadline ([`DEFAULT_WRITE_DEADLINE`] when `None`).
    pub write_deadline: Option<Duration>,
    /// Cork threshold per connection ([`DEFAULT_CORK_LIMIT`] when `None`).
    pub cork_limit: Option<usize>,
    /// Accept-queue depth re-armed on the listener at spawn
    /// ([`DEFAULT_ACCEPT_BACKLOG`] when `None`; the kernel clamps to
    /// `net.core.somaxconn`). `std`'s bind hardwires 128, which a
    /// many-hundred-connection storm overflows — the kernel then resets
    /// handshakes the clients believe completed.
    pub accept_backlog: Option<i32>,
    /// Pin the `poll(2)` backend even where epoll exists (the
    /// `AVOC_FORCE_POLL` environment variable does the same).
    pub force_poll: bool,
    /// Reactor health metrics.
    pub metrics: Option<ReactorMetrics>,
    /// Cells fed by every connection's corked writer.
    pub cork_metrics: Option<CorkMetrics>,
    /// Counts every byte read off data-plane sockets.
    pub bytes_received: Option<Counter>,
    /// Health plane the reactor reports its `accept` domain into: the
    /// domain goes `degraded` while accepting is paused on fd exhaustion
    /// and returns to `ok` once the emergency reserve re-arms.
    pub health: Option<avoc_obs::Health>,
}

/// A running reactor. Dropping the handle without calling
/// [`ReactorHandle::shutdown`] leaves the thread running (detached).
#[derive(Debug)]
pub struct ReactorHandle {
    stop: Arc<AtomicBool>,
    shared: Arc<WakeShared>,
    join: JoinHandle<()>,
    backend: &'static str,
    local_addr: SocketAddr,
}

impl ReactorHandle {
    /// The listener's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Which readiness backend the reactor selected (`"epoll"` or
    /// `"poll"`).
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// Stops the loop and joins the thread. Every live connection gets
    /// [`Handler::on_close`] and a best-effort bounded flush of its
    /// queued results (sockets are flipped back to blocking with the
    /// write deadline as timeout).
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.shared.pipe.notify();
        let _ = self.join.join();
    }
}

/// Binds nothing itself: takes an already-bound listener, moves it onto a
/// new `avoc-net-reactor` thread, and serves until
/// [`ReactorHandle::shutdown`].
///
/// # Errors
///
/// Propagates wake-pipe creation, non-blocking mode, and registration
/// failures.
pub fn spawn<H: Handler>(
    listener: TcpListener,
    handler: H,
    config: ReactorConfig,
) -> io::Result<ReactorHandle> {
    let local_addr = listener.local_addr()?;
    spawn_core(
        handler,
        config,
        CoreSetup {
            listener: Some(listener),
            shared: WakeShared::new()?,
            peers: Vec::new(),
            paused_listeners: Arc::new(AtomicUsize::new(0)),
            local_addr,
        },
    )
}

/// Everything one reactor thread needs beyond handler + config: its
/// listener (when it owns one), its wake-shared block, and — for the
/// handoff distributor — its peers' wake-shared blocks.
struct CoreSetup {
    listener: Option<TcpListener>,
    shared: Arc<WakeShared>,
    peers: Vec<Arc<WakeShared>>,
    paused_listeners: Arc<AtomicUsize>,
    local_addr: SocketAddr,
}

fn spawn_core<H: Handler>(
    handler: H,
    config: ReactorConfig,
    setup: CoreSetup,
) -> io::Result<ReactorHandle> {
    let CoreSetup {
        listener,
        shared,
        peers,
        paused_listeners,
        local_addr,
    } = setup;
    let mut poller = Poller::new(config.force_poll);
    let backend = poller.backend();
    if let Some(listener) = &listener {
        listener.set_nonblocking(true)?;
        // Best-effort: a listener the caller already tuned (or a platform
        // where re-listen fails) keeps its existing backlog.
        let _ = sysio::widen_backlog(
            listener.as_raw_fd(),
            config.accept_backlog.unwrap_or(DEFAULT_ACCEPT_BACKLOG),
        );
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    }
    poller.add(shared.pipe.read_fd(), TOKEN_WAKE, Interest::READ)?;
    let stop = Arc::new(AtomicBool::new(false));
    let core = Core {
        handler,
        poller,
        listener,
        shared: Arc::clone(&shared),
        peers,
        next_peer: 0,
        stop: Arc::clone(&stop),
        slots: Vec::new(),
        free: Vec::new(),
        timers: TimerWheel::new(Instant::now()),
        expired: Vec::new(),
        write_deadline: config.write_deadline.unwrap_or(DEFAULT_WRITE_DEADLINE),
        cork_limit: config.cork_limit.unwrap_or(DEFAULT_CORK_LIMIT),
        metrics: config.metrics,
        cork_metrics: config.cork_metrics,
        bytes_received: config.bytes_received,
        health: config.health,
        // One fd held in reserve: dropped on EMFILE so teardown paths can
        // still open sockets/files, re-armed before accepting resumes.
        fd_reserve: std::fs::File::open("/dev/null").ok(),
        accept_paused: false,
        paused_listeners,
    };
    let join = std::thread::Builder::new()
        .name("avoc-net-reactor".into())
        .spawn(move || core.run())?;
    Ok(ReactorHandle {
        stop,
        shared,
        join,
        backend,
        local_addr,
    })
}

/// A sharded data plane: R reactors behind one address. See the module
/// docs for the accept-distribution modes.
#[derive(Debug)]
pub struct ReactorPool {
    reactors: Vec<ReactorHandle>,
    local_addr: SocketAddr,
    backend: &'static str,
    accept_mode: &'static str,
}

impl ReactorPool {
    /// The address tenants connect to (every reactor serves it).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The readiness backend the reactors selected (`"epoll"`/`"poll"`).
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// How accepted connections reach their reactor: `"reuseport"` (one
    /// `SO_REUSEPORT` listener per reactor), `"handoff"` (reactor 0 owns
    /// the only listener and round-robins accepted sockets to peers), or
    /// `"single"` (one reactor, one listener).
    pub fn accept_mode(&self) -> &'static str {
        self.accept_mode
    }

    /// How many reactor threads the pool runs.
    pub fn reactor_count(&self) -> usize {
        self.reactors.len()
    }

    /// Stops every reactor and joins its thread; per-reactor shutdown
    /// semantics are exactly [`ReactorHandle::shutdown`].
    pub fn shutdown(self) {
        for handle in self.reactors {
            handle.shutdown();
        }
    }
}

/// Whether the poll backend is pinned — by config or the `AVOC_FORCE_POLL`
/// environment variable — mirroring [`poller::Poller::new`]'s selection.
fn poll_forced(config_force_poll: bool) -> bool {
    config_force_poll || std::env::var("AVOC_FORCE_POLL").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Binds `addr` and spawns `reactors` event-loop threads serving it
/// (clamped to at least 1).
///
/// On Linux with epoll, every reactor gets its own `SO_REUSEPORT`
/// listener and the kernel spreads handshakes across them. In poll mode,
/// off Linux, or when the reuseport bind fails, the pool falls back to a
/// single listener on reactor 0 that hands accepted sockets round-robin
/// to its peers. `handler_for(i)`/`config_for(i)` build each reactor's
/// protocol handler and tuning — handlers typically share state through
/// `Arc`s, configs typically differ only in per-reactor metric labels.
///
/// # Errors
///
/// Propagates bind, wake-pipe, and registration failures (any reactors
/// already spawned are shut down first).
pub fn spawn_pool<H, MkH, MkC>(
    addr: &str,
    reactors: usize,
    mut handler_for: MkH,
    mut config_for: MkC,
) -> io::Result<ReactorPool>
where
    H: Handler,
    MkH: FnMut(usize) -> H,
    MkC: FnMut(usize) -> ReactorConfig,
{
    use std::net::ToSocketAddrs;
    let r = reactors.max(1);
    let configs: Vec<ReactorConfig> = (0..r).map(&mut config_for).collect();
    let backlog = configs[0].accept_backlog.unwrap_or(DEFAULT_ACCEPT_BACKLOG);
    let bind_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
    })?;

    // Listener strategy. `poll(2)` has no per-fd ownership advantage and
    // is the portability fallback, so poll mode keeps the conservative
    // single-listener path — exactly as `AVOC_FORCE_POLL` pins the
    // backend itself.
    let mut accept_mode = "single";
    let mut listeners: Vec<Option<TcpListener>> = Vec::with_capacity(r);
    if r > 1 && !poll_forced(configs[0].force_poll) {
        if let Ok(first) = sysio::reuseport_listener(bind_addr, backlog) {
            // Port 0 resolved to a concrete port on the first bind; the
            // siblings must join that exact port's reuseport group.
            let concrete = first.local_addr()?;
            let mut group = vec![Some(first)];
            while group.len() < r {
                match sysio::reuseport_listener(concrete, backlog) {
                    Ok(l) => group.push(Some(l)),
                    Err(_) => break,
                }
            }
            if group.len() == r {
                accept_mode = "reuseport";
                listeners = group;
            }
            // A partial group is dropped whole (closing its fds) and the
            // pool falls back to handoff below.
        }
    }
    if listeners.is_empty() {
        listeners.push(Some(TcpListener::bind(bind_addr)?));
        listeners.resize_with(r, || None);
        if r > 1 {
            accept_mode = "handoff";
        }
    }
    let local_addr = listeners[0]
        .as_ref()
        .expect("reactor 0 listens")
        .local_addr()?;

    let shareds: Vec<Arc<WakeShared>> = (0..r)
        .map(|_| WakeShared::new())
        .collect::<io::Result<_>>()?;
    let paused_listeners = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::with_capacity(r);
    for (i, (listener, config)) in listeners.into_iter().zip(configs).enumerate() {
        // Only the handoff distributor fans out; reuseport reactors (and
        // every non-distributor) keep their accepted sockets local.
        let peers = if accept_mode == "handoff" && i == 0 {
            shareds[1..].to_vec()
        } else {
            Vec::new()
        };
        let setup = CoreSetup {
            listener,
            shared: Arc::clone(&shareds[i]),
            peers,
            paused_listeners: Arc::clone(&paused_listeners),
            local_addr,
        };
        match spawn_core(handler_for(i), config, setup) {
            Ok(h) => handles.push(h),
            Err(e) => {
                for h in handles {
                    h.shutdown();
                }
                return Err(e);
            }
        }
    }
    let backend = handles[0].backend();
    Ok(ReactorPool {
        reactors: handles,
        local_addr,
        backend,
        accept_mode,
    })
}

/// One live connection: transport state owned by the reactor thread.
struct Conn<C> {
    /// Owns the socket; reads go through [`CorkedWriter::get_mut`].
    writer: CorkedWriter<TcpStream>,
    decoder: StreamDecoder,
    out_rx: Receiver<Message>,
    state: C,
    waker: ConnWaker,
    /// Whether `EPOLLOUT` is currently armed (flush parked on a full
    /// socket).
    write_armed: bool,
    /// Live deadline generation; wheel entries with an older generation
    /// are cancelled timers.
    deadline_gen: u64,
}

enum SlotState<C> {
    Free,
    Live(Conn<C>),
    /// Socket closed, but shard-side senders may still hold the channel:
    /// keep draining (and discarding) until every sender drops, then
    /// free the slot. Holds no fd — FD hygiene does not wait on tenants.
    Draining {
        out_rx: Receiver<Message>,
        waker: ConnWaker,
    },
}

struct Slot<C> {
    /// Bumped on every reuse so stale events and timers can't touch a
    /// successor connection.
    gen: u32,
    state: SlotState<C>,
}

fn make_token(gen: u32, idx: usize) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

fn token_parts(token: u64) -> (u32, usize) {
    ((token >> 32) as u32, (token & 0xffff_ffff) as usize)
}

struct Core<H: Handler> {
    handler: H,
    poller: Poller,
    /// This reactor's accept socket. `None` for pool peers in handoff
    /// mode — they receive accepted sockets through their wake inbox.
    listener: Option<TcpListener>,
    shared: Arc<WakeShared>,
    /// Handoff-mode distributor only: the other reactors' wake-shared
    /// blocks, fed round-robin with accepted sockets. Empty everywhere
    /// else.
    peers: Vec<Arc<WakeShared>>,
    /// Round-robin cursor over `self` + `peers` for accept distribution.
    next_peer: usize,
    stop: Arc<AtomicBool>,
    slots: Vec<Slot<H::Conn>>,
    free: Vec<usize>,
    timers: TimerWheel,
    expired: Vec<TimerEntry>,
    write_deadline: Duration,
    cork_limit: usize,
    metrics: Option<ReactorMetrics>,
    cork_metrics: Option<CorkMetrics>,
    bytes_received: Option<Counter>,
    health: Option<avoc_obs::Health>,
    /// Emergency fd kept open so that hitting `EMFILE` never leaves the
    /// reactor unable to make progress; surrendered while accept is
    /// paused, reopened before resuming.
    fd_reserve: Option<std::fs::File>,
    /// Whether the listener is currently deregistered because the process
    /// ran out of file descriptors.
    accept_paused: bool,
    /// Pool-wide count of paused listeners: the shared health plane's
    /// `accept` domain stays degraded while *any* reactor is paused and
    /// recovers only when the last one resumes.
    paused_listeners: Arc<AtomicUsize>,
}

impl<H: Handler> Core<H> {
    fn run(mut self) {
        let mut events = Vec::new();
        loop {
            let timeout = if self.stop.load(Ordering::SeqCst) {
                0
            } else {
                self.timers.next_timeout_ms(Instant::now()).unwrap_or(-1)
            };
            let n = match self.poller.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => break, // poller broke: nothing sane left to do
            };
            if let Some(m) = &self.metrics {
                m.epoll_wakeups.inc();
                m.events.add(n as u64);
            }
            let t0 = Instant::now();
            for ev in &events {
                match ev.token {
                    TOKEN_WAKE => self.shared.pipe.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_event(
                        token,
                        ev.readable || ev.is_hangup || ev.is_error,
                        ev.writable,
                    ),
                }
            }
            if n > 0 {
                if let Some(m) = &self.metrics {
                    m.readiness_dispatch_ns
                        .record(t0.elapsed().as_nanos() as u64);
                }
            }
            self.process_dirty();
            self.expire_deadlines(Instant::now());
            if let Some(m) = &self.metrics {
                m.loop_iter_ns.record(t0.elapsed().as_nanos() as u64);
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        self.teardown();
    }

    fn accept_ready(&mut self) {
        loop {
            match sysio::fault::check(sysio::fault::Site::Accept) {
                None => {}
                Some(sysio::fault::Kind::Eintr) => continue,
                Some(sysio::fault::Kind::Eagain) => break,
                Some(sysio::fault::Kind::Emfile) => {
                    self.pause_accept();
                    return;
                }
                Some(_) => break,
            }
            let Some(listener) = &self.listener else {
                return; // handoff peer: nothing to accept on
            };
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Out of fds (EMFILE/ENFILE): accepting again would spin —
                // level triggering re-reports the pending handshake every
                // wakeup while the accept can never succeed. Deregister
                // the listener and come back on a timer instead.
                Err(e) if matches!(e.raw_os_error(), Some(23) | Some(24)) => {
                    self.pause_accept();
                    return;
                }
                // Other transient accept failures (aborted handshake):
                // skip this readiness event; level triggering retries.
                Err(_) => break,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            self.dispatch_accepted(stream);
        }
    }

    /// Routes one accepted socket to its reactor-for-life. With no peers
    /// (reuseport or single mode) that is always this reactor; the
    /// handoff distributor round-robins across itself and its peers,
    /// notifying the peer's wake pipe exactly like a producer does.
    fn dispatch_accepted(&mut self, stream: TcpStream) {
        if self.peers.is_empty() {
            self.register_stream(stream);
            return;
        }
        let slot = self.next_peer % (self.peers.len() + 1);
        self.next_peer = self.next_peer.wrapping_add(1);
        if slot == 0 {
            self.register_stream(stream);
            return;
        }
        let peer = &self.peers[slot - 1];
        peer.inbox.lock().push(stream);
        if !peer.armed.swap(true, Ordering::AcqRel) {
            let _ = peer.pipe.notify();
        }
    }

    /// Installs one prepared (non-blocking, nodelay) socket into a slot:
    /// the point where a connection becomes this reactor's, whether it
    /// came off the local listener or a handoff inbox.
    fn register_stream(&mut self, stream: TcpStream) {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    state: SlotState::Free,
                });
                self.slots.len() - 1
            }
        };
        let slot = &mut self.slots[idx];
        slot.gen = slot.gen.wrapping_add(1);
        let token = make_token(slot.gen, idx);
        let waker = ConnWaker {
            token,
            dirty: Arc::new(AtomicBool::new(false)),
            shared: Arc::clone(&self.shared),
        };
        let (state, out_rx) = self.handler.on_open(waker.clone());
        let mut writer = CorkedWriter::with_cork_limit(stream, self.cork_limit);
        if let Some(cm) = &self.cork_metrics {
            writer.set_metrics(cm.clone());
        }
        if self
            .poller
            .add(writer.get_ref().as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            // Registration failed: give the handler its close and drop
            // the socket; the slot stays free for the next accept.
            self.handler.on_close(state);
            self.free.push(idx);
            return;
        }
        self.slots[idx].state = SlotState::Live(Conn {
            writer,
            decoder: StreamDecoder::new(),
            out_rx,
            state,
            waker,
            write_armed: false,
            deadline_gen: 0,
        });
        if let Some(m) = &self.metrics {
            m.accepted.inc();
            m.connections_open.add(1);
        }
    }

    /// Stops accepting: deregisters the listener (so the pending
    /// handshake stops re-waking the loop), surrenders the emergency fd
    /// reserve to give close/teardown paths headroom, flags the health
    /// plane, and schedules a resume probe. Existing connections keep
    /// being served — fd exhaustion degrades admission, not service.
    fn pause_accept(&mut self) {
        if self.accept_paused {
            return;
        }
        let Some(listener) = &self.listener else {
            return; // handoff peer: no listener to pause
        };
        self.accept_paused = true;
        let _ = self.poller.remove(listener.as_raw_fd());
        self.fd_reserve = None;
        self.paused_listeners.fetch_add(1, Ordering::SeqCst);
        if let Some(m) = &self.metrics {
            m.accept_pauses.inc();
        }
        if let Some(h) = &self.health {
            h.set(
                "accept",
                avoc_obs::HealthLevel::Degraded,
                "out of file descriptors; accept paused, serving existing connections",
            );
        }
        self.schedule_accept_probe();
    }

    fn schedule_accept_probe(&mut self) {
        self.timers.schedule(
            Instant::now(),
            ACCEPT_RESUME_PROBE,
            TimerEntry {
                token: TOKEN_ACCEPT_RESUME,
                generation: 0,
            },
        );
    }

    /// Probes whether fds are available again: re-arms the emergency
    /// reserve and re-registers the listener. Either step failing means
    /// the process is still exhausted — stay paused and re-probe.
    fn resume_accept(&mut self) {
        if !self.accept_paused {
            return;
        }
        let Some(listener) = &self.listener else {
            return;
        };
        let Ok(reserve) = std::fs::File::open("/dev/null") else {
            self.schedule_accept_probe();
            return;
        };
        if self
            .poller
            .add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .is_err()
        {
            self.schedule_accept_probe();
            return;
        }
        self.fd_reserve = Some(reserve);
        self.accept_paused = false;
        // The shared `accept` domain recovers only when the *last* paused
        // listener in the pool resumes; a sibling still out of fds keeps
        // /healthz degraded.
        if self.paused_listeners.fetch_sub(1, Ordering::SeqCst) == 1 {
            if let Some(h) = &self.health {
                h.set("accept", avoc_obs::HealthLevel::Ok, "");
            }
        }
        // Catch up on handshakes that queued while paused; the listener's
        // readiness edge may have been consumed before the pause.
        self.accept_ready();
    }

    /// Dispatches one readiness event for a connection token. Stale
    /// tokens (slot since reused or freed) are ignored.
    fn conn_event(&mut self, token: u64, readable: bool, writable: bool) {
        let (gen, idx) = token_parts(token);
        let Some(slot) = self.slots.get(idx) else {
            return;
        };
        if slot.gen != gen || !matches!(slot.state, SlotState::Live(_)) {
            return;
        }
        if readable && !self.read_ready(idx) {
            return; // connection closed while reading
        }
        if writable {
            self.pump(idx);
        }
    }

    /// Reads until the socket runs dry (or the burst cap), feeding the
    /// streaming decoder and the handler. Returns `false` when the
    /// connection was closed.
    fn read_ready(&mut self, idx: usize) -> bool {
        let mut close = false;
        {
            let Core {
                handler,
                slots,
                bytes_received,
                ..
            } = &mut *self;
            let SlotState::Live(conn) = &mut slots[idx].state else {
                return false;
            };
            let mut chunk = [0u8; READ_CHUNK];
            'read: for _ in 0..MAX_READS_PER_EVENT {
                match sysio::fault::check(sysio::fault::Site::SockRead) {
                    None => {}
                    Some(sysio::fault::Kind::Eintr) => continue,
                    Some(sysio::fault::Kind::Eagain) => break,
                    Some(_) => {
                        close = true;
                        break;
                    }
                }
                let n = match conn.writer.get_mut().read(&mut chunk) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close = true;
                        break;
                    }
                };
                if let Some(c) = bytes_received {
                    c.add(n as u64);
                }
                conn.decoder.extend(&chunk[..n]);
                loop {
                    match conn.decoder.next_frame() {
                        DecodeStep::Frame(msg) => match handler.on_frame(&mut conn.state, msg) {
                            FrameVerdict::Continue => {}
                            FrameVerdict::Close => {
                                close = true;
                                break 'read;
                            }
                        },
                        DecodeStep::Skipped(_) => {}
                        DecodeStep::Incomplete => break,
                        // Hostile length prefix: the decoder has already
                        // shed its buffer; drop the connection.
                        DecodeStep::Dead(_) => {
                            close = true;
                            break 'read;
                        }
                    }
                }
                if n < chunk.len() {
                    break; // short read: the socket is drained
                }
            }
        }
        if close {
            self.close_live(idx);
            return false;
        }
        true
    }

    /// Drains a connection's outbound channel into its cork buffer and
    /// flushes what the socket accepts, managing `EPOLLOUT` interest and
    /// the wedged-peer deadline.
    fn pump(&mut self, idx: usize) {
        let mut dead = false;
        {
            let Core {
                slots,
                poller,
                timers,
                write_deadline,
                ..
            } = &mut *self;
            let Some(slot) = slots.get_mut(idx) else {
                return;
            };
            let token = make_token(slot.gen, idx);
            let SlotState::Live(conn) = &mut slot.state else {
                return;
            };
            conn.waker.clear_dirty();
            let before = conn.writer.stats().bytes;
            let mut blocked = false;
            loop {
                let mut pulled = false;
                while !conn.writer.is_corked_full() {
                    match conn.out_rx.try_recv() {
                        Ok(msg) => {
                            conn.writer.push(&msg);
                            pulled = true;
                        }
                        Err(_) => break,
                    }
                }
                if !conn.writer.has_pending() {
                    break;
                }
                // An injected EINTR is transparent here — the corked
                // writer's inner `write` already retries it; only EAGAIN
                // (park on EPOLLOUT) and hard errors change the outcome.
                let flushed = match sysio::fault::check(sysio::fault::Site::SockWrite) {
                    None | Some(sysio::fault::Kind::Eintr) => conn.writer.flush_nonblocking(),
                    Some(sysio::fault::Kind::Eagain) => Ok(FlushOutcome::Blocked),
                    Some(k) => Err(k.to_error()),
                };
                match flushed {
                    Ok(FlushOutcome::Drained) => {
                        if !pulled {
                            break;
                        }
                    }
                    Ok(FlushOutcome::Blocked) => {
                        blocked = true;
                        break;
                    }
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead {
                let fd = conn.writer.get_ref().as_raw_fd();
                if blocked {
                    let progressed = conn.writer.stats().bytes > before;
                    let newly_armed = !conn.write_armed;
                    if newly_armed {
                        conn.write_armed = true;
                        let _ = poller.modify(fd, token, Interest::READ_WRITE);
                    }
                    if newly_armed || progressed {
                        // Arm (or push back) the wedged-peer deadline: any
                        // byte of progress restarts the clock, mirroring
                        // the old per-write socket deadline.
                        conn.deadline_gen += 1;
                        timers.schedule(
                            Instant::now(),
                            *write_deadline,
                            TimerEntry {
                                token,
                                generation: conn.deadline_gen,
                            },
                        );
                    }
                } else if conn.write_armed {
                    conn.write_armed = false;
                    conn.deadline_gen += 1; // lazy-cancel the armed deadline
                    let _ = poller.modify(fd, token, Interest::READ);
                }
            }
        }
        if dead {
            self.close_live(idx);
        }
    }

    /// Services every token producers marked dirty since the last
    /// dispatch: live connections get a pump, draining slots shed
    /// residual frames and free once their last sender drops. Handoff
    /// inbox sockets are adopted here too — after the disarm in
    /// `take_pending`, so a distributor pushing concurrently re-arms the
    /// pipe and the next iteration picks its socket up.
    fn process_dirty(&mut self) {
        let pending = self.shared.take_pending();
        let adopted = std::mem::take(&mut *self.shared.inbox.lock());
        for stream in adopted {
            self.register_stream(stream);
        }
        for token in pending {
            let (gen, idx) = token_parts(token);
            let is_live = match self.slots.get(idx) {
                Some(slot) if slot.gen == gen => matches!(slot.state, SlotState::Live(_)),
                _ => continue,
            };
            if is_live {
                self.pump(idx);
            } else {
                self.drain_slot(idx);
            }
        }
    }

    /// Sheds residual frames on a draining slot; frees it once the last
    /// shard-side sender has dropped its sink clone.
    fn drain_slot(&mut self, idx: usize) {
        let slot = &mut self.slots[idx];
        let SlotState::Draining { out_rx, waker } = &mut slot.state else {
            return;
        };
        waker.clear_dirty();
        let freed = loop {
            match out_rx.try_recv() {
                Ok(_) => {} // tenant is gone; discard
                Err(crossbeam::channel::TryRecvError::Empty) => break false,
                Err(crossbeam::channel::TryRecvError::Disconnected) => break true,
            }
        };
        if freed {
            slot.state = SlotState::Free;
            self.free.push(idx);
        }
    }

    fn expire_deadlines(&mut self, now: Instant) {
        let mut expired = std::mem::take(&mut self.expired);
        self.timers.advance(now, &mut expired);
        for entry in expired.drain(..) {
            if entry.token == TOKEN_ACCEPT_RESUME {
                self.resume_accept();
                continue;
            }
            let (gen, idx) = token_parts(entry.token);
            let Some(slot) = self.slots.get(idx) else {
                continue;
            };
            if slot.gen != gen {
                continue;
            }
            let SlotState::Live(conn) = &slot.state else {
                continue;
            };
            // Only the *latest* armed deadline counts; anything older was
            // cancelled by progress or a completed drain.
            if !conn.write_armed || conn.deadline_gen != entry.generation {
                continue;
            }
            if let Some(m) = &self.metrics {
                m.wedged_closed.inc();
            }
            self.close_live(idx);
        }
        self.expired = expired;
    }

    /// Tears one live connection down: deregisters and closes the socket
    /// *now* (FD hygiene never waits on tenants), gives the handler its
    /// `on_close`, then parks the slot in `Draining` until shard-side
    /// senders finish dropping their sink clones.
    fn close_live(&mut self, idx: usize) {
        let slot = &mut self.slots[idx];
        let conn = match std::mem::replace(&mut slot.state, SlotState::Free) {
            SlotState::Live(conn) => conn,
            other => {
                slot.state = other;
                return;
            }
        };
        let Conn {
            writer,
            out_rx,
            state,
            waker,
            ..
        } = conn;
        let _ = self.poller.remove(writer.get_ref().as_raw_fd());
        drop(writer); // closes the fd
        if let Some(m) = &self.metrics {
            m.connections_open.add(-1);
        }
        self.handler.on_close(state);
        // `on_close` sends Close/Detach to shards asynchronously — their
        // sink clones drop once processed. Drain whatever is already
        // queued; if every sender is gone, free the slot immediately.
        let freed = loop {
            match out_rx.try_recv() {
                Ok(_) => {}
                Err(crossbeam::channel::TryRecvError::Empty) => break false,
                Err(crossbeam::channel::TryRecvError::Disconnected) => break true,
            }
        };
        if freed {
            self.free.push(idx);
        } else {
            self.slots[idx].state = SlotState::Draining { out_rx, waker };
        }
    }

    /// Graceful exit: every live connection gets `on_close` (closing or
    /// detaching its sessions flushes their in-flight rounds), its socket
    /// flips back to blocking with the write deadline as timeout, and the
    /// outbound channel is drained through the cork until every producer
    /// is done — so results of rounds already fed still reach tenants, as
    /// they did with per-connection writer threads.
    fn teardown(mut self) {
        for idx in 0..self.slots.len() {
            let state = std::mem::replace(&mut self.slots[idx].state, SlotState::Free);
            match state {
                SlotState::Free => {}
                SlotState::Draining { out_rx, .. } => {
                    while out_rx.recv_timeout(self.write_deadline).is_ok() {}
                }
                SlotState::Live(conn) => {
                    let Conn {
                        mut writer,
                        out_rx,
                        state,
                        ..
                    } = conn;
                    let _ = self.poller.remove(writer.get_ref().as_raw_fd());
                    if let Some(m) = &self.metrics {
                        m.connections_open.add(-1);
                    }
                    self.handler.on_close(state);
                    let _ = writer.get_ref().set_nonblocking(false);
                    let _ = writer
                        .get_ref()
                        .set_write_timeout(Some(self.write_deadline));
                    let mut sock_ok = true;
                    // Loop ends when all senders are done (or stuck past
                    // the deadline).
                    while let Ok(msg) = out_rx.recv_timeout(self.write_deadline) {
                        if sock_ok {
                            writer.push(&msg);
                            if writer.is_corked_full() {
                                sock_ok = writer.flush().is_ok();
                            }
                        }
                    }
                    if sock_ok {
                        let _ = writer.flush();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avoc_core::ModuleId;
    use crossbeam::channel::{bounded, Sender};
    use std::io::Write as _;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that accept connections: fault plans target the
    /// whole process, so a concurrently-running reactor would otherwise
    /// steal (or trip over) an injected accept fault.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A protocol stub: echoes every `SessionReading` back as a
    /// `SessionResult` and counts closes.
    struct Echo {
        closes: Arc<AtomicU64>,
    }

    struct EchoConn {
        tx: Sender<Message>,
        waker: ConnWaker,
    }

    impl Handler for Echo {
        type Conn = EchoConn;

        fn on_open(&mut self, waker: ConnWaker) -> (EchoConn, Receiver<Message>) {
            let (tx, rx) = bounded(256);
            (EchoConn { tx, waker }, rx)
        }

        fn on_frame(&mut self, conn: &mut EchoConn, msg: Message) -> FrameVerdict {
            match msg {
                Message::SessionReading {
                    session,
                    round,
                    value,
                    ..
                } => {
                    let _ = conn.tx.try_send(Message::SessionResult {
                        session,
                        round,
                        value: Some(value),
                        voted: true,
                    });
                    conn.waker.wake();
                    FrameVerdict::Continue
                }
                Message::Shutdown => FrameVerdict::Close,
                _ => FrameVerdict::Continue,
            }
        }

        fn on_close(&mut self, _conn: EchoConn) {
            self.closes.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn run_echo_roundtrip(force_poll: bool) {
        let _gate = serial();
        let closes = Arc::new(AtomicU64::new(0));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = spawn(
            listener,
            Echo {
                closes: Arc::clone(&closes),
            },
            ReactorConfig {
                force_poll,
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            handle.backend(),
            if force_poll { "poll" } else { "epoll" },
            "backend selection"
        );

        let mut client = TcpStream::connect(handle.local_addr()).unwrap();
        // Send 100 readings, some split across arbitrary write boundaries.
        let mut wire = Vec::new();
        for round in 0..100u64 {
            wire.extend_from_slice(
                &Message::SessionReading {
                    session: 1,
                    module: ModuleId::new(0),
                    round,
                    value: round as f64,
                }
                .encode(),
            );
        }
        for chunk in wire.chunks(7) {
            client.write_all(chunk).unwrap();
        }
        // Collect the 100 echoes with the blocking one-shot decoder.
        let mut buf = bytes::BytesMut::new();
        let mut got = 0u64;
        let mut chunk = [0u8; 4096];
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        while got < 100 {
            let n = client.read(&mut chunk).expect("echoes arrive");
            assert!(n > 0, "server hung up early");
            buf.extend_from_slice(&chunk[..n]);
            loop {
                match Message::decode(&mut buf) {
                    Ok(Message::SessionResult { round, value, .. }) => {
                        assert_eq!(value, Some(round as f64));
                        got += 1;
                    }
                    Ok(other) => panic!("unexpected echo {other:?}"),
                    Err(_) => break,
                }
            }
        }

        // A hostile length prefix drops the connection.
        let mut hostile = TcpStream::connect(handle.local_addr()).unwrap();
        hostile
            .write_all(&(crate::message::MAX_FRAME_LEN as u32 + 1).to_be_bytes())
            .unwrap();
        hostile
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(
            hostile.read(&mut chunk).unwrap_or(0),
            0,
            "hostile peer gets closed"
        );

        drop(client);
        handle.shutdown();
        assert_eq!(
            closes.load(Ordering::SeqCst),
            2,
            "every accepted connection got exactly one on_close"
        );
    }

    #[test]
    fn echo_roundtrip_on_epoll() {
        run_echo_roundtrip(false);
    }

    #[test]
    fn echo_roundtrip_on_poll_fallback() {
        run_echo_roundtrip(true);
    }

    #[test]
    fn emfile_pauses_accept_then_resumes_with_health_recovery() {
        let _gate = serial();
        let registry = avoc_obs::Registry::new();
        let metrics = ReactorMetrics::register(&registry, &[]);
        let health = avoc_obs::Health::new();
        let closes = Arc::new(AtomicU64::new(0));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = spawn(
            listener,
            Echo {
                closes: Arc::clone(&closes),
            },
            ReactorConfig {
                metrics: Some(metrics.clone()),
                health: Some(health.clone()),
                ..ReactorConfig::default()
            },
        )
        .unwrap();

        // The first accept readiness hits an injected EMFILE: the reactor
        // must pause (listener deregistered, health degraded) instead of
        // spinning, then resume on the probe timer and accept the
        // handshake that waited in the backlog.
        sysio::fault::install(sysio::fault::Plan::new(7).rule(
            sysio::fault::Site::Accept,
            sysio::fault::Kind::Emfile,
            1,
            1,
        ));
        let mut client = TcpStream::connect(handle.local_addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while metrics.accept_pauses.get() == 0 {
            assert!(Instant::now() < deadline, "accept never paused");
            std::thread::sleep(Duration::from_millis(5));
        }
        sysio::fault::clear();

        // The connection completes after the resume probe and serves
        // traffic normally.
        client
            .write_all(
                &Message::SessionReading {
                    session: 9,
                    module: ModuleId::new(0),
                    round: 1,
                    value: 4.5,
                }
                .encode(),
            )
            .unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = bytes::BytesMut::new();
        let mut chunk = [0u8; 4096];
        let echoed = loop {
            let n = client.read(&mut chunk).expect("echo arrives after resume");
            assert!(n > 0, "server hung up");
            buf.extend_from_slice(&chunk[..n]);
            if let Ok(msg) = Message::decode(&mut buf) {
                break msg;
            }
        };
        assert!(
            matches!(
                echoed,
                Message::SessionResult {
                    round: 1,
                    value: Some(v),
                    ..
                } if v == 4.5
            ),
            "unexpected echo {echoed:?}"
        );
        assert_eq!(metrics.accept_pauses.get(), 1, "exactly one pause");
        assert!(health.is_ok(), "health recovered after resume");

        drop(client);
        handle.shutdown();
    }

    #[test]
    fn injected_eintr_on_every_socket_site_is_invisible() {
        let _gate = serial();
        // EINTR on accept, reads and writes must be retried/absorbed with
        // no observable effect: the full echo roundtrip still passes.
        sysio::fault::install(
            sysio::fault::Plan::new(11)
                .rule(sysio::fault::Site::Accept, sysio::fault::Kind::Eintr, 1, 4)
                .rule(
                    sysio::fault::Site::SockRead,
                    sysio::fault::Kind::Eintr,
                    1,
                    4,
                )
                .rule(
                    sysio::fault::Site::SockWrite,
                    sysio::fault::Kind::Eintr,
                    1,
                    4,
                ),
        );
        let injected_before = sysio::fault::injected_total();
        let closes = Arc::new(AtomicU64::new(0));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = spawn(
            listener,
            Echo {
                closes: Arc::clone(&closes),
            },
            ReactorConfig::default(),
        )
        .unwrap();
        let mut client = TcpStream::connect(handle.local_addr()).unwrap();
        for round in 0..10u64 {
            client
                .write_all(
                    &Message::SessionReading {
                        session: 3,
                        module: ModuleId::new(0),
                        round,
                        value: round as f64,
                    }
                    .encode(),
                )
                .unwrap();
        }
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = bytes::BytesMut::new();
        let mut chunk = [0u8; 4096];
        let mut got = 0u64;
        while got < 10 {
            let n = client.read(&mut chunk).expect("echoes survive EINTR");
            assert!(n > 0, "server hung up under EINTR");
            buf.extend_from_slice(&chunk[..n]);
            while let Ok(msg) = Message::decode(&mut buf) {
                match msg {
                    Message::SessionResult { round, value, .. } => {
                        assert_eq!(value, Some(round as f64));
                        got += 1;
                    }
                    other => panic!("unexpected echo {other:?}"),
                }
            }
        }
        assert!(
            sysio::fault::injected_total() > injected_before,
            "the EINTR rules actually fired"
        );
        sysio::fault::clear();
        drop(client);
        handle.shutdown();
        assert_eq!(closes.load(Ordering::SeqCst), 1);
    }

    /// Drives `clients` concurrent echo roundtrips through a pool and
    /// asserts every connection got served and closed exactly once.
    fn run_pool_echo(pool: ReactorPool, clients: usize, closes: &Arc<AtomicU64>) {
        let addr = pool.local_addr();
        let joins: Vec<_> = (0..clients)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut sock = TcpStream::connect(addr).unwrap();
                    sock.set_read_timeout(Some(Duration::from_secs(10)))
                        .unwrap();
                    for round in 0..25u64 {
                        sock.write_all(
                            &Message::SessionReading {
                                session: c as u64,
                                module: ModuleId::new(0),
                                round,
                                value: round as f64 + c as f64,
                            }
                            .encode(),
                        )
                        .unwrap();
                    }
                    let mut buf = bytes::BytesMut::new();
                    let mut chunk = [0u8; 4096];
                    let mut got = 0u64;
                    while got < 25 {
                        let n = sock.read(&mut chunk).expect("pool echoes arrive");
                        assert!(n > 0, "pool reactor hung up early");
                        buf.extend_from_slice(&chunk[..n]);
                        while let Ok(msg) = Message::decode(&mut buf) {
                            match msg {
                                Message::SessionResult {
                                    session,
                                    round,
                                    value,
                                    ..
                                } => {
                                    assert_eq!(
                                        session, c as u64,
                                        "pinned: replies come back on the opening connection"
                                    );
                                    assert_eq!(value, Some(round as f64 + c as f64));
                                    got += 1;
                                }
                                other => panic!("unexpected echo {other:?}"),
                            }
                        }
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        pool.shutdown();
        assert_eq!(
            closes.load(Ordering::SeqCst),
            clients as u64,
            "every pooled connection got exactly one on_close"
        );
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn pool_serves_on_reuseport_listeners() {
        let _gate = serial();
        let closes = Arc::new(AtomicU64::new(0));
        let mk_closes = Arc::clone(&closes);
        let pool = spawn_pool(
            "127.0.0.1:0",
            4,
            move |_| Echo {
                closes: Arc::clone(&mk_closes),
            },
            |_| ReactorConfig::default(),
        )
        .unwrap();
        assert_eq!(pool.reactor_count(), 4);
        assert_eq!(pool.accept_mode(), "reuseport");
        assert_eq!(pool.backend(), "epoll");
        run_pool_echo(pool, 8, &closes);
    }

    #[test]
    fn pool_falls_back_to_accept_handoff_in_poll_mode() {
        let _gate = serial();
        let closes = Arc::new(AtomicU64::new(0));
        let mk_closes = Arc::clone(&closes);
        let pool = spawn_pool(
            "127.0.0.1:0",
            3,
            move |_| Echo {
                closes: Arc::clone(&mk_closes),
            },
            |_| ReactorConfig {
                force_poll: true,
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        assert_eq!(pool.reactor_count(), 3);
        assert_eq!(pool.accept_mode(), "handoff");
        assert_eq!(pool.backend(), "poll");
        run_pool_echo(pool, 9, &closes);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn pool_falls_back_to_handoff_when_reuseport_bind_faults() {
        let _gate = serial();
        // The injected fault kills the very first reuseport bind; the pool
        // must degrade to the single-listener handoff path, not fail.
        sysio::fault::install(sysio::fault::Plan::new(31).rule(
            sysio::fault::Site::ListenerSetup,
            sysio::fault::Kind::Emfile,
            1,
            1,
        ));
        let closes = Arc::new(AtomicU64::new(0));
        let mk_closes = Arc::clone(&closes);
        let pool = spawn_pool(
            "127.0.0.1:0",
            2,
            move |_| Echo {
                closes: Arc::clone(&mk_closes),
            },
            |_| ReactorConfig::default(),
        )
        .unwrap();
        sysio::fault::clear();
        assert_eq!(pool.accept_mode(), "handoff");
        run_pool_echo(pool, 4, &closes);
    }

    #[test]
    fn single_reactor_pool_reports_single_mode() {
        let _gate = serial();
        let closes = Arc::new(AtomicU64::new(0));
        let mk_closes = Arc::clone(&closes);
        let pool = spawn_pool(
            "127.0.0.1:0",
            1,
            move |_| Echo {
                closes: Arc::clone(&mk_closes),
            },
            |_| ReactorConfig::default(),
        )
        .unwrap();
        assert_eq!(pool.reactor_count(), 1);
        assert_eq!(pool.accept_mode(), "single");
        run_pool_echo(pool, 3, &closes);
    }

    #[test]
    fn shutdown_is_immediate_without_spurious_ticks() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = spawn(
            listener,
            Echo {
                closes: Arc::new(AtomicU64::new(0)),
            },
            ReactorConfig::default(),
        )
        .unwrap();
        // No connections, no timers: the loop is parked in epoll_wait with
        // an infinite timeout; shutdown must return promptly via the wake
        // pipe (the old accept loop needed a throwaway TCP connection).
        let t0 = Instant::now();
        handle.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "wake pipe unparks the loop immediately"
        );
    }
}
