//! Backend selection: epoll where the kernel offers it, `poll(2)` elsewhere.

use std::io;
use std::os::unix::io::RawFd;
use sysio::{Epoll, Event, Interest, PollSet};

/// The readiness backend driving a reactor: one epoll instance on Linux,
/// or the portable `poll(2)` set. Chosen once at startup — epoll when
/// available, unless the `AVOC_FORCE_POLL` environment variable (any value
/// but `0`) or [`crate::reactor::ReactorConfig::force_poll`] pins the
/// fallback, which is how the test suite exercises both paths on one
/// machine.
#[derive(Debug)]
pub(crate) enum Poller {
    /// Linux epoll.
    Epoll(Epoll),
    /// Portable fallback.
    Poll(PollSet),
}

impl Poller {
    pub(crate) fn new(force_poll: bool) -> Poller {
        let forced =
            force_poll || std::env::var("AVOC_FORCE_POLL").is_ok_and(|v| !v.is_empty() && v != "0");
        if !forced {
            if let Ok(ep) = Epoll::new() {
                return Poller::Epoll(ep);
            }
        }
        Poller::Poll(PollSet::new())
    }

    /// Which backend ended up selected (surfaced in metrics and benches).
    pub(crate) fn backend(&self) -> &'static str {
        match self {
            Poller::Epoll(_) => "epoll",
            Poller::Poll(_) => "poll",
        }
    }

    pub(crate) fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            Poller::Epoll(p) => p.add(fd, token, interest),
            Poller::Poll(p) => p.add(fd, token, interest),
        }
    }

    pub(crate) fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            Poller::Epoll(p) => p.modify(fd, token, interest),
            Poller::Poll(p) => p.modify(fd, token, interest),
        }
    }

    pub(crate) fn remove(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            Poller::Epoll(p) => p.remove(fd),
            Poller::Poll(p) => p.remove(fd),
        }
    }

    pub(crate) fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        match self {
            Poller::Epoll(p) => p.wait(out, timeout_ms),
            Poller::Poll(p) => p.wait(out, timeout_ms),
        }
    }
}
