//! A hashed timer wheel for connection deadlines.
//!
//! The reactor replaces per-socket `SO_SNDTIMEO` deadlines (which only
//! work when a thread is parked inside `write(2)`) with wheel-scheduled
//! timers: when a flush parks on `EWOULDBLOCK` the connection arms a
//! deadline, and if the wheel fires it before the socket drains, the peer
//! is wedged and the connection is closed.
//!
//! Cancellation is lazy: entries carry a generation number and the owner
//! bumps its live generation instead of searching the wheel — a fired
//! entry whose generation is stale is simply ignored. This keeps
//! `schedule`/cancel O(1) with no per-timer allocation beyond the slot
//! vectors, which matters when every blocked flush under load arms one.

use std::time::{Duration, Instant};

/// Wheel granularity. Deadlines round *up* to the next tick, so a timer
/// never fires early; with 5 s write deadlines a 50 ms coarseness is
/// noise.
const TICK: Duration = Duration::from_millis(50);

/// Slot count: `TICK * SLOTS` (12.8 s) is the horizon one revolution
/// covers; farther deadlines park in their slot with a revolution count.
const SLOTS: usize = 256;

/// One scheduled deadline, returned on expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerEntry {
    /// The connection token that armed the deadline.
    pub token: u64,
    /// The arming generation — stale generations are cancelled timers.
    pub generation: u64,
}

#[derive(Debug)]
struct SlotEntry {
    entry: TimerEntry,
    /// Full wheel revolutions left before this entry fires.
    rounds: u32,
}

/// The wheel itself. Single-threaded: owned and driven by the reactor
/// loop, which asks [`TimerWheel::next_timeout_ms`] how long `epoll_wait`
/// may sleep and calls [`TimerWheel::advance`] after every wakeup.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    slots: Vec<Vec<SlotEntry>>,
    start: Instant,
    /// Last tick index processed by [`TimerWheel::advance`].
    cursor: u64,
    len: usize,
}

impl TimerWheel {
    pub(crate) fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            start: now,
            cursor: 0,
            len: 0,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        let elapsed = t.saturating_duration_since(self.start);
        (elapsed.as_nanos() / TICK.as_nanos()) as u64
    }

    /// Arms a deadline `after` from `now`.
    pub(crate) fn schedule(&mut self, now: Instant, after: Duration, entry: TimerEntry) {
        // +1: round up so the entry can never fire before its deadline.
        let target = self.tick_of(now + after) + 1;
        let delta = target.saturating_sub(self.cursor).max(1);
        let slot = (target % SLOTS as u64) as usize;
        let rounds = ((delta - 1) / SLOTS as u64) as u32;
        self.slots[slot].push(SlotEntry { entry, rounds });
        self.len += 1;
    }

    /// How long the event loop may sleep: milliseconds until the nearest
    /// armed slot, or `None` when the wheel is empty (sleep forever —
    /// an idle daemon makes zero timer wakeups).
    pub(crate) fn next_timeout_ms(&self, now: Instant) -> Option<i32> {
        if self.len == 0 {
            return None;
        }
        // Scan at most one revolution for the nearest non-empty slot. A
        // slot holding only multi-revolution entries causes one early
        // wakeup per revolution — harmless and rare at a 12.8 s horizon.
        let now_tick = self.tick_of(now).max(self.cursor);
        for ahead in 0..=SLOTS as u64 {
            let tick = now_tick + ahead;
            if !self.slots[(tick % SLOTS as u64) as usize].is_empty() {
                let fire_at = self.start + TICK.mul_add(tick);
                let ms = fire_at.saturating_duration_since(now).as_millis() as i64;
                // Never return 0 for a future tick: round up to the tick
                // edge so we don't spin while waiting for it.
                return Some(ms.clamp(1, i32::MAX as i64) as i32);
            }
        }
        Some(TICK.as_millis() as i32 * SLOTS as i32)
    }

    /// Fires every entry whose tick has passed, pushing them into
    /// `expired`. Multi-revolution entries are decremented and kept.
    pub(crate) fn advance(&mut self, now: Instant, expired: &mut Vec<TimerEntry>) {
        let now_tick = self.tick_of(now);
        while self.cursor < now_tick {
            self.cursor += 1;
            if self.len == 0 {
                // Fast-forward an idle wheel instead of walking every tick.
                self.cursor = now_tick;
                break;
            }
            let slot = (self.cursor % SLOTS as u64) as usize;
            let mut i = 0;
            while i < self.slots[slot].len() {
                if self.slots[slot][i].rounds == 0 {
                    let e = self.slots[slot].swap_remove(i);
                    expired.push(e.entry);
                    self.len -= 1;
                } else {
                    self.slots[slot][i].rounds -= 1;
                    i += 1;
                }
            }
        }
    }
}

/// `Duration * u64` without the unstable `Mul<u64>`: used to locate a tick
/// edge on the time line.
trait MulAdd {
    fn mul_add(&self, ticks: u64) -> Duration;
}

impl MulAdd for Duration {
    fn mul_add(&self, ticks: u64) -> Duration {
        Duration::from_nanos((self.as_nanos() as u64).saturating_mul(ticks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(token: u64, generation: u64) -> TimerEntry {
        TimerEntry { token, generation }
    }

    #[test]
    fn fires_after_the_deadline_never_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.schedule(t0, Duration::from_millis(120), entry(1, 1));

        let mut expired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(100), &mut expired);
        assert!(expired.is_empty(), "not yet due");
        // One tick of slack past the deadline guarantees firing.
        wheel.advance(t0 + Duration::from_millis(120) + TICK * 2, &mut expired);
        assert_eq!(expired, vec![entry(1, 1)]);

        expired.clear();
        wheel.advance(t0 + Duration::from_secs(60), &mut expired);
        assert!(expired.is_empty(), "fired once only");
    }

    #[test]
    fn far_deadlines_survive_full_revolutions() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        let horizon = TICK * SLOTS as u32;
        wheel.schedule(t0, horizon * 2 + Duration::from_millis(70), entry(9, 3));

        let mut expired = Vec::new();
        wheel.advance(t0 + horizon, &mut expired);
        wheel.advance(t0 + horizon * 2, &mut expired);
        assert!(expired.is_empty(), "parked across revolutions");
        wheel.advance(
            t0 + horizon * 2 + Duration::from_millis(70) + TICK * 2,
            &mut expired,
        );
        assert_eq!(expired, vec![entry(9, 3)]);
    }

    #[test]
    fn timeout_hint_tracks_the_nearest_entry_and_empties() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        assert_eq!(wheel.next_timeout_ms(t0), None, "idle wheel: sleep forever");

        wheel.schedule(t0, Duration::from_secs(5), entry(2, 1));
        let ms = wheel.next_timeout_ms(t0).expect("armed");
        assert!(
            (5000..=5200).contains(&ms),
            "hint {ms} should land just past the 5 s deadline"
        );

        let mut expired = Vec::new();
        wheel.advance(t0 + Duration::from_secs(6), &mut expired);
        assert_eq!(expired.len(), 1);
        assert_eq!(wheel.next_timeout_ms(t0 + Duration::from_secs(6)), None);
    }
}
