//! The voting sink node: a worker thread fusing assembled rounds.
//!
//! The paper's sink node (Fig. 1) receives the hub's stream over WiFi and
//! runs the voting algorithm; here the link is a `crossbeam` channel and
//! the algorithm is any [`VotingEngine`].

use avoc_core::{Round, RoundResult, VotingEngine};
use crossbeam::channel::{Receiver, Sender};
use std::thread::JoinHandle;

/// One fused output, tagged with its round.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkOutput {
    /// The round this outcome belongs to.
    pub round: u64,
    /// The engine's outcome (vote, fallback, skip) or the surfaced error
    /// rendered as a string (errors must cross the thread boundary).
    pub result: Result<RoundResult, String>,
}

/// A sink node running a [`VotingEngine`] on its own thread.
///
/// Rounds come in on a channel; [`SinkOutput`]s go out on another. Dropping
/// the input sender shuts the node down; [`SinkNode::join`] returns the
/// engine for post-run inspection (histories, stats).
#[derive(Debug)]
pub struct SinkNode {
    handle: JoinHandle<VotingEngine>,
}

impl SinkNode {
    /// Spawns the sink.
    pub fn spawn(
        mut engine: VotingEngine,
        rounds: Receiver<Round>,
        outputs: Sender<SinkOutput>,
    ) -> Self {
        let handle = std::thread::spawn(move || {
            for round in rounds.iter() {
                let out = SinkOutput {
                    round: round.round,
                    result: engine.submit(&round).map_err(|e| e.to_string()),
                };
                if outputs.send(out).is_err() {
                    break; // nobody listening any more
                }
            }
            engine
        });
        SinkNode { handle }
    }

    /// Waits for the input channel to close and returns the engine.
    ///
    /// # Panics
    ///
    /// Panics if the sink thread itself panicked.
    pub fn join(self) -> VotingEngine {
        self.handle.join().expect("sink thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avoc_core::algorithms::AvocVoter;
    use crossbeam::channel;

    #[test]
    fn fuses_a_stream_of_rounds() {
        let engine = VotingEngine::new(Box::new(AvocVoter::with_defaults()));
        let (round_tx, round_rx) = channel::unbounded();
        let (out_tx, out_rx) = channel::unbounded();
        let sink = SinkNode::spawn(engine, round_rx, out_tx);

        for r in 0..10u64 {
            round_tx
                .send(Round::from_numbers(r, &[18.0, 18.1, 17.9]))
                .unwrap();
        }
        drop(round_tx);

        let outputs: Vec<SinkOutput> = out_rx.iter().collect();
        assert_eq!(outputs.len(), 10);
        assert!(outputs.iter().all(|o| o.result.is_ok()));
        let engine = sink.join();
        assert_eq!(engine.stats().voted, 10);
    }

    #[test]
    fn outputs_preserve_round_ids() {
        let engine = VotingEngine::new(Box::new(AvocVoter::with_defaults()));
        let (round_tx, round_rx) = channel::unbounded();
        let (out_tx, out_rx) = channel::unbounded();
        let sink = SinkNode::spawn(engine, round_rx, out_tx);
        round_tx.send(Round::from_numbers(41, &[1.0, 1.0])).unwrap();
        round_tx.send(Round::from_numbers(42, &[2.0, 2.0])).unwrap();
        drop(round_tx);
        let outs: Vec<SinkOutput> = out_rx.iter().collect();
        assert_eq!(outs[0].round, 41);
        assert_eq!(outs[1].round, 42);
        sink.join();
    }

    #[test]
    fn engine_state_survives_the_run() {
        let engine = VotingEngine::new(Box::new(AvocVoter::with_defaults()));
        let (round_tx, round_rx) = channel::unbounded();
        let (out_tx, out_rx) = channel::unbounded();
        let sink = SinkNode::spawn(engine, round_rx, out_tx);
        // A faulty module decays its record.
        for r in 0..5u64 {
            round_tx
                .send(Round::from_numbers(r, &[18.0, 18.1, 24.0]))
                .unwrap();
        }
        drop(round_tx);
        let _ = out_rx.iter().count();
        let engine = sink.join();
        let hs = engine.histories();
        assert_eq!(hs.len(), 3);
        assert!(hs[2].1 < hs[0].1);
    }

    #[test]
    fn dropped_output_receiver_stops_the_sink() {
        let engine = VotingEngine::new(Box::new(AvocVoter::with_defaults()));
        let (round_tx, round_rx) = channel::unbounded();
        let (out_tx, out_rx) = channel::bounded(1);
        let sink = SinkNode::spawn(engine, round_rx, out_tx);
        round_tx.send(Round::from_numbers(0, &[1.0, 1.0])).unwrap();
        // Receive one output, then hang up.
        let _ = out_rx.recv().unwrap();
        drop(out_rx);
        round_tx.send(Round::from_numbers(1, &[1.0, 1.0])).unwrap();
        round_tx.send(Round::from_numbers(2, &[1.0, 1.0])).unwrap();
        drop(round_tx);
        // The sink must terminate (not deadlock) even though outputs can no
        // longer be delivered.
        let _ = sink.join();
    }
}
