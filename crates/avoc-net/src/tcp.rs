//! TCP transport: the wire protocol over real sockets.
//!
//! The paper's hub streams to the sink over WiFi (Fig. 1). The in-process
//! pipeline of [`crate::edge`] uses channels; this module provides the same
//! hub over genuine `std::net` sockets, so a deployment can split sensors
//! and voter across machines: sensors connect with [`SensorClient`] and
//! stream length-prefixed frames; [`TcpHub`] accepts, decodes, assembles
//! rounds and hands them to whatever sink the caller wires up.

use crate::cork::{CorkedWriter, WriterStats};
use crate::hub::SensorHub;
use crate::message::{DecodeError, Message};
use avoc_core::{ModuleId, Round};
use bytes::BytesMut;
use crossbeam::channel::{self, Receiver, Sender};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;

/// Capacity of the reader → hub message channel. Bounded so a hub that
/// stalls (slow consumer of the round channel) pushes backpressure onto the
/// per-connection reader threads — and through TCP flow control onto the
/// sensors themselves — rather than buffering unbounded frames in memory.
const MSG_CHANNEL_CAPACITY: usize = 256;

/// Capacity of the hub → caller round channel; one entry per fully
/// assembled round, so a small buffer suffices (see
/// [`MSG_CHANNEL_CAPACITY`] for the backpressure rationale).
const ROUND_CHANNEL_CAPACITY: usize = 64;

/// A sensor-side connection streaming readings to a [`TcpHub`].
///
/// # Example
///
/// See [`TcpHub`] for an end-to-end example.
#[derive(Debug)]
pub struct SensorClient {
    writer: CorkedWriter<TcpStream>,
}

impl SensorClient {
    /// Connects to a hub.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(SensorClient {
            writer: CorkedWriter::new(stream),
        })
    }

    /// Sends one message (encoded allocation-free and flushed
    /// immediately — a lone frame keeps its latency).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        self.writer.push(msg);
        self.writer.flush()
    }

    /// Streams one module's series, one reading per round; `None` entries
    /// are sent as explicit [`Message::Missing`] notifications. The whole
    /// series is corked and shipped with a handful of `write` calls
    /// instead of one per reading.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_series(&mut self, module: ModuleId, series: &[Option<f64>]) -> io::Result<()> {
        for (round, value) in series.iter().enumerate() {
            let msg = match value {
                Some(v) => Message::Reading {
                    module,
                    round: round as u64,
                    value: *v,
                },
                None => Message::Missing {
                    module,
                    round: round as u64,
                },
            };
            self.writer.push(&msg);
            if self.writer.is_corked_full() {
                self.writer.flush()?;
            }
        }
        self.writer.flush()
    }

    /// I/O counters for this connection (frames, flushes, `write` calls,
    /// bytes).
    pub fn io_stats(&self) -> WriterStats {
        self.writer.stats()
    }
}

/// A TCP-listening sensor hub: accepts a fixed number of sensor
/// connections, decodes their frame streams, assembles voting rounds and
/// delivers them on a channel.
#[derive(Debug)]
pub struct TcpHub {
    local_addr: SocketAddr,
    handle: JoinHandle<HubStats>,
}

/// Transport statistics returned when the hub finishes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Frames decoded across all connections.
    pub frames: u64,
    /// Frames dropped as undecodable.
    pub decode_errors: u64,
    /// Readings that arrived after their round was emitted.
    pub stragglers: u64,
}

impl TcpHub {
    /// Binds to `127.0.0.1:0` (or any address), then accepts exactly
    /// `connections` sensor connections and assembles rounds for
    /// `expected` modules until every connection closes. Completed rounds
    /// arrive on the returned receiver; the channel closes after the final
    /// flush.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(
        addr: &str,
        expected: Vec<ModuleId>,
        connections: usize,
    ) -> io::Result<(TcpHub, Receiver<Round>)> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (round_tx, round_rx) = channel::bounded(ROUND_CHANNEL_CAPACITY);
        let handle = std::thread::spawn(move || run_hub(listener, expected, connections, round_tx));
        Ok((TcpHub { local_addr, handle }, round_rx))
    }

    /// The address sensors should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Waits for every connection to close and returns transport stats.
    ///
    /// # Panics
    ///
    /// Panics if the hub thread panicked.
    pub fn join(self) -> HubStats {
        self.handle.join().expect("hub thread panicked")
    }
}

fn run_hub(
    listener: TcpListener,
    expected: Vec<ModuleId>,
    connections: usize,
    round_tx: Sender<Round>,
) -> HubStats {
    // Reader threads decode frames into one message channel.
    let (msg_tx, msg_rx) = channel::bounded::<Result<Message, ()>>(MSG_CHANNEL_CAPACITY);
    let mut readers = Vec::new();
    for _ in 0..connections {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        let tx = msg_tx.clone();
        readers.push(std::thread::spawn(move || read_connection(stream, tx)));
    }
    drop(msg_tx);

    let mut stats = HubStats::default();
    let lag = u64::MAX / 2; // feeders interleave arbitrarily: rely on flush
    let mut hub = SensorHub::new(expected).with_lag_tolerance(lag);
    for item in msg_rx.iter() {
        match item {
            Ok(msg) => {
                stats.frames += 1;
                for round in hub.accept(msg) {
                    if round_tx.send(round).is_err() {
                        return stats;
                    }
                }
            }
            Err(()) => stats.decode_errors += 1,
        }
    }
    for round in hub.flush_all() {
        if round_tx.send(round).is_err() {
            break;
        }
    }
    stats.stragglers = hub.straggler_count();
    for r in readers {
        let _ = r.join();
    }
    stats
}

fn read_connection(mut stream: TcpStream, tx: Sender<Result<Message, ()>>) {
    let mut buf = BytesMut::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break, // peer closed / connection error
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    match Message::decode(&mut buf) {
                        Ok(Message::Shutdown) => return,
                        Ok(msg) => {
                            if tx.send(Ok(msg)).is_err() {
                                return;
                            }
                        }
                        Err(DecodeError::Incomplete) => break,
                        Err(DecodeError::FrameTooLarge { .. }) => {
                            // Hostile length prefix: nothing to resync past,
                            // so drop the connection instead of buffering.
                            let _ = tx.send(Err(()));
                            return;
                        }
                        Err(_) => {
                            let _ = tx.send(Err(()));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avoc_core::algorithms::AvocVoter;
    use avoc_core::VotingEngine;
    use avoc_sim::LightScenario;

    fn modules(n: u32) -> Vec<ModuleId> {
        (0..n).map(ModuleId::new).collect()
    }

    #[test]
    fn rounds_flow_over_real_sockets() {
        let trace = LightScenario::new(3, 20, 13).generate();
        let (hub, rounds) = TcpHub::bind("127.0.0.1:0", modules(3), 3).expect("bind");
        let addr = hub.local_addr();

        let mut feeders = Vec::new();
        for m in 0..3u32 {
            let series = trace.series(m as usize);
            feeders.push(std::thread::spawn(move || {
                let mut client = SensorClient::connect(addr).expect("connect");
                client.send_series(ModuleId::new(m), &series).expect("send");
            }));
        }
        for f in feeders {
            f.join().unwrap();
        }

        let received: Vec<Round> = rounds.iter().collect();
        let stats = hub.join();
        assert_eq!(received.len(), 20);
        assert_eq!(stats.frames, 60);
        assert_eq!(stats.decode_errors, 0);
        // Rounds are complete regardless of socket interleaving.
        let mut sorted = received;
        sorted.sort_by_key(|r| r.round);
        for (i, round) in sorted.iter().enumerate() {
            assert_eq!(round.round, i as u64);
            assert_eq!(round.present_count(), 3);
        }
    }

    #[test]
    fn tcp_pipeline_feeds_a_voting_engine() {
        let trace = LightScenario::new(5, 15, 17).generate();
        let (hub, rounds) = TcpHub::bind("127.0.0.1:0", modules(5), 5).expect("bind");
        let addr = hub.local_addr();

        for m in 0..5u32 {
            let series = trace.series(m as usize);
            std::thread::spawn(move || {
                let mut client = SensorClient::connect(addr).expect("connect");
                client.send_series(ModuleId::new(m), &series).expect("send");
            });
        }

        let mut engine = VotingEngine::new(Box::new(AvocVoter::with_defaults()));
        let mut outputs: Vec<(u64, f64)> = rounds
            .iter()
            .map(|r| {
                let out = engine.submit(&r).expect("vote");
                (r.round, out.number().expect("numeric"))
            })
            .collect();
        hub.join();
        outputs.sort_by_key(|(r, _)| *r);
        assert_eq!(outputs.len(), 15);
        for (_, v) in outputs {
            assert!(v > 16.0 && v < 21.0, "implausible fused value {v}");
        }
    }

    #[test]
    fn missing_values_cross_the_wire() {
        let (hub, rounds) = TcpHub::bind("127.0.0.1:0", modules(2), 2).expect("bind");
        let addr = hub.local_addr();

        let t0 = std::thread::spawn(move || {
            let mut c = SensorClient::connect(addr).expect("connect");
            c.send_series(ModuleId::new(0), &[Some(1.0), None, Some(3.0)])
                .expect("send");
        });
        let t1 = std::thread::spawn(move || {
            let mut c = SensorClient::connect(addr).expect("connect");
            c.send_series(ModuleId::new(1), &[Some(1.1), Some(2.1), Some(3.1)])
                .expect("send");
        });
        t0.join().unwrap();
        t1.join().unwrap();

        let mut received: Vec<Round> = rounds.iter().collect();
        hub.join();
        received.sort_by_key(|r| r.round);
        assert_eq!(received.len(), 3);
        assert_eq!(received[1].present_count(), 1);
        assert!(!received[1].ballots[0].is_present());
    }

    #[test]
    fn shutdown_frame_ends_a_connection() {
        let (hub, rounds) = TcpHub::bind("127.0.0.1:0", modules(1), 1).expect("bind");
        let addr = hub.local_addr();
        let mut c = SensorClient::connect(addr).expect("connect");
        c.send(&Message::Reading {
            module: ModuleId::new(0),
            round: 0,
            value: 9.0,
        })
        .expect("send");
        c.send(&Message::Shutdown).expect("send");
        // Messages after shutdown are ignored by the reader.
        let _ = c.send(&Message::Reading {
            module: ModuleId::new(0),
            round: 1,
            value: 10.0,
        });
        drop(c);
        let received: Vec<Round> = rounds.iter().collect();
        hub.join();
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].round, 0);
    }
}
