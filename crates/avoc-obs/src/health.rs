//! The daemon's health plane: per-domain degradation state with reasons.
//!
//! Counters say *how much* went wrong; health says *what is wrong right
//! now*. Subsystems (persistence, the segment tier, the accept path) each
//! own a named domain and move it between [`HealthLevel::Ok`],
//! [`HealthLevel::Degraded`] and [`HealthLevel::Critical`] as they enter
//! and leave trouble; the worst domain decides the aggregate, and the
//! admin `/healthz` route turns a non-`Ok` aggregate into `503` with the
//! machine-readable reasons in the body — so a load balancer and an
//! operator read the same signal.
//!
//! A [`Health`] handle is a cheap `Arc` clone. Updates take a short lock;
//! they happen on state *transitions* (entering/leaving degraded mode,
//! quarantining a segment), never on per-reading hot paths.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How sick a domain (or the whole daemon) is. Ordered: later variants are
/// worse, and the aggregate is the maximum across domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum HealthLevel {
    /// Operating normally.
    #[default]
    Ok,
    /// Running with reduced guarantees (e.g. memory-only persistence);
    /// still serving, recovery is being attempted.
    Degraded,
    /// A domain is down hard and not expected to self-heal.
    Critical,
}

impl HealthLevel {
    /// The wire spelling used in `/healthz` JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthLevel::Ok => "ok",
            HealthLevel::Degraded => "degraded",
            HealthLevel::Critical => "critical",
        }
    }
}

#[derive(Debug, Clone)]
struct Domain {
    level: HealthLevel,
    reason: String,
}

/// Shared health state: named domains, each with a level and a reason.
///
/// Clones share the same map (it is an `Arc` inside), so every subsystem
/// holds the same handle the admin endpoint renders.
#[derive(Debug, Clone, Default)]
pub struct Health {
    domains: Arc<Mutex<BTreeMap<String, Domain>>>,
}

impl Health {
    /// A fresh, all-healthy handle.
    pub fn new() -> Health {
        Health::default()
    }

    /// Marks `domain` at `level` with `reason`. Setting
    /// [`HealthLevel::Ok`] removes the domain — healthy domains carry no
    /// entry, so `/healthz` bodies list only what is wrong.
    pub fn set(&self, domain: &str, level: HealthLevel, reason: &str) {
        let mut map = self.domains.lock();
        if level == HealthLevel::Ok {
            map.remove(domain);
        } else {
            map.insert(
                domain.to_string(),
                Domain {
                    level,
                    reason: reason.to_string(),
                },
            );
        }
    }

    /// Returns `domain` to healthy (idempotent).
    pub fn clear(&self, domain: &str) {
        self.domains.lock().remove(domain);
    }

    /// The aggregate level: the worst across all domains (`Ok` when every
    /// domain is healthy).
    pub fn level(&self) -> HealthLevel {
        self.domains
            .lock()
            .values()
            .map(|d| d.level)
            .max()
            .unwrap_or(HealthLevel::Ok)
    }

    /// Whether every domain is healthy.
    pub fn is_ok(&self) -> bool {
        self.level() == HealthLevel::Ok
    }

    /// The HTTP status `/healthz` should answer with: `200` healthy,
    /// `503` otherwise (degraded daemons must fail load-balancer checks).
    pub fn status_code(&self) -> u16 {
        if self.is_ok() {
            200
        } else {
            503
        }
    }

    /// The machine-readable `/healthz` body for a non-healthy daemon:
    /// aggregate status plus one entry per sick domain, sorted by name.
    pub fn render_json(&self) -> String {
        let map = self.domains.lock();
        let status = map
            .values()
            .map(|d| d.level)
            .max()
            .unwrap_or(HealthLevel::Ok);
        let domains: Vec<String> = map
            .iter()
            .map(|(name, d)| {
                format!(
                    "{{\"domain\": \"{}\", \"level\": \"{}\", \"reason\": \"{}\"}}",
                    escape(name),
                    d.level.as_str(),
                    escape(&d.reason)
                )
            })
            .collect();
        format!(
            "{{\"status\": \"{}\", \"domains\": [{}]}}\n",
            status.as_str(),
            domains.join(", ")
        )
    }
}

/// Minimal JSON string escaping for domain names and reasons (internal
/// strings, but a reason may quote an `io::Error`).
fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_health_is_ok() {
        let h = Health::new();
        assert!(h.is_ok());
        assert_eq!(h.level(), HealthLevel::Ok);
        assert_eq!(h.status_code(), 200);
        assert_eq!(h.render_json(), "{\"status\": \"ok\", \"domains\": []}\n");
    }

    #[test]
    fn worst_domain_wins_and_clears_restore_ok() {
        let h = Health::new();
        let peer = h.clone();
        h.set("persistence", HealthLevel::Degraded, "disk full");
        assert_eq!(peer.level(), HealthLevel::Degraded, "clones share state");
        assert_eq!(h.status_code(), 503);
        h.set("segments", HealthLevel::Critical, "tier lost");
        assert_eq!(h.level(), HealthLevel::Critical);
        let json = h.render_json();
        assert!(json.contains("\"status\": \"critical\""));
        assert!(json.contains("\"domain\": \"persistence\""));
        assert!(json.contains("\"reason\": \"disk full\""));
        h.clear("segments");
        assert_eq!(h.level(), HealthLevel::Degraded);
        // Setting Ok is the same as clearing.
        h.set("persistence", HealthLevel::Ok, "");
        assert!(h.is_ok());
    }

    #[test]
    fn reasons_are_json_escaped() {
        let h = Health::new();
        h.set(
            "persistence",
            HealthLevel::Degraded,
            "wal: \"quota\"\nexceeded\\",
        );
        let json = h.render_json();
        assert!(json.contains("wal: \\\"quota\\\"\\nexceeded\\\\"));
        // Still parseable by the serde_json shim the workspace tests use.
        assert!(json.ends_with("]}\n"));
    }
}
