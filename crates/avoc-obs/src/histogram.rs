//! Log-linear histograms with atomic buckets.
//!
//! A [`Histogram`] is a set of upper-inclusive bucket bounds (`le`, in
//! Prometheus terms) plus an implicit `+Inf` overflow bucket. Recording is
//! a binary search and three relaxed atomic adds — no locks, no
//! allocations — so the serve hot path can record every fused round, not a
//! sample of them. The default bound set is **log-linear**: nine linear
//! steps per power-of-ten decade, which keeps relative quantile error
//! under ~11% across six orders of magnitude with 90 buckets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shareable histogram handle. Clones are cheap (`Arc` inside) and all
/// clones record into the same cells.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<Core>,
}

#[derive(Debug)]
struct Core {
    /// Upper-inclusive bucket bounds, strictly increasing.
    bounds: Arc<[u64]>,
    /// Per-bucket counts; `buckets[bounds.len()]` is the `+Inf` overflow.
    buckets: Box<[AtomicU64]>,
    /// Sum of every recorded value.
    sum: AtomicU64,
    /// Smallest recorded value (`u64::MAX` while empty).
    min: AtomicU64,
    /// Largest recorded value.
    max: AtomicU64,
}

impl Histogram {
    /// A histogram over explicit upper-inclusive bounds. Bounds are sorted
    /// and deduplicated; an empty slice yields a single `+Inf` bucket.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(Core {
                bounds: sorted.into(),
                buckets,
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// The default latency scale: log-linear bounds `{1..9} × 10^k` for
    /// `k = 0..=9`, i.e. 1 ns to 9 s in 90 buckets plus `+Inf`.
    pub fn latency_ns() -> Self {
        let mut bounds = Vec::with_capacity(90);
        let mut decade: u64 = 1;
        for _ in 0..=9 {
            for step in 1..=9u64 {
                bounds.push(step * decade);
            }
            decade *= 10;
        }
        Histogram::with_bounds(&bounds)
    }

    /// Whether two handles record into the same cells.
    pub fn same_histogram(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    /// Records one observation. Lock-free and allocation-free.
    pub fn record(&self, value: u64) {
        let idx = self.core.bounds.partition_point(|&b| b < value);
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(value, Ordering::Relaxed);
        self.core.min.fetch_min(value, Ordering::Relaxed);
        self.core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total observations so far (the sum of every bucket, so it always
    /// equals the rendered `+Inf` cumulative bucket).
    pub fn count(&self) -> u64 {
        self.core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            bounds: Arc::clone(&self.core.bounds),
            counts,
            count,
            sum: self.core.sum.load(Ordering::Relaxed),
            min: self.core.min.load(Ordering::Relaxed),
            max: self.core.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: per-bucket counts (not
/// cumulative), totals, and extrema.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Upper-inclusive bucket bounds (the Prometheus `le` values, `+Inf`
    /// excluded).
    pub bounds: Arc<[u64]>,
    /// Per-bucket counts; `counts[bounds.len()]` is the `+Inf` overflow.
    pub counts: Vec<u64>,
    /// Total observations (always the sum of `counts`).
    pub count: u64,
    /// Sum of every recorded value.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` while empty).
    pub min: u64,
    /// Largest recorded value (0 while empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of all recorded values (0.0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated quantile `q` in `[0, 1]`, linearly interpolated inside the
    /// containing bucket and clamped to the observed `[min, max]` so the
    /// estimate never leaves the recorded range. Returns 0 while empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let upper = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // +Inf bucket: the observed maximum is the only finite
                    // upper edge available.
                    self.max.max(lower)
                };
                let into = (rank - cum) as f64 / c as f64;
                let est = lower as f64 + into * (upper - lower) as f64;
                return (est.round() as u64).clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Renders the snapshot as one JSON object — the schema shared by the
    /// checked-in `BENCH_*.json` files and the daemon's scrape endpoint:
    /// `count`, `sum`, `min`/`max`/`mean`, `p50`/`p90`/`p99`, and the
    /// non-empty buckets as `{"le": bound, "count": n}` (the overflow
    /// bucket's `le` is the string `"+Inf"`).
    pub fn to_json(&self) -> String {
        let mut buckets = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !buckets.is_empty() {
                buckets.push_str(", ");
            }
            if i < self.bounds.len() {
                buckets.push_str(&format!("{{\"le\": {}, \"count\": {c}}}", self.bounds[i]));
            } else {
                buckets.push_str(&format!("{{\"le\": \"+Inf\", \"count\": {c}}}"));
            }
        }
        let min = if self.count == 0 { 0 } else { self.min };
        format!(
            "{{\"count\": {}, \"sum\": {}, \"min\": {min}, \"max\": {}, \"mean\": {:.1}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{buckets}]}}",
            self.count,
            self.sum,
            self.max,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_upper_inclusive_buckets() {
        let h = Histogram::with_bounds(&[10, 100]);
        for v in [1, 10, 11, 100, 101, 5_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![2, 2, 2], "le=10, le=100, +Inf");
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1 + 10 + 11 + 100 + 101 + 5_000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 5_000);
    }

    #[test]
    fn latency_scale_is_strictly_increasing_and_log_linear() {
        let h = Histogram::latency_ns();
        let snap = h.snapshot();
        assert_eq!(snap.bounds.len(), 90);
        assert!(snap.bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(snap.bounds[0], 1);
        assert_eq!(snap.bounds[89], 9_000_000_000);
    }

    #[test]
    fn quantiles_interpolate_and_stay_in_range() {
        let h = Histogram::latency_ns();
        for v in 1..=1000u64 {
            h.record(v * 100); // 100 ns .. 100 µs, uniform
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.50);
        let p99 = snap.quantile(0.99);
        assert!((40_000..=60_000).contains(&p50), "p50 {p50} far from 50 µs");
        assert!(
            (90_000..=100_000).contains(&p99),
            "p99 {p99} far from 99 µs"
        );
        assert!(snap.quantile(0.0) >= snap.min);
        assert!(snap.quantile(1.0) <= snap.max);
    }

    #[test]
    fn empty_histogram_renders_without_panicking() {
        let snap = Histogram::latency_ns().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.99), 0);
        let json = snap.to_json();
        assert!(json.contains("\"count\": 0"));
        assert!(json.contains("\"buckets\": []"));
    }

    #[test]
    fn json_reports_overflow_bucket_as_inf() {
        let h = Histogram::with_bounds(&[10]);
        h.record(5);
        h.record(50);
        let json = h.snapshot().to_json();
        assert!(json.contains("{\"le\": 10, \"count\": 1}"));
        assert!(json.contains("{\"le\": \"+Inf\", \"count\": 1}"));
    }

    #[test]
    fn clones_share_cells() {
        let a = Histogram::with_bounds(&[10]);
        let b = a.clone();
        a.record(1);
        b.record(2);
        assert!(a.same_histogram(&b));
        assert_eq!(a.snapshot().count, 2);
    }
}
