//! A minimal, hostile-input-hardened HTTP/1.1 substrate.
//!
//! Just enough protocol for an admin plane: a GET-only request parser with
//! a hard size cap (no allocation proportional to attacker input beyond the
//! capped read buffer), a response writer that always sends
//! `Content-Length` and `Connection: close`, and a tiny blocking GET client
//! for tests, benches and CI smoke probes. The parser returns typed errors
//! — [`ParseError::TooLarge`] maps to `431`, [`ParseError::BadMethod`] to
//! `405`, [`ParseError::BadRequest`] to `400` — and never panics, whatever
//! the bytes (property-tested in `tests/proptests.rs`).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on the request head (request line + headers). Anything longer
/// is rejected with `431 Request Header Fields Too Large`.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Why a request head failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The head is not complete yet — read more bytes and retry.
    Incomplete,
    /// The head exceeds [`MAX_REQUEST_BYTES`] → respond `431`.
    TooLarge,
    /// Syntactically valid enough to see a method, but not GET → `405`.
    BadMethod,
    /// Anything else malformed → `400`.
    BadRequest,
}

impl ParseError {
    /// The HTTP status code this error maps to (`Incomplete` has none and
    /// returns 400 as a terminal fallback).
    pub fn status(self) -> u16 {
        match self {
            ParseError::Incomplete | ParseError::BadRequest => 400,
            ParseError::TooLarge => 431,
            ParseError::BadMethod => 405,
        }
    }
}

/// A parsed GET request head, borrowing from the read buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request<'a> {
    target: &'a str,
}

impl<'a> Request<'a> {
    /// The request target's path component (before any `?`).
    pub fn path(&self) -> &'a str {
        match self.target.split_once('?') {
            Some((path, _)) => path,
            None => self.target,
        }
    }

    /// The first value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&'a str> {
        let (_, query) = self.target.split_once('?')?;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// Parses an HTTP/1.1 request head from `buf`.
///
/// Returns [`ParseError::Incomplete`] until the blank line terminating the
/// head has arrived (callers keep reading), and a terminal error otherwise.
/// Only `GET` is accepted; the target must be an ASCII path starting with
/// `/`; headers are ignored beyond delimiting the head.
pub fn parse_request(buf: &[u8]) -> Result<Request<'_>, ParseError> {
    let head_end = find_head_end(buf);
    if head_end.is_none() && buf.len() > MAX_REQUEST_BYTES {
        return Err(ParseError::TooLarge);
    }
    let Some(head_end) = head_end else {
        return Err(ParseError::Incomplete);
    };
    if head_end > MAX_REQUEST_BYTES {
        return Err(ParseError::TooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| ParseError::BadRequest)?;
    let request_line = head.lines().next().ok_or(ParseError::BadRequest)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or(ParseError::BadRequest)?;
    let target = parts.next().ok_or(ParseError::BadRequest)?;
    let version = parts.next().ok_or(ParseError::BadRequest)?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequest);
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::BadRequest);
    }
    if method != "GET" {
        return Err(ParseError::BadMethod);
    }
    if !target.starts_with('/')
        || !target
            .bytes()
            .all(|b| b.is_ascii_graphic() && b != b'"' && b != b'\\')
    {
        return Err(ParseError::BadRequest);
    }
    Ok(Request { target })
}

/// Position just past the `\r\n\r\n` (or bare `\n\n`) terminating the head.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// The reason phrase for the handful of status codes the admin plane uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one complete HTTP/1.1 response with `Content-Length` and
/// `Connection: close`, then flushes.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A blocking GET against `addr` (e.g. `127.0.0.1:9200`), returning the
/// status code and body. Five-second timeouts on every phase; used by
/// tests, `bench_serve`'s live scrape, and the CI smoke probe.
pub fn get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = match raw.find("\r\n\r\n") {
        Some(i) => raw[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_plain_get() {
        let req = parse_request(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.path(), "/metrics");
        assert_eq!(req.query_param("session"), None);
    }

    #[test]
    fn parses_query_parameters() {
        let req = parse_request(b"GET /trace?session=7&format=json HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path(), "/trace");
        assert_eq!(req.query_param("session"), Some("7"));
        assert_eq!(req.query_param("format"), Some("json"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn incomplete_head_asks_for_more() {
        assert_eq!(
            parse_request(b"GET /metrics HTTP/1.1\r\nHost:"),
            Err(ParseError::Incomplete)
        );
    }

    #[test]
    fn oversized_request_line_is_431() {
        let mut buf = b"GET /".to_vec();
        buf.extend(std::iter::repeat_n(b'a', MAX_REQUEST_BYTES + 1));
        assert_eq!(parse_request(&buf), Err(ParseError::TooLarge));
        assert_eq!(ParseError::TooLarge.status(), 431);
    }

    #[test]
    fn non_get_methods_are_405() {
        for head in [
            &b"POST /metrics HTTP/1.1\r\n\r\n"[..],
            b"DELETE / HTTP/1.1\r\n\r\n",
            b"PUT /x HTTP/1.1\r\n\r\n",
        ] {
            assert_eq!(parse_request(head), Err(ParseError::BadMethod), "{head:?}");
        }
        assert_eq!(ParseError::BadMethod.status(), 405);
    }

    #[test]
    fn malformed_heads_are_400_never_panics() {
        for head in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /\x01 HTTP/1.1\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET / SPDY/9\r\n\r\n",
            b"\xff\xfe\x00\x01\r\n\r\n",
        ] {
            assert_eq!(parse_request(head), Err(ParseError::BadRequest), "{head:?}");
        }
    }

    #[test]
    fn response_writer_frames_the_body() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", "hello").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn client_and_parser_round_trip_over_tcp() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 1024];
            loop {
                let n = conn.read(&mut chunk).unwrap();
                buf.extend_from_slice(&chunk[..n]);
                match parse_request(&buf) {
                    Err(ParseError::Incomplete) if n > 0 => continue,
                    Ok(req) => {
                        let body = format!("path={}", req.path());
                        write_response(&mut conn, 200, "text/plain", &body).unwrap();
                        break;
                    }
                    _ => {
                        write_response(&mut conn, 400, "text/plain", "bad").unwrap();
                        break;
                    }
                }
            }
        });
        let (status, body) = get(&addr, "/healthz").unwrap();
        server.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "path=/healthz");
    }
}
