//! `avoc-obs`: the live observability plane for the AVOC serving stack.
//!
//! The paper's argument is about *convergence behaviour over rounds* (§6),
//! yet aggregate counters dumped at drain time cannot show it on a running
//! daemon. This crate supplies the three pieces every serious serving stack
//! grows — without pulling in a single external crate:
//!
//! * [`Registry`] — a lock-free metric registry of atomic [`Counter`]s,
//!   [`Gauge`]s and log-linear [`Histogram`]s with small label sets
//!   (tenant/session, frame tag, shard). Handles are `Arc`-backed: record
//!   paths touch only relaxed atomics, so instrumented hot paths stay
//!   allocation-free. Exposition is Prometheus text format
//!   ([`Registry::render_prometheus`]) or JSON ([`Registry::render_json`]).
//! * [`TraceRing`] — a fixed-capacity ring of structured per-round span
//!   events ([`Span`]: `ingest → queue → fuse → flush`), sampled 1-in-N so
//!   queue delay, fuse time and flush time are separable per tenant while
//!   the hot path pays one relaxed atomic per sampling decision and zero
//!   allocations per recorded span.
//! * [`Health`] — the graceful-degradation plane: named domains
//!   (persistence, segments, accept) each carry an `ok`/`degraded`/
//!   `critical` level with a reason; the worst domain decides what
//!   `/healthz` answers (`200` vs `503` + JSON reasons).
//! * [`http`] — a minimal, hostile-input-hardened HTTP/1.1 request parser
//!   and response writer, the substrate for the daemon's admin endpoint
//!   (`/metrics`, `/healthz`, `/sessions`, `/trace`), plus a tiny blocking
//!   GET client for tests, benches and smoke probes.
//!
//! The registry and ring are deliberately clock-free at the API level:
//! callers stamp spans with [`now_ns`], a monotonic nanosecond counter
//! anchored at first use, so recorded timelines are comparable across
//! threads of one process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod histogram;
pub mod http;
pub mod registry;
pub mod rollup;
pub mod trace;

pub use health::{Health, HealthLevel};
pub use histogram::{Histogram, HistogramSnapshot};
pub use http::{reason, write_response};
pub use registry::{Counter, Gauge, Registry};
pub use trace::{now_ns, Span, Stage, TraceRing};
