//! The metric registry: named families of counters, gauges and histograms
//! with small label sets, and their Prometheus/JSON exposition.
//!
//! Registration takes a lock and may allocate; it happens at startup, at
//! session open, or at most once per label value. *Recording* happens
//! through the returned handles ([`Counter`], [`Gauge`],
//! [`crate::Histogram`]) and touches only relaxed atomics — the hot path
//! never sees the registry lock. Registration is idempotent: asking for an
//! existing `(name, labels)` pair returns a handle to the same cells, so
//! independent subsystems can share a metric without coordinating.

use crate::histogram::{Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter. Clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A free-standing counter (no registry); useful in tests.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (or ratchet up via
/// [`Gauge::set_max`], the high-water-mark idiom). Clones share the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A free-standing gauge (no registry); useful in tests.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is higher (high-water mark).
    pub fn set_max(&self, v: i64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Child {
    labels: Vec<(String, String)>,
    cell: Cell,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    children: Vec<Child>,
}

/// The registry: a shared, clonable handle. All clones see the same
/// families, so a registry threaded through a daemon is one scrape surface.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Vec<Family>>>,
}

/// `true` for names matching `[a-zA-Z_:][a-zA-Z0-9_:]*` (metric names) or
/// `[a-zA-Z_][a-zA-Z0-9_]*` when `label` (label keys).
fn valid_name(name: &str, label: bool) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    let head_ok = first.is_ascii_alphabetic() || first == '_' || (!label && first == ':');
    head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || (!label && c == ':'))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a labeled counter.
    ///
    /// # Panics
    ///
    /// On an invalid metric/label name, or if `name` is already registered
    /// as a different metric kind — both are programmer errors caught at
    /// registration, never on the record path.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, Kind::Counter, labels, |_| {
            Cell::Counter(Counter::new())
        }) {
            Cell::Counter(c) => c,
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a labeled gauge (panics as
    /// [`Registry::counter_with`]).
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, Kind::Gauge, labels, |_| {
            Cell::Gauge(Gauge::new())
        }) {
            Cell::Gauge(g) => g,
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Registers (or finds) an unlabeled histogram over `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Registers (or finds) a labeled histogram (panics as
    /// [`Registry::counter_with`]). Every child of one family shares the
    /// *first* registration's bounds, so a family renders with one
    /// consistent bucket layout whatever later callers pass.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.register(name, help, Kind::Histogram, labels, |family| {
            let canonical = family
                .and_then(|f| f.children.first())
                .map(|c| match &c.cell {
                    Cell::Histogram(h) => h.snapshot().bounds,
                    _ => unreachable!("histogram family holds histograms"),
                });
            Cell::Histogram(match canonical {
                Some(b) => Histogram::with_bounds(&b),
                None => Histogram::with_bounds(bounds),
            })
        }) {
            Cell::Histogram(h) => h,
            _ => unreachable!("kind checked by register"),
        }
    }

    /// Registers (or finds) a labeled histogram on the default
    /// [`Histogram::latency_ns`] log-linear scale.
    pub fn latency_histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Histogram {
        let scale = Histogram::latency_ns().snapshot().bounds;
        self.histogram_with(name, help, &scale, labels)
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce(Option<&Family>) -> Cell,
    ) -> Cell {
        assert!(valid_name(name, false), "invalid metric name `{name}`");
        for (k, _) in labels {
            assert!(valid_name(k, true), "invalid label name `{k}` on `{name}`");
        }
        let mut inner = self.inner.lock();
        let family_idx = match inner.iter().position(|f| f.name == name) {
            Some(i) => {
                assert!(
                    inner[i].kind == kind,
                    "metric `{name}` already registered as a {}",
                    inner[i].kind.as_str()
                );
                i
            }
            None => {
                inner.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    children: Vec::new(),
                });
                inner.len() - 1
            }
        };
        if let Some(child) = inner[family_idx].children.iter().find(|c| {
            c.labels.len() == labels.len()
                && c.labels
                    .iter()
                    .zip(labels)
                    .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        }) {
            return child.cell.clone();
        }
        let cell = make(Some(&inner[family_idx]));
        inner[family_idx].children.push(Child {
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            cell: cell.clone(),
        });
        cell
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format (`text/plain; version=0.0.4`): `# HELP`/`# TYPE` headers,
    /// escaped label values, and cumulative histogram buckets whose `+Inf`
    /// entry always equals the family's `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let inner = self.inner.lock();
        for family in inner.iter() {
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            }
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for child in &family.children {
                match &child.cell {
                    Cell::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            label_block(&child.labels, None),
                            c.get()
                        );
                    }
                    Cell::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            label_block(&child.labels, None),
                            g.get()
                        );
                    }
                    Cell::Histogram(h) => {
                        render_histogram(&mut out, &family.name, &child.labels, &h.snapshot());
                    }
                }
            }
        }
        out
    }

    /// Renders every registered metric as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`, keyed
    /// by `name{label="value",...}` with the histogram values in the same
    /// schema as [`HistogramSnapshot::to_json`].
    pub fn render_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        let inner = self.inner.lock();
        for family in inner.iter() {
            for child in &family.children {
                let key = format!("{}{}", family.name, label_block(&child.labels, None));
                match &child.cell {
                    Cell::Counter(c) => {
                        counters.push(format!("\"{}\": {}", json_escape(&key), c.get()));
                    }
                    Cell::Gauge(g) => {
                        gauges.push(format!("\"{}\": {}", json_escape(&key), g.get()));
                    }
                    Cell::Histogram(h) => histograms.push(format!(
                        "\"{}\": {}",
                        json_escape(&key),
                        h.snapshot().to_json()
                    )),
                }
            }
        }
        format!(
            "{{\n  \"counters\": {{{}}},\n  \"gauges\": {{{}}},\n  \"histograms\": {{{}}}\n}}\n",
            counters.join(", "),
            gauges.join(", "),
            histograms.join(", ")
        )
    }
}

/// Escapes a label value per the Prometheus text format: backslash, double
/// quote and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a HELP line: backslash and newline only (no quoting context).
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON string escaping for exposition keys.
fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `{k="v",...}` with an optional extra `le` pair; empty labels render as
/// nothing (unlabeled metric) unless `le` forces a block.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
) {
    let mut cum = 0u64;
    for (i, &c) in snap.counts.iter().enumerate() {
        cum += c;
        // Empty buckets are skipped to keep scrapes small — except +Inf,
        // which the format requires; cumulative values stay correct
        // because `cum` accumulates over every bucket.
        if i < snap.bounds.len() {
            if c == 0 {
                continue;
            }
            let le = snap.bounds[i].to_string();
            let _ = writeln!(out, "{name}_bucket{} {cum}", label_block(labels, Some(&le)));
        } else {
            let _ = writeln!(
                out,
                "{name}_bucket{} {cum}",
                label_block(labels, Some("+Inf"))
            );
        }
    }
    let _ = writeln!(out, "{name}_sum{} {}", label_block(labels, None), snap.sum);
    let _ = writeln!(
        out,
        "{name}_count{} {}",
        label_block(labels, None),
        snap.count
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_name_and_labels() {
        let r = Registry::new();
        let a = r.counter_with("avoc_test_total", "help", &[("shard", "0")]);
        let b = r.counter_with("avoc_test_total", "help", &[("shard", "0")]);
        let c = r.counter_with("avoc_test_total", "help", &[("shard", "1")]);
        a.inc();
        b.inc();
        c.inc();
        assert_eq!(a.get(), 2, "same labels share the cell");
        assert_eq!(c.get(), 1, "different labels get their own cell");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_is_a_registration_error() {
        let r = Registry::new();
        let _ = r.counter("avoc_mixed", "");
        let _ = r.gauge("avoc_mixed", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected_at_registration() {
        let _ = Registry::new().counter("bad name", "");
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let g = Registry::new().gauge("avoc_hw", "");
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn prometheus_text_has_headers_values_and_escaping() {
        let r = Registry::new();
        r.counter_with("avoc_frames_total", "Frames by tag.", &[("tag", "reading")])
            .add(3);
        r.gauge("avoc_depth", "Queue depth.").set(-2);
        let nasty = "a\"b\\c\nd";
        r.counter_with("avoc_esc_total", "", &[("v", nasty)]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("# HELP avoc_frames_total Frames by tag."));
        assert!(text.contains("# TYPE avoc_frames_total counter"));
        assert!(text.contains("avoc_frames_total{tag=\"reading\"} 3"));
        assert!(text.contains("avoc_depth -2"));
        assert!(text.contains("avoc_esc_total{v=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn histogram_family_children_share_bounds() {
        let r = Registry::new();
        let a = r.histogram_with("avoc_lat", "", &[10, 100], &[("s", "1")]);
        // A later caller with different bounds still lands on the family's
        // canonical layout.
        let b = r.histogram_with("avoc_lat", "", &[7], &[("s", "2")]);
        assert_eq!(a.snapshot().bounds, b.snapshot().bounds);
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_with_inf_equal_count() {
        let r = Registry::new();
        let h = r.histogram("avoc_h", "", &[10, 100]);
        for v in [1, 5, 50, 500, 5000] {
            h.record(v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("avoc_h_bucket{le=\"10\"} 2"));
        assert!(text.contains("avoc_h_bucket{le=\"100\"} 3"));
        assert!(text.contains("avoc_h_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("avoc_h_count 5"));
        assert!(text.contains("avoc_h_sum 5556"));
    }

    #[test]
    fn json_exposition_covers_all_kinds() {
        let r = Registry::new();
        r.counter("avoc_c", "").add(7);
        r.gauge_with("avoc_g", "", &[("shard", "0")]).set(4);
        r.histogram("avoc_hh", "", &[10]).record(3);
        let json = r.render_json();
        assert!(json.contains("\"avoc_c\": 7"));
        assert!(json.contains("\"avoc_g{shard=\\\"0\\\"}\": 4"));
        assert!(json.contains("\"avoc_hh\": {\"count\": 1"));
    }
}
