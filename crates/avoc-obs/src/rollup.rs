//! Cluster-wide Prometheus roll-up: merge several scraped exposition
//! texts into one.
//!
//! A gateway fronting N daemons wants a single `/metrics` surface that an
//! operator can scrape without knowing the membership. Each member already
//! renders its own [`crate::Registry`] in Prometheus text exposition; this
//! module merges those texts by **summing samples with the same name and
//! label set** across sources, so `avoc_rounds_fused_total` on the roll-up
//! is the cluster total while `avoc_rounds_fused_total{shard="0"}` stays a
//! per-shard (now cluster-wide per-shard) cell.
//!
//! Summation is the right fold for counters and histogram buckets, and for
//! every gauge this codebase exports (queue depths, session counts,
//! placement gauges — all extensive quantities). `# HELP` / `# TYPE`
//! comments are taken from the first source that defines a family;
//! families and samples keep first-seen order so repeated scrapes diff
//! cleanly.
//!
//! The parser is deliberately forgiving: lines that don't parse as
//! `key value` samples or `# HELP` / `# TYPE` comments are skipped, so a
//! partially garbled member scrape degrades the roll-up instead of
//! failing it.

use std::collections::HashMap;
use std::fmt::Write as _;

/// One merged metric family: comment lines plus summed samples.
#[derive(Debug)]
struct Family {
    name: String,
    help: Option<String>,
    kind: Option<String>,
    /// Sample key (`name{labels}`) → index into `samples`, preserving
    /// first-seen order.
    index: HashMap<String, usize>,
    samples: Vec<(String, f64)>,
}

/// Splits a sample line into `(key, value)`. The value is the text after
/// the last space; Prometheus optional trailing timestamps are not
/// produced by [`crate::Registry::render_prometheus`] and are treated as
/// unparseable here.
fn split_sample(line: &str) -> Option<(&str, f64)> {
    let at = line.rfind(' ')?;
    let (key, value) = (line[..at].trim_end(), line[at + 1..].trim());
    if key.is_empty() {
        return None;
    }
    value.parse::<f64>().ok().map(|v| (key, v))
}

/// The family name of a sample key: everything before the label block.
/// `_bucket` / `_sum` / `_count` histogram suffixes are folded into their
/// base family so a histogram's samples stay grouped under one `# TYPE`.
fn family_of(key: &str) -> &str {
    let name = key.split('{').next().unwrap_or(key);
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if !base.is_empty() {
                return base;
            }
        }
    }
    name
}

/// Renders a merged value: sums of integral samples print as integers
/// (the way [`crate::Registry::render_prometheus`] prints counters and
/// gauges), everything else falls back to `f64` display.
fn render_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parses one exposition text into `(key, value)` samples, comment and
/// blank lines skipped. The gate a roll-up consumer uses to assert that
/// merged totals equal the sum of member scrapes.
pub fn parse_samples(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| split_sample(l).map(|(k, v)| (k.to_string(), v)))
        .collect()
}

/// Looks up one sample by exact key (`name` or `name{label="v"}`) in an
/// exposition text.
pub fn sample_value(text: &str, key: &str) -> Option<f64> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(split_sample)
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// Merges several Prometheus exposition texts: samples with the same
/// `name{labels}` key are summed, `# HELP`/`# TYPE` come from the first
/// source defining each family, first-seen order is preserved.
pub fn merge(sources: &[&str]) -> String {
    let mut families: Vec<Family> = Vec::new();
    let mut by_name: HashMap<String, usize> = HashMap::new();

    let family_at =
        |families: &mut Vec<Family>, by_name: &mut HashMap<String, usize>, name: &str| -> usize {
            if let Some(&i) = by_name.get(name) {
                return i;
            }
            families.push(Family {
                name: name.to_string(),
                help: None,
                kind: None,
                index: HashMap::new(),
                samples: Vec::new(),
            });
            by_name.insert(name.to_string(), families.len() - 1);
            families.len() - 1
        };

    for source in sources {
        for line in source.lines().map(str::trim) {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                if let Some((name, help)) = rest.split_once(' ') {
                    let i = family_at(&mut families, &mut by_name, name);
                    if families[i].help.is_none() {
                        families[i].help = Some(help.to_string());
                    }
                }
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                if let Some((name, kind)) = rest.split_once(' ') {
                    let i = family_at(&mut families, &mut by_name, name);
                    if families[i].kind.is_none() {
                        families[i].kind = Some(kind.to_string());
                    }
                }
            } else if line.starts_with('#') {
                continue;
            } else if let Some((key, value)) = split_sample(line) {
                let i = family_at(&mut families, &mut by_name, family_of(key));
                let f = &mut families[i];
                match f.index.get(key) {
                    Some(&j) => f.samples[j].1 += value,
                    None => {
                        f.index.insert(key.to_string(), f.samples.len());
                        f.samples.push((key.to_string(), value));
                    }
                }
            }
        }
    }

    let mut out = String::new();
    for f in &families {
        if let Some(help) = &f.help {
            let _ = writeln!(out, "# HELP {} {}", f.name, help);
        }
        if let Some(kind) = &f.kind {
            let _ = writeln!(out, "# TYPE {} {}", f.name, kind);
        }
        for (key, value) in &f.samples {
            let _ = writeln!(out, "{} {}", key, render_value(*value));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn sums_matching_samples_across_sources() {
        let a =
            "# HELP x_total Things.\n# TYPE x_total counter\nx_total 3\nx_total{node=\"1\"} 2\n";
        let b =
            "# HELP x_total Things.\n# TYPE x_total counter\nx_total 4\nx_total{node=\"2\"} 5\n";
        let merged = merge(&[a, b]);
        assert_eq!(sample_value(&merged, "x_total"), Some(7.0));
        assert_eq!(sample_value(&merged, "x_total{node=\"1\"}"), Some(2.0));
        assert_eq!(sample_value(&merged, "x_total{node=\"2\"}"), Some(5.0));
        // HELP/TYPE appear exactly once.
        assert_eq!(merged.matches("# HELP x_total").count(), 1);
        assert_eq!(merged.matches("# TYPE x_total").count(), 1);
    }

    #[test]
    fn disjoint_families_are_both_kept_in_first_seen_order() {
        let a = "# TYPE a_total counter\na_total 1\n";
        let b = "# TYPE b_total counter\nb_total 2\n";
        let merged = merge(&[a, b]);
        let a_at = merged.find("a_total 1").unwrap();
        let b_at = merged.find("b_total 2").unwrap();
        assert!(a_at < b_at);
    }

    #[test]
    fn histogram_suffixes_fold_into_their_base_family() {
        let a = "# TYPE lat histogram\nlat_bucket{le=\"1\"} 2\nlat_sum 1.5\nlat_count 2\n";
        let b = "lat_bucket{le=\"1\"} 3\nlat_sum 0.25\nlat_count 3\n";
        let merged = merge(&[a, b]);
        assert_eq!(sample_value(&merged, "lat_bucket{le=\"1\"}"), Some(5.0));
        assert_eq!(sample_value(&merged, "lat_sum"), Some(1.75));
        assert_eq!(sample_value(&merged, "lat_count"), Some(5.0));
        // The folded family renders one TYPE line, before every sample.
        assert_eq!(merged.matches("# TYPE lat histogram").count(), 1);
    }

    #[test]
    fn garbage_lines_degrade_instead_of_failing() {
        let merged = merge(&["not a sample\nx_total definitely-not-a-number\nx_total 1\n"]);
        assert_eq!(sample_value(&merged, "x_total"), Some(1.0));
        assert_eq!(parse_samples(&merged).len(), 1);
    }

    #[test]
    fn merging_real_registry_renders_matches_cell_sums() {
        let r1 = Registry::new();
        let r2 = Registry::new();
        r1.counter("demo_total", "Demo.").add(3);
        r2.counter("demo_total", "Demo.").add(4);
        r1.gauge_with("demo_gauge", "Demo gauge.", &[("node", "1")])
            .set(2);
        r2.gauge_with("demo_gauge", "Demo gauge.", &[("node", "2")])
            .set(5);
        let merged = merge(&[&r1.render_prometheus(), &r2.render_prometheus()]);
        assert_eq!(sample_value(&merged, "demo_total"), Some(7.0));
        assert_eq!(sample_value(&merged, "demo_gauge{node=\"1\"}"), Some(2.0));
        assert_eq!(sample_value(&merged, "demo_gauge{node=\"2\"}"), Some(5.0));
    }
}
