//! A fixed-capacity ring of per-round span events.
//!
//! Aggregate histograms say *how much* time rounds spend; the trace ring
//! says *where*: each sampled round leaves one [`Span`] per pipeline stage
//! (`ingest → queue → fuse → flush`), so queue delay, fuse time and writer
//! flush time are separable per tenant after the fact. The ring is
//! preallocated and spans are `Copy`, so recording allocates nothing; a
//! 1-in-N sampling gate ([`TraceRing::sample`]) keeps the cost of an
//! *unsampled* round to a single relaxed atomic increment — and to nothing
//! at all when tracing is disabled.

use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Nanoseconds since the first call in this process. Monotonic and shared
/// across threads, so spans recorded anywhere in the process line up on one
/// timeline.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A pipeline stage a round passes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Frame decoded off the wire and handed to the service.
    Ingest,
    /// Time spent in a shard mailbox before the worker picked it up.
    Queue,
    /// The fusion round itself (`VotingEngine::submit`).
    Fuse,
    /// Results flushed to the tenant's sink.
    Flush,
}

impl Stage {
    /// Lower-case stage name used in exposition.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Queue => "queue",
            Stage::Fuse => "fuse",
            Stage::Flush => "flush",
        }
    }
}

/// One recorded stage of one sampled round. `Copy`, so recording never
/// allocates.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Session (tenant) the round belongs to.
    pub session: u64,
    /// Round index within the session.
    pub round: u64,
    /// Which pipeline stage this span measures.
    pub stage: Stage,
    /// Stage start, in [`now_ns`] time.
    pub start_ns: u64,
    /// Stage duration in nanoseconds.
    pub dur_ns: u64,
}

#[derive(Debug)]
struct Slots {
    /// Preallocated storage; never grows after construction.
    buf: Vec<Span>,
    /// Next write position.
    head: usize,
    /// Number of live spans (`== buf.capacity()` once the ring has wrapped).
    len: usize,
}

#[derive(Debug)]
struct Inner {
    every: u64,
    tick: AtomicU64,
    capacity: usize,
    slots: Mutex<Slots>,
}

/// A shareable trace ring. Clones are cheap and record into the same ring.
#[derive(Debug, Clone)]
pub struct TraceRing {
    inner: Arc<Inner>,
}

impl TraceRing {
    /// A ring holding up to `capacity` spans, sampling one round in
    /// `every`. `every == 0` disables tracing entirely; `every == 1`
    /// samples every round.
    pub fn new(capacity: usize, every: u64) -> Self {
        TraceRing {
            inner: Arc::new(Inner {
                every,
                tick: AtomicU64::new(0),
                capacity,
                slots: Mutex::new(Slots {
                    buf: Vec::with_capacity(capacity),
                    head: 0,
                    len: 0,
                }),
            }),
        }
    }

    /// A disabled ring: [`TraceRing::sample`] is always `false` and costs
    /// one branch.
    pub fn disabled() -> Self {
        TraceRing::new(0, 0)
    }

    /// Whether this ring ever samples.
    pub fn is_enabled(&self) -> bool {
        self.inner.every != 0 && self.inner.capacity != 0
    }

    /// The configured 1-in-N sampling cadence (0 = disabled).
    pub fn every(&self) -> u64 {
        self.inner.every
    }

    /// The sampling decision for the next round: `true` once per `every`
    /// calls. One relaxed `fetch_add` when enabled, one branch when not.
    pub fn sample(&self) -> bool {
        if !self.is_enabled() {
            return false;
        }
        self.inner
            .tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.inner.every)
    }

    /// Records one span, overwriting the oldest once full. Allocation-free:
    /// the ring's storage is preallocated and `Span` is `Copy`.
    pub fn record(&self, span: Span) {
        if !self.is_enabled() {
            return;
        }
        let mut slots = self.inner.slots.lock();
        let head = slots.head;
        if slots.len < self.inner.capacity {
            slots.buf.push(span);
            slots.len += 1;
        } else {
            slots.buf[head] = span;
        }
        slots.head = (head + 1) % self.inner.capacity;
    }

    /// Every live span, oldest first.
    pub fn snapshot(&self) -> Vec<Span> {
        let slots = self.inner.slots.lock();
        let mut out = Vec::with_capacity(slots.len);
        if slots.len == slots.buf.len() && slots.len > 0 {
            // Wrapped: oldest span sits at `head`.
            out.extend_from_slice(&slots.buf[slots.head..]);
            out.extend_from_slice(&slots.buf[..slots.head]);
        } else {
            out.extend_from_slice(&slots.buf);
        }
        out
    }

    /// Live spans for one session, oldest first.
    pub fn for_session(&self, session: u64) -> Vec<Span> {
        self.snapshot()
            .into_iter()
            .filter(|s| s.session == session)
            .collect()
    }

    /// Renders spans (optionally filtered to one session) as a JSON array
    /// of `{"session", "round", "stage", "start_ns", "dur_ns"}` objects,
    /// oldest first.
    pub fn render_json(&self, session: Option<u64>) -> String {
        let spans = match session {
            Some(id) => self.for_session(id),
            None => self.snapshot(),
        };
        let mut out = String::from("[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"session\": {}, \"round\": {}, \"stage\": \"{}\", \
                 \"start_ns\": {}, \"dur_ns\": {}}}",
                s.session,
                s.round,
                s.stage.as_str(),
                s.start_ns,
                s.dur_ns
            );
        }
        out.push_str("]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(session: u64, round: u64) -> Span {
        Span {
            session,
            round,
            stage: Stage::Fuse,
            start_ns: round * 10,
            dur_ns: 5,
        }
    }

    #[test]
    fn sampling_fires_once_per_cadence() {
        let ring = TraceRing::new(16, 4);
        let hits = (0..32).filter(|_| ring.sample()).count();
        assert_eq!(hits, 8, "1-in-4 over 32 rounds");
    }

    #[test]
    fn disabled_ring_never_samples_or_records() {
        let ring = TraceRing::disabled();
        assert!(!ring.is_enabled());
        assert!((0..100).all(|_| !ring.sample()));
        ring.record(span(1, 1));
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn ring_wraps_keeping_newest_oldest_first() {
        let ring = TraceRing::new(4, 1);
        for round in 0..6 {
            ring.record(span(1, round));
        }
        let rounds: Vec<u64> = ring.snapshot().iter().map(|s| s.round).collect();
        assert_eq!(rounds, vec![2, 3, 4, 5]);
    }

    #[test]
    fn per_session_filter_and_json() {
        let ring = TraceRing::new(8, 1);
        ring.record(span(1, 0));
        ring.record(span(2, 0));
        ring.record(span(1, 1));
        assert_eq!(ring.for_session(1).len(), 2);
        let json = ring.render_json(Some(2));
        assert!(json.contains("\"session\": 2"));
        assert!(!json.contains("\"session\": 1"));
        assert!(json.contains("\"stage\": \"fuse\""));
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
