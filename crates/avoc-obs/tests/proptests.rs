//! Property tests for the exposition formats and the admin HTTP parser.
//!
//! The Prometheus text renderer is the piece external tooling parses, so
//! its invariants are checked over generated inputs: label values survive
//! escaping round-trips, histogram buckets render cumulatively
//! nondecreasing, and the `+Inf` bucket always equals `_count`. The HTTP
//! parser faces the open network, so the property there is blunter: any
//! byte soup must produce a typed error, never a panic.

use avoc_obs::http::{parse_request, ParseError};
use avoc_obs::{Histogram, Registry};
use proptest::prelude::*;

/// Inverts the Prometheus label-value escaping applied by the renderer.
fn unescape_label(escaped: &str) -> String {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Pulls `(le, cumulative)` pairs for `name_bucket` lines, in render order.
fn bucket_lines(text: &str, name: &str) -> Vec<(String, u64)> {
    let prefix = format!("{name}_bucket{{le=\"");
    text.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix(&prefix)?;
            let (le, value) = rest.split_once("\"} ")?;
            Some((le.to_string(), value.parse().ok()?))
        })
        .collect()
}

/// The value of a single `name value` line.
fn scalar_line(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse().ok())
}

proptest! {
    #[test]
    fn label_values_round_trip_through_escaping(value in "[a-z0-9\"\\\n {}=,]{0,16}") {
        let registry = Registry::new();
        registry
            .counter_with("avoc_prop_total", "", &[("v", &value)])
            .inc();
        let text = registry.render_prometheus();
        // Exactly one sample line, however hostile the label value: raw
        // newlines must have been escaped away.
        let samples: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("avoc_prop_total{"))
            .collect();
        prop_assert_eq!(samples.len(), 1, "splintered sample line: {:?}", samples);
        let escaped = samples[0]
            .strip_prefix("avoc_prop_total{v=\"")
            .and_then(|rest| rest.strip_suffix("\"} 1"));
        prop_assert!(escaped.is_some(), "unparseable line {:?}", samples[0]);
        prop_assert_eq!(unescape_label(escaped.unwrap()), value);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_inf_equals_count(
        values in prop::collection::vec(0u64..5_000_000, 0..64),
    ) {
        let registry = Registry::new();
        let hist = registry.histogram(
            "avoc_prop_h",
            "",
            &[10, 100, 1_000, 10_000, 100_000, 1_000_000],
        );
        for &v in &values {
            hist.record(v);
        }
        let text = registry.render_prometheus();
        let buckets = bucket_lines(&text, "avoc_prop_h");
        prop_assert!(!buckets.is_empty(), "no bucket lines rendered");
        for pair in buckets.windows(2) {
            prop_assert!(
                pair[0].1 <= pair[1].1,
                "cumulative counts decreased: {:?}",
                buckets
            );
        }
        let (last_le, last_cum) = buckets.last().unwrap().clone();
        prop_assert_eq!(last_le, "+Inf");
        let count = scalar_line(&text, "avoc_prop_h_count");
        prop_assert_eq!(Some(last_cum), count, "+Inf bucket != _count");
        prop_assert_eq!(last_cum, values.len() as u64);
        let sum = scalar_line(&text, "avoc_prop_h_sum");
        prop_assert_eq!(Some(values.iter().sum::<u64>()), sum);
    }

    #[test]
    fn quantiles_never_leave_the_recorded_range(
        values in prop::collection::vec(1u64..10_000_000_000, 1..48),
        q in 0.0f64..=1.0,
    ) {
        let hist = Histogram::latency_ns();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let est = snap.quantile(q);
        prop_assert!(
            snap.min <= est && est <= snap.max,
            "quantile({}) = {} outside [{}, {}]",
            q,
            est,
            snap.min,
            snap.max
        );
    }

    #[test]
    fn parser_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // The property is the absence of a panic; the result just has to be
        // a typed verdict.
        let verdict = parse_request(&bytes);
        prop_assert!(
            matches!(
                verdict,
                Ok(_)
                    | Err(ParseError::Incomplete)
                    | Err(ParseError::TooLarge)
                    | Err(ParseError::BadMethod)
                    | Err(ParseError::BadRequest)
            ),
            "unreachable verdict"
        );
    }

    #[test]
    fn parser_survives_structured_garbage(
        method in "[A-Z]{1,8}",
        target in "[a-z0-9/?=&._-]{0,24}",
    ) {
        let head = format!("{method} {target} HTTP/1.1\r\nHost: x\r\n\r\n");
        match parse_request(head.as_bytes()) {
            Ok(req) => {
                // Anything accepted must have come from a GET with an
                // absolute path, and the parsed path never contains the
                // query part.
                prop_assert_eq!(method, "GET");
                prop_assert!(target.starts_with('/'));
                prop_assert!(!req.path().contains('?'));
            }
            Err(e) => prop_assert!(e != ParseError::Incomplete, "complete head reported partial"),
        }
    }
}
