//! The admin endpoint: a hand-rolled HTTP/1.1 observability surface.
//!
//! One std `TcpListener`, one thread per (short-lived) connection, GET-only,
//! `Connection: close` — the substrate lives in [`avoc_obs::http`] so the
//! daemon grows a scrape surface without an HTTP dependency. Off by default;
//! enabled via [`crate::ServeConfig::admin_addr`] or spawned directly with
//! [`AdminServer::start`].
//!
//! Routes:
//!
//! * `/healthz` — health: `200 ok` when every domain is healthy, `503`
//!   with a JSON body naming the degraded domains and reasons otherwise
//!   (memory-only persistence, paused accept, …).
//! * `/metrics` — the full registry in Prometheus text exposition;
//!   `?format=json` renders the same cells as one JSON object.
//! * `/stats` — the legacy [`crate::CountersSnapshot`] JSON dump (same
//!   bytes a drain returns and a wire `StatsRequest` frame fetches).
//! * `/sessions` — live sessions: id, shard pin, resumability, rounds fused.
//! * `/segments` — the segment tier: live segment files (seq, generation,
//!   bytes, rows) and lifetime compaction statistics.
//! * `/trace` — sampled pipeline spans, oldest first; `?session=<id>`
//!   filters to one tenant.
//!
//! Hostile input never panics the daemon: oversized requests get `431`,
//! non-GET methods `405`, malformed heads `400`, unknown paths `404`.

use avoc_obs::http::{parse_request, write_response, ParseError, MAX_REQUEST_BYTES};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::service::VoterService;

/// How long an admin connection may dribble its request before being
/// dropped (scrapers send the whole head at once; anything slower is a
/// stuck or hostile peer).
const ADMIN_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// The daemon's admin/observability HTTP endpoint.
///
/// Runs beside the wire-protocol [`crate::TcpServer`] (which starts one
/// automatically when [`crate::ServeConfig::admin_addr`] is set), or
/// standalone next to an in-process [`VoterService`] — benchmarks and tests
/// scrape a live service this way.
#[derive(Debug)]
pub struct AdminServer {
    local_addr: SocketAddr,
    running: Arc<AtomicBool>,
    join: JoinHandle<()>,
}

impl AdminServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving the admin
    /// routes against `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(addr: &str, service: Arc<VoterService>) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let join = {
            let running = Arc::clone(&running);
            std::thread::Builder::new()
                .name("avoc-serve-admin".into())
                .spawn(move || accept_loop(listener, service, running))
                .expect("spawn admin accept loop")
        };
        Ok(AdminServer {
            local_addr,
            running,
            join,
        })
    }

    /// The address scrapers should hit.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins the accept thread. In-flight responses
    /// finish; new connections are refused.
    pub fn stop(self) {
        self.running.store(false, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.join.join();
    }
}

fn accept_loop(listener: TcpListener, service: Arc<VoterService>, running: Arc<AtomicBool>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while running.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if !running.load(Ordering::SeqCst) {
            break; // the stop() wake-up connection
        }
        let service = Arc::clone(&service);
        conns.push(std::thread::spawn(move || {
            let _ = serve_admin_connection(stream, &service);
        }));
        // Reap finished handlers so a long-lived daemon under periodic
        // scraping does not accumulate join handles.
        conns.retain(|c| !c.is_finished());
    }
    for c in conns {
        let _ = c.join();
    }
}

/// Reads one request (bounded by [`MAX_REQUEST_BYTES`]), answers it, closes.
fn serve_admin_connection(mut stream: TcpStream, service: &VoterService) -> io::Result<()> {
    let _ = stream.set_read_timeout(Some(ADMIN_READ_TIMEOUT));
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        match parse_request(&buf) {
            Ok(req) => {
                let (status, content_type, body) = route(&req, service);
                return write_response(&mut stream, status, content_type, &body);
            }
            Err(ParseError::Incomplete) => {
                if buf.len() > MAX_REQUEST_BYTES {
                    return respond_error(&mut stream, ParseError::TooLarge);
                }
            }
            Err(e) => return respond_error(&mut stream, e),
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // peer went away mid-request
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn respond_error(stream: &mut TcpStream, e: ParseError) -> io::Result<()> {
    let status = e.status();
    write_response(
        stream,
        status,
        "text/plain; charset=utf-8",
        &format!("{}\n", avoc_obs::http::reason(status)),
    )
}

/// Maps a parsed request to `(status, content type, body)`.
fn route(req: &avoc_obs::http::Request<'_>, service: &VoterService) -> (u16, &'static str, String) {
    const TEXT: &str = "text/plain; charset=utf-8";
    const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
    const JSON: &str = "application/json";
    match req.path() {
        // Healthy daemons answer the legacy `200 ok` byte-for-byte; a
        // degraded one fails the check with `503` and machine-readable
        // per-domain reasons, so load balancers and operators read the
        // same signal.
        "/healthz" => {
            let health = service.health();
            if health.is_ok() {
                (200, TEXT, "ok\n".to_string())
            } else {
                (health.status_code(), JSON, health.render_json())
            }
        }
        "/metrics" => {
            if req.query_param("format") == Some("json") {
                (200, JSON, service.obs_registry().render_json())
            } else {
                (200, PROM, service.obs_registry().render_prometheus())
            }
        }
        "/stats" => (200, JSON, service.counters().to_json()),
        // `?scope=durable` lists the ids with durable state this node owns
        // (a flat id array) — what a draining gateway unions with its
        // placement table; the default is the live in-memory view.
        "/sessions" => {
            if req.query_param("scope") == Some("durable") {
                (200, JSON, service.durable_sessions_json())
            } else {
                (200, JSON, service.sessions_json())
            }
        }
        "/segments" => (200, JSON, service.segments_json()),
        "/trace" => {
            let session = req
                .query_param("session")
                .and_then(|v| v.parse::<u64>().ok());
            if req.query_param("session").is_some() && session.is_none() {
                return (400, TEXT, "bad session id\n".to_string());
            }
            (200, JSON, service.trace().render_json(session))
        }
        _ => (404, TEXT, "not found\n".to_string()),
    }
}
