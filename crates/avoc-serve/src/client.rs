//! A small synchronous client for the [`crate::TcpServer`] daemon.

use avoc_core::ModuleId;
use avoc_net::message::DecodeError;
use avoc_net::{BatchReading, Message, SpecSource, MAX_BATCH_READINGS};
use bytes::BytesMut;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A tenant-side connection to a running voter daemon.
///
/// One client may multiplex any number of sessions over its connection;
/// results arrive interleaved and carry their session id. The client is
/// deliberately synchronous — a tenant that wants pipelining sends readings
/// and calls [`ServeClient::recv`] from separate clones of the stream, or
/// simply counts on one result per completed round.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    buf: BytesMut,
}

impl ServeClient {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient {
            stream,
            buf: BytesMut::with_capacity(4096),
        })
    }

    /// Opens a session governed by `spec`; admission errors arrive as
    /// [`Message::Error`] frames on this connection.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn open_session(&mut self, session: u64, modules: u32, spec: SpecSource) -> io::Result<()> {
        self.send(&Message::OpenSession {
            session,
            modules,
            spec,
        })
    }

    /// Streams one reading into a session's round.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_reading(
        &mut self,
        session: u64,
        module: ModuleId,
        round: u64,
        value: f64,
    ) -> io::Result<()> {
        self.send(&Message::SessionReading {
            session,
            module,
            round,
            value,
        })
    }

    /// Streams many readings into a session in batched frames, splitting
    /// at [`MAX_BATCH_READINGS`] so every frame stays under the protocol's
    /// size cap. An empty slice sends nothing.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_batch(&mut self, session: u64, readings: &[BatchReading]) -> io::Result<()> {
        for chunk in readings.chunks(MAX_BATCH_READINGS) {
            self.send(&Message::FeedBatch {
                session,
                readings: chunk.to_vec(),
            })?;
        }
        Ok(())
    }

    /// Closes a session, flushing its partially assembled rounds (their
    /// results still arrive on this connection).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn close_session(&mut self, session: u64) -> io::Result<()> {
        self.send(&Message::CloseSession { session })
    }

    /// Sends one raw frame.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        self.stream.write_all(&msg.encode())
    }

    /// Blocks until the next server frame (a [`Message::SessionResult`] or
    /// [`Message::Error`]) arrives.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the server closes the connection; `InvalidData`
    /// on an undecodable frame; other I/O errors as raised.
    pub fn recv(&mut self) -> io::Result<Message> {
        let mut chunk = [0u8; 4096];
        loop {
            match Message::decode(&mut self.buf) {
                Ok(msg) => return Ok(msg),
                Err(DecodeError::Incomplete) => {}
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("undecodable frame: {e:?}"),
                    ))
                }
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Receives exactly `n` frames (convenience for "one result per round").
    ///
    /// # Errors
    ///
    /// As [`ServeClient::recv`].
    pub fn recv_n(&mut self, n: usize) -> io::Result<Vec<Message>> {
        (0..n).map(|_| self.recv()).collect()
    }
}
