//! Clients for the [`crate::TcpServer`] daemon: a small synchronous
//! [`ServeClient`], and a [`ResilientClient`] wrapper that survives daemon
//! crashes via deadline-bounded I/O, capped-backoff retries and idempotent
//! session resume.

use avoc_core::ModuleId;
use avoc_net::cork::DEFAULT_CORK_LIMIT;
use avoc_net::message::DecodeError;
use avoc_net::{BatchReading, Message, SpecSource, MAX_BATCH_READINGS};
use bytes::{Buf, BytesMut};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Connection deadlines for daemon clients.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// How long a connect attempt may take before failing (default 10 s).
    pub connect_timeout: Duration,
    /// Read deadline on the result stream (default 30 s): a server that
    /// goes silent longer than this surfaces as an I/O error instead of a
    /// forever-blocked `recv`, which is what lets [`ResilientClient`]
    /// notice a dead daemon and reconnect.
    pub read_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Capped exponential backoff with deterministic jitter, governing how a
/// [`ResilientClient`] re-dials a daemon that refused or dropped it.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (connect + send/recv retries). At least
    /// 1; the default is 5.
    pub max_attempts: u32,
    /// Delay before the first retry (default 50 ms); doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling on the backoff (default 2 s).
    pub max_delay: Duration,
    /// Seeds the jitter stream: same seed, same delays — chaos tests stay
    /// reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (1-based): `base · 2^(a-1)`
    /// capped at `max_delay`, minus up to a quarter of deterministic jitter
    /// so a fleet of clients does not re-dial in lockstep.
    pub fn delay_for(&self, attempt: u32, rng: &mut u64) -> Duration {
        let doublings = attempt.saturating_sub(1).min(16);
        let exp = self
            .base_delay
            .saturating_mul(1u32 << doublings)
            .min(self.max_delay);
        let ms = exp.as_millis() as u64;
        let jitter = splitmix64(rng) % (ms / 4 + 1);
        Duration::from_millis(ms - jitter)
    }
}

/// A tenant-side connection to a running voter daemon.
///
/// One client may multiplex any number of sessions over its connection;
/// results arrive interleaved and carry their session id. The client is
/// deliberately synchronous — a tenant that wants pipelining sends readings
/// and calls [`ServeClient::recv`] from separate clones of the stream, or
/// simply counts on one result per completed round.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    buf: BytesMut,
    /// Reused outbound scratch: frames encode into it in place, so the
    /// steady-state send path performs no allocations.
    scratch: BytesMut,
    /// Results unpacked from a [`Message::ResultBatch`] but not yet handed
    /// to the caller ([`ServeClient::recv`] yields them one at a time).
    inbox: VecDeque<Message>,
    stats: ClientIoStats,
}

/// Wire-level I/O counters for one [`ServeClient`] connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientIoStats {
    /// Frames encoded into the outbound scratch buffer.
    pub frames_sent: u64,
    /// `write` syscalls issued (coalesced sends make this much smaller
    /// than `frames_sent`).
    pub writes: u64,
    /// Bytes written to the socket.
    pub bytes_sent: u64,
    /// Gateway/daemon [`Message::Redirect`] frames this client followed to
    /// a different node. Always `0` on a bare [`ServeClient`] (it is a
    /// dumb pipe); a [`ResilientClient`] counts its lifetime total here
    /// via [`ResilientClient::io_stats`].
    pub redirects_followed: u64,
}

impl ServeClient {
    /// Connects to a daemon with default [`ClientConfig`] deadlines.
    ///
    /// # Errors
    ///
    /// Propagates connection errors (including the connect timeout).
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connects with explicit deadlines: the connect is bounded by
    /// `config.connect_timeout` and every subsequent read by
    /// `config.read_timeout`.
    ///
    /// # Errors
    ///
    /// Propagates connection errors (including the connect timeout).
    pub fn connect_with(addr: SocketAddr, config: &ClientConfig) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        Ok(ServeClient {
            stream,
            buf: BytesMut::with_capacity(4096),
            scratch: BytesMut::with_capacity(4096),
            inbox: VecDeque::new(),
            stats: ClientIoStats::default(),
        })
    }

    /// Wire-level I/O counters for this connection.
    pub fn io_stats(&self) -> ClientIoStats {
        self.stats
    }

    /// Opens a session governed by `spec`; admission errors arrive as
    /// [`Message::Error`] frames on this connection.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn open_session(&mut self, session: u64, modules: u32, spec: SpecSource) -> io::Result<()> {
        self.send(&Message::OpenSession {
            session,
            modules,
            spec,
        })
    }

    /// Idempotent open/re-attach: the daemon re-attaches a live session
    /// whose `token` matches, restores it from a checkpoint, or opens it
    /// fresh — answering with [`Message::Resumed`] either way.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn resume_session(
        &mut self,
        session: u64,
        modules: u32,
        spec: SpecSource,
        token: u64,
        last_acked: Option<u64>,
    ) -> io::Result<()> {
        self.send(&Message::ResumeSession {
            session,
            modules,
            spec,
            token,
            last_acked,
        })
    }

    /// Streams one reading into a session's round.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_reading(
        &mut self,
        session: u64,
        module: ModuleId,
        round: u64,
        value: f64,
    ) -> io::Result<()> {
        self.send(&Message::SessionReading {
            session,
            module,
            round,
            value,
        })
    }

    /// Streams many readings into a session in batched frames, splitting
    /// at [`MAX_BATCH_READINGS`] so every frame stays under the protocol's
    /// size cap. An empty slice sends nothing.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_batch(&mut self, session: u64, readings: &[BatchReading]) -> io::Result<()> {
        // Frames encode straight from the slice (no per-chunk `Vec`) and
        // cork in the scratch buffer, so a large batch leaves in a few
        // `write` calls instead of one per frame.
        for chunk in readings.chunks(MAX_BATCH_READINGS) {
            Message::encode_feed_batch_into(session, chunk, &mut self.scratch);
            self.stats.frames_sent += 1;
            if self.scratch.len() >= DEFAULT_CORK_LIMIT {
                self.flush_scratch()?;
            }
        }
        self.flush_scratch()
    }

    /// Closes a session, flushing its partially assembled rounds (their
    /// results still arrive on this connection).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn close_session(&mut self, session: u64) -> io::Result<()> {
        self.send(&Message::CloseSession { session })
    }

    /// Sends one raw frame (encoded allocation-free into the reused
    /// scratch buffer).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        msg.encode_into(&mut self.scratch);
        self.stats.frames_sent += 1;
        self.flush_scratch()
    }

    /// Writes the scratch buffer out, counting each `write`. On error the
    /// scratch is cleared — a partial frame must never prefix the next
    /// send on a connection the caller decides to keep using.
    fn flush_scratch(&mut self) -> io::Result<()> {
        while !self.scratch.is_empty() {
            match self.stream.write(&self.scratch) {
                Ok(0) => {
                    self.scratch.clear();
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted no bytes",
                    ));
                }
                Ok(n) => {
                    self.stats.writes += 1;
                    self.stats.bytes_sent += n as u64;
                    self.scratch.advance(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.scratch.clear();
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Blocks until the next server frame (a [`Message::SessionResult`],
    /// [`Message::Resumed`] or [`Message::Error`]) arrives.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the server closes the connection; `InvalidData`
    /// on an undecodable frame; `WouldBlock`/`TimedOut` past the configured
    /// read deadline; other I/O errors as raised.
    pub fn recv(&mut self) -> io::Result<Message> {
        if let Some(msg) = self.inbox.pop_front() {
            return Ok(msg);
        }
        let mut chunk = [0u8; 4096];
        loop {
            match Message::decode(&mut self.buf) {
                Ok(Message::ResultBatch { session, results }) => {
                    // Unpack into per-round frames so callers see the same
                    // stream whether the daemon batched or not (which is
                    // what keeps resume replay and ack-floor dedup
                    // framing-agnostic).
                    let mut iter = results.into_iter();
                    let first = iter.next().expect("decoded batches are non-empty");
                    for r in iter {
                        self.inbox.push_back(Message::SessionResult {
                            session,
                            round: r.round,
                            value: r.value,
                            voted: r.voted,
                        });
                    }
                    return Ok(Message::SessionResult {
                        session,
                        round: first.round,
                        value: first.value,
                        voted: first.voted,
                    });
                }
                Ok(msg) => return Ok(msg),
                Err(DecodeError::Incomplete) => {}
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("undecodable frame: {e:?}"),
                    ))
                }
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Receives exactly `n` frames (convenience for "one result per round").
    ///
    /// # Errors
    ///
    /// As [`ServeClient::recv`].
    pub fn recv_n(&mut self, n: usize) -> io::Result<Vec<Message>> {
        (0..n).map(|_| self.recv()).collect()
    }

    /// Fetches the daemon's live counters over the wire (a
    /// [`Message::StatsRequest`] answered by a [`Message::StatsReply`]) and
    /// returns the snapshot JSON — the same bytes the admin `/stats` route
    /// serves. Result frames that interleave with the reply are kept, in
    /// order, for subsequent [`ServeClient::recv`] calls.
    ///
    /// # Errors
    ///
    /// Propagates write errors and the [`ServeClient::recv`] error modes.
    pub fn stats(&mut self) -> io::Result<String> {
        self.send(&Message::StatsRequest)?;
        let mut stash: VecDeque<Message> = VecDeque::new();
        loop {
            match self.recv() {
                Ok(Message::StatsReply { json }) => {
                    // Re-queue what arrived ahead of the reply, preserving
                    // arrival order in front of anything already inboxed.
                    while let Some(m) = stash.pop_back() {
                        self.inbox.push_front(m);
                    }
                    return Ok(json);
                }
                Ok(other) => stash.push_back(other),
                Err(e) => {
                    while let Some(m) = stash.pop_back() {
                        self.inbox.push_front(m);
                    }
                    return Err(e);
                }
            }
        }
    }
}

/// What one resilient session remembers between reconnects.
#[derive(Debug)]
struct SessionState {
    token: u64,
    modules: u32,
    spec: SpecSource,
    /// Highest round whose result this client has received.
    last_acked: Option<u64>,
    /// Readings for rounds past `last_acked`, replayed after a reconnect.
    unacked: VecDeque<BatchReading>,
}

/// Client-side resilience counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Connections re-established after a failure.
    pub reconnects: u64,
    /// Unacked readings replayed across all reconnects.
    pub replayed_readings: u64,
    /// Results dropped client-side because their round was already acked
    /// (the server re-emitted past the ack floor after a resume).
    pub duplicate_results_dropped: u64,
}

/// A [`ServeClient`] that survives daemon restarts.
///
/// Every send and receive runs under the [`RetryPolicy`]: on an I/O error
/// the client reconnects (bounded by the [`ClientConfig`] deadlines),
/// replays a [`Message::ResumeSession`] for every registered session with
/// its token and ack floor, re-sends the readings the server never
/// acknowledged, and drops any results the server re-emits for rounds this
/// client already saw — so the stream of results the caller observes has
/// no duplicated and no lost rounds, whatever the connection did.
///
/// # One session per cluster-homed client
///
/// A client pointed at a gateway follows [`Message::Redirect`] frames to
/// whichever node owns its session — and a redirect re-homes the *whole
/// connection*. Two sessions that hash to different owners cannot share
/// one redirect-following client: the handshake at one owner would
/// fresh-bootstrap the other session there, silently forking its stream.
/// The client therefore refuses to follow a redirect while more than one
/// session is registered; run one `ResilientClient` per session when
/// dialing a cluster. (Multiple sessions against a single standalone
/// daemon, which never redirects, remain fine.)
///
/// # Example
///
/// ```no_run
/// use avoc_serve::{ClientConfig, ResilientClient, RetryPolicy};
/// use avoc_net::SpecSource;
/// use avoc_core::ModuleId;
///
/// let mut client = ResilientClient::new(
///     "127.0.0.1:7777".parse().unwrap(),
///     ClientConfig::default(),
///     RetryPolicy::default(),
/// );
/// client.open_session(1, 3, SpecSource::Named("avoc".into()), 0xfeed)?;
/// client.send_reading(1, ModuleId::new(0), 0, 21.5)?;
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct ResilientClient {
    /// Where the next dial goes — the home address until a
    /// [`Message::Redirect`] points somewhere else.
    addr: SocketAddr,
    /// The address this client was created with (in a cluster, the
    /// gateway). A failed dial of a redirected-to node falls back here, so
    /// a migration target dying never strands the client on a dead addr.
    home: SocketAddr,
    config: ClientConfig,
    retry: RetryPolicy,
    conn: Option<ServeClient>,
    sessions: HashMap<u64, SessionState>,
    /// Frames that arrived while waiting for resume acknowledgements.
    pending: VecDeque<Message>,
    /// Latest `Resumed` observed per session: `(high_round, warm)`.
    resume_info: HashMap<u64, (Option<u64>, bool)>,
    rng: u64,
    ever_connected: bool,
    stats: ClientStats,
    /// Lifetime count of redirect frames followed to a different node.
    redirects_followed: u64,
    /// Highest ownership epoch seen per session, from [`Message::Redirect`]
    /// frames. A redirect carrying a *lower* epoch raced a newer placement
    /// and is discarded instead of flipping the client to a stale owner.
    epochs: HashMap<u64, u64>,
}

/// How many [`Message::Redirect`] hops one connection attempt may follow
/// before the client declares a routing loop and gives up the attempt. A
/// healthy cluster resolves in one hop (gateway → owner), two during a
/// migration race; anything deeper is misconfiguration.
pub const MAX_REDIRECT_HOPS: u32 = 4;

impl ResilientClient {
    /// Creates a client; the connection is established lazily on first use.
    pub fn new(addr: SocketAddr, config: ClientConfig, retry: RetryPolicy) -> Self {
        let rng = retry.jitter_seed;
        ResilientClient {
            addr,
            home: addr,
            config,
            retry,
            conn: None,
            sessions: HashMap::new(),
            pending: VecDeque::new(),
            resume_info: HashMap::new(),
            rng,
            ever_connected: false,
            stats: ClientStats::default(),
            redirects_followed: 0,
            epochs: HashMap::new(),
        }
    }

    /// Re-homes the client on a new daemon address (e.g. a restarted
    /// daemon on a fresh port, or a different gateway); the next operation
    /// reconnects and resumes there. This moves the *home* address too —
    /// in-band [`Message::Redirect`] frames, by contrast, move only the
    /// current target and are followed automatically (and counted in
    /// [`ClientIoStats::redirects_followed`]).
    pub fn redirect(&mut self, addr: SocketAddr) {
        self.addr = addr;
        self.home = addr;
        self.conn = None;
    }

    /// Client-side resilience counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Wire-level I/O counters: the live connection's (zeroed after a
    /// reconnect, like the connection itself), with
    /// [`ClientIoStats::redirects_followed`] carrying this client's
    /// lifetime total across every reconnect and redirect.
    pub fn io_stats(&self) -> ClientIoStats {
        let mut s = self
            .conn
            .as_ref()
            .map(ServeClient::io_stats)
            .unwrap_or_default();
        s.redirects_followed = self.redirects_followed;
        s
    }

    /// The latest [`Message::Resumed`] seen for `session`, as
    /// `(high_round, warm)`.
    pub fn last_resume(&self, session: u64) -> Option<(Option<u64>, bool)> {
        self.resume_info.get(&session).copied()
    }

    /// Registers and opens a session idempotently: the open is a
    /// [`Message::ResumeSession`] carrying `token`, so re-running it after
    /// a crash (or racing a reconnect) re-attaches instead of erroring.
    ///
    /// # Errors
    ///
    /// Connection errors after retries are exhausted.
    pub fn open_session(
        &mut self,
        session: u64,
        modules: u32,
        spec: SpecSource,
        token: u64,
    ) -> io::Result<()> {
        self.sessions.insert(
            session,
            SessionState {
                token,
                modules,
                spec,
                last_acked: None,
                unacked: VecDeque::new(),
            },
        );
        // The resume handshake in `ensure_conn` performs the actual open —
        // and every later reconnect re-performs it for free.
        self.with_io(|_c| Ok(()))
    }

    /// Streams one reading, remembering it until its round's result is
    /// acknowledged (so a reconnect can replay it).
    ///
    /// # Errors
    ///
    /// Connection errors after retries are exhausted.
    pub fn send_reading(
        &mut self,
        session: u64,
        module: ModuleId,
        round: u64,
        value: f64,
    ) -> io::Result<()> {
        let reading = BatchReading {
            module,
            round,
            value,
        };
        if let Some(s) = self.sessions.get_mut(&session) {
            s.unacked.push_back(reading);
        }
        self.with_io(move |c| c.send_reading(session, module, round, value))
    }

    /// Streams a batch of readings (same replay guarantees as
    /// [`ResilientClient::send_reading`]).
    ///
    /// # Errors
    ///
    /// Connection errors after retries are exhausted.
    pub fn send_batch(&mut self, session: u64, readings: &[BatchReading]) -> io::Result<()> {
        if let Some(s) = self.sessions.get_mut(&session) {
            s.unacked.extend(readings.iter().copied());
        }
        self.with_io(move |c| c.send_batch(session, readings))
    }

    /// Closes a session and forgets its resume state.
    ///
    /// # Errors
    ///
    /// Connection errors after retries are exhausted.
    pub fn close_session(&mut self, session: u64) -> io::Result<()> {
        let res = self.with_io(move |c| c.close_session(session));
        self.sessions.remove(&session);
        res
    }

    /// The next result or error frame, deduplicated: results for rounds at
    /// or below a session's ack floor (server re-emissions after a resume)
    /// are dropped, and `Resumed` frames are absorbed into
    /// [`ResilientClient::last_resume`].
    ///
    /// # Errors
    ///
    /// Connection errors after retries are exhausted.
    pub fn recv(&mut self) -> io::Result<Message> {
        loop {
            let msg = match self.pending.pop_front() {
                Some(m) => m,
                None => self.with_io(|c| c.recv())?,
            };
            match msg {
                Message::Resumed {
                    session,
                    high_round,
                    warm,
                } => {
                    self.resume_info.insert(session, (high_round, warm));
                }
                Message::Redirect {
                    session,
                    epoch,
                    addr,
                } => {
                    // A node announcing mid-stream that a session moved
                    // (migration): flip to the new owner and let the next
                    // I/O reconnect-and-resume there. A redirect carrying
                    // an epoch below the highest this client has seen for
                    // the session raced a newer placement and is discarded;
                    // an unparseable or self-referential address is ignored
                    // — the home fallback recovers routing either way. With
                    // more than one session registered the redirect is also
                    // ignored (see the type docs: a redirect re-homes the
                    // whole connection, which would fork the other
                    // sessions' streams).
                    if epoch < self.epochs.get(&session).copied().unwrap_or(0) {
                        continue;
                    }
                    if self.sessions.len() > 1 {
                        continue;
                    }
                    self.epochs.insert(session, epoch);
                    if let Ok(target) = addr.parse::<SocketAddr>() {
                        if target != self.addr {
                            self.addr = target;
                            self.redirects_followed += 1;
                            self.conn = None;
                        }
                    }
                }
                Message::SessionResult { session, round, .. } => {
                    if let Some(s) = self.sessions.get_mut(&session) {
                        if s.last_acked.is_some_and(|a| round <= a) {
                            self.stats.duplicate_results_dropped += 1;
                            continue;
                        }
                        s.last_acked = Some(s.last_acked.map_or(round, |a| a.max(round)));
                        // The round fused: its readings are done for.
                        s.unacked.retain(|r| r.round > round);
                    }
                    return Ok(msg);
                }
                other => return Ok(other),
            }
        }
    }

    /// Receives exactly `n` deduplicated result/error frames.
    ///
    /// # Errors
    ///
    /// As [`ResilientClient::recv`].
    pub fn recv_n(&mut self, n: usize) -> io::Result<Vec<Message>> {
        (0..n).map(|_| self.recv()).collect()
    }

    /// Runs `op` against a live connection, reconnecting (with resume and
    /// replay) under the retry policy when it fails.
    fn with_io<T>(
        &mut self,
        mut op: impl FnMut(&mut ServeClient) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            let res = match self.ensure_conn() {
                Ok(()) => op(self.conn.as_mut().expect("connection just ensured")),
                Err(e) => Err(e),
            };
            match res {
                Ok(v) => return Ok(v),
                Err(e) => {
                    self.conn = None;
                    // A redirected-to node that fails falls back to home
                    // (in a cluster: the gateway, which re-routes around
                    // the dead node); failing at home just retries home.
                    self.addr = self.home;
                    attempt += 1;
                    if attempt >= self.retry.max_attempts.max(1) {
                        return Err(e);
                    }
                    std::thread::sleep(self.retry.delay_for(attempt, &mut self.rng));
                }
            }
        }
    }

    /// Connects if needed and runs the resume handshake: one
    /// `ResumeSession` per registered session, one `Resumed` (or `Error`)
    /// awaited per session, then a replay of every unacknowledged reading.
    /// Frames that interleave with the handshake are queued for `recv`.
    ///
    /// A [`Message::Redirect`] answering the handshake (a gateway naming
    /// the owning node, or a node naming a session's migration target)
    /// re-dials the named address and re-runs the handshake there, up to
    /// [`MAX_REDIRECT_HOPS`] — an address already dialed in this attempt
    /// is a routing loop and fails the attempt instead.
    fn ensure_conn(&mut self) -> io::Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut visited: Vec<SocketAddr> = vec![self.addr];
        'dial: loop {
            let mut client = ServeClient::connect_with(self.addr, &self.config)?;
            if self.ever_connected {
                self.stats.reconnects += 1;
            }
            self.ever_connected = true;
            for (&id, s) in &self.sessions {
                client.resume_session(id, s.modules, s.spec.clone(), s.token, s.last_acked)?;
            }
            let mut awaiting: Vec<u64> = self.sessions.keys().copied().collect();
            while !awaiting.is_empty() {
                match client.recv()? {
                    Message::Resumed {
                        session,
                        high_round,
                        warm,
                    } => {
                        awaiting.retain(|&s| s != session);
                        self.resume_info.insert(session, (high_round, warm));
                    }
                    Message::Redirect {
                        session,
                        epoch,
                        addr,
                    } => {
                        if self.sessions.len() > 1 {
                            // A redirect re-homes the whole connection;
                            // following it would fresh-bootstrap every
                            // other registered session at a non-owner node,
                            // silently forking their streams. Refuse loudly
                            // instead (see the type docs).
                            return Err(io::Error::other(
                                "redirect refused: a cluster-homed client must manage \
                                 exactly one session (one ResilientClient per session)",
                            ));
                        }
                        if epoch < self.epochs.get(&session).copied().unwrap_or(0) {
                            // Stale placement: this node's routing raced a
                            // newer migration. Fail the attempt so the
                            // retry falls back to home (the gateway), which
                            // knows the current owner.
                            return Err(io::Error::other(format!(
                                "stale redirect for session {session}: epoch {epoch} \
                                 below highest seen"
                            )));
                        }
                        self.epochs.insert(session, epoch);
                        let target: SocketAddr = addr.parse().map_err(|_| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("undialable redirect address `{addr}`"),
                            )
                        })?;
                        if visited.contains(&target) {
                            return Err(io::Error::other(format!(
                                "redirect loop: {target} already dialed this attempt"
                            )));
                        }
                        if visited.len() as u32 > MAX_REDIRECT_HOPS {
                            return Err(io::Error::other(format!(
                                "redirect chain exceeded {MAX_REDIRECT_HOPS} hops"
                            )));
                        }
                        visited.push(target);
                        self.addr = target;
                        self.redirects_followed += 1;
                        continue 'dial;
                    }
                    Message::Error { session, .. }
                        if awaiting.contains(&session) && self.addr != self.home =>
                    {
                        // A redirected-to node refusing the resume (e.g.
                        // "session migrated to another node" after we
                        // raced a re-placement): go back to home — the
                        // gateway re-routes — instead of surfacing an
                        // error the cluster can still resolve. Home
                        // refusing is final, handled below.
                        if visited.contains(&self.home) {
                            return Err(io::Error::other(
                                "resume refused on every node this attempt dialed",
                            ));
                        }
                        visited.push(self.home);
                        self.addr = self.home;
                        continue 'dial;
                    }
                    Message::Error { session, .. } if awaiting.contains(&session) => {
                        // Resume refused (token mismatch / capacity):
                        // surface the error frame to the caller rather
                        // than retrying a handshake that will keep
                        // failing.
                        awaiting.retain(|&s| s != session);
                        self.pending.push_back(Message::Error {
                            session,
                            message: "resume refused".into(),
                        });
                    }
                    other => self.pending.push_back(other),
                }
            }
            for (&id, s) in &self.sessions {
                if s.unacked.is_empty() {
                    continue;
                }
                let readings: Vec<BatchReading> = s.unacked.iter().copied().collect();
                client.send_batch(id, &readings)?;
                self.stats.replayed_readings += readings.len() as u64;
            }
            self.conn = Some(client);
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delays_are_capped_and_deterministic() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(400),
            jitter_seed: 7,
        };
        let mut rng_a = policy.jitter_seed;
        let mut rng_b = policy.jitter_seed;
        for attempt in 1..=8 {
            let a = policy.delay_for(attempt, &mut rng_a);
            let b = policy.delay_for(attempt, &mut rng_b);
            assert_eq!(a, b, "same seed, same schedule");
            assert!(a <= policy.max_delay, "attempt {attempt} exceeds the cap");
        }
        // The un-jittered curve doubles then saturates: attempt 3 onward is
        // drawn from the capped 400 ms bucket, so it can never exceed it,
        // and attempt 1 stays within base.
        let mut rng = policy.jitter_seed;
        assert!(policy.delay_for(1, &mut rng) <= Duration::from_millis(100));
    }

    #[test]
    fn read_deadline_bounds_a_silent_server() {
        // A listener that accepts and then says nothing: without the read
        // deadline, `recv` would block forever.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let config = ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_millis(100),
        };
        let mut client = ServeClient::connect_with(addr, &config).unwrap();
        let started = std::time::Instant::now();
        let err = client
            .recv()
            .expect_err("silent server must time the read out");
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "unexpected error kind: {err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "read did not respect its deadline"
        );
        drop(hold.join());
    }
}
