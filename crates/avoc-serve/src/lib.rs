//! `avoc-serve`: a sharded, multi-tenant VDX voter service daemon.
//!
//! The paper's vision (§8) is a *voter service* on an edge node that any
//! deployment can hand a VDX document to. [`avoc_net::EdgeVoter`] realises
//! that for a single tenant and a single recorded trace; this crate turns it
//! into a long-running daemon that multiplexes many concurrent **voting
//! sessions** — each with its own VDX spec, module set, fusion engine and
//! history — over the `avoc-net` wire substrate.
//!
//! # Architecture
//!
//! ```text
//!                 ┌─────────────────────────────────────────────┐
//!  TCP clients ──▶│ avoc-net reactor pool: R event-loop threads │
//!                 │ (SO_REUSEPORT listeners, or accept handoff) │
//!                 │ each owns its accepted sockets for life;    │
//!                 │ streaming decode of frames (tags 5–11, 14)  │
//!                 └──────────────┬──────────────────────────────┘
//!                                │ route by hash(session id); a FeedBatch
//!                                │ travels as ONE ReadingBurst command
//!                 ┌──────────────▼──────────────┐
//!                 │ shard 0 .. shard N-1        │  bounded mailboxes: a
//!                 │  each: HashMap<id, Session> │  control lane (never shed)
//!                 │  Session = SensorHub        │  + a data lane (Block |
//!                 │          + VotingEngine     │  DropOldest | Reject)
//!                 └──────────────┬──────────────┘
//!                                │ ResultSink: bounded channel + ConnWaker
//!                 ┌──────────────▼──────────────┐
//!                 │ owning reactor drains each  │──▶ back to the client
//!                 │ conn's corked writer on wake│
//!                 └─────────────────────────────┘
//! ```
//!
//! * [`SpecRegistry`] — named VDX documents loaded from a `specs/`
//!   directory, plus inline VDX accepted at session open
//!   ([`avoc_net::SpecSource`]).
//! * [`VoterService`] — the sharded executor: sessions are pinned to one of
//!   N worker threads by session-id hash, so each session's rounds are fused
//!   in order without locks around engine state.
//! * [`ServeConfig`] — mailbox capacity and [`Backpressure`] policy, session
//!   capacity and [`AdmissionPolicy`], idle-tick eviction.
//! * [`ServiceCounters`] — sessions opened/evicted/rejected, rounds fused,
//!   fallbacks, readings/results dropped, per-shard queue-depth high-water
//!   marks and fuse-latency min/mean/p99, snapshotable while running and
//!   dumped on drain. Shards never block on a tenant's result sink: a slow
//!   tenant loses its own overflow (counted) instead of stalling the fleet.
//! * [`TcpServer`] / [`ServeClient`] — the socket front-end and a small
//!   blocking client for it.
//! * [`AdminServer`] — an optional plain-HTTP observability endpoint
//!   (`/metrics`, `/healthz`, `/stats`, `/sessions`, `/trace`) built on
//!   [`avoc_obs`]'s registry and span ring; enabled via
//!   [`ServeConfig::admin_addr`], off by default.
//!
//! # Example (in-process)
//!
//! ```
//! use avoc_net::SpecSource;
//! use avoc_serve::{ServeConfig, SpecRegistry, VoterService};
//! use avoc_core::ModuleId;
//! use std::sync::Arc;
//!
//! let mut registry = SpecRegistry::new();
//! registry.insert("avoc", avoc_vdx::VdxSpec::avoc());
//! let service = VoterService::start(ServeConfig::default(), Arc::new(registry));
//!
//! let (sink, results) = crossbeam::channel::unbounded();
//! service
//!     .open_session(7, 3, &SpecSource::Named("avoc".into()), sink)
//!     .unwrap();
//! for (module, value) in [(0, 18.0), (1, 18.2), (2, 17.9)] {
//!     service.feed(7, ModuleId::new(module), 0, value).unwrap();
//! }
//! service.close_session(7).unwrap();
//! let snapshot = service.drain();
//! assert_eq!(snapshot.rounds_fused, 1);
//! assert!(results.try_recv().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admin;
mod client;
mod metrics;
mod persist;
mod registry;
mod server;
mod service;
mod session;
mod shard;
mod sink;

pub use admin::AdminServer;
pub use client::{
    ClientConfig, ClientIoStats, ClientStats, ResilientClient, RetryPolicy, ServeClient,
    MAX_REDIRECT_HOPS,
};
pub use metrics::{CountersSnapshot, LatencySummary, ServiceCounters};
pub use persist::Persistence;
pub use registry::SpecRegistry;
pub use server::TcpServer;
pub use service::{AdmissionPolicy, ServeConfig, ServeError, VoterService};
pub use shard::Backpressure;
pub use sink::ResultSink;
