//! Service counters: cheap to record, snapshotable while the daemon runs.

use parking_lot::Mutex;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// How many fuse-latency samples the reservoir keeps. Old samples are
/// overwritten ring-style, so the p99 reflects recent behaviour rather than
/// the whole process lifetime.
const LATENCY_RESERVOIR: usize = 4096;

/// Live counters shared by every shard and connection of one daemon.
///
/// All hot-path fields are atomics; only the latency reservoir takes a lock,
/// and only for a push into a fixed ring.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    sessions_opened: AtomicU64,
    sessions_evicted: AtomicU64,
    sessions_rejected: AtomicU64,
    rounds_fused: AtomicU64,
    fallbacks: AtomicU64,
    readings_dropped: AtomicU64,
    results_dropped: AtomicU64,
    result_batches: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    frames_sent: AtomicU64,
    writer_flushes: AtomicU64,
    recoveries: AtomicU64,
    resumed_sessions: AtomicU64,
    retries: AtomicU64,
    checkpoint_bytes: AtomicU64,
    wal_replay_ns: AtomicU64,
    shard_queue_high_water: Vec<AtomicUsize>,
    latency: Mutex<LatencyReservoir>,
}

#[derive(Debug, Default)]
struct LatencyReservoir {
    /// Ring of recent per-fuse latencies in nanoseconds.
    samples: Vec<u64>,
    /// Next ring slot.
    head: usize,
    /// Total samples ever recorded.
    count: u64,
    /// Sum over all samples ever recorded (for the lifetime mean).
    sum_ns: u128,
    /// Lifetime minimum.
    min_ns: u64,
}

impl ServiceCounters {
    /// Counters for a daemon with `shards` workers.
    pub fn new(shards: usize) -> Self {
        ServiceCounters {
            shard_queue_high_water: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            ..ServiceCounters::default()
        }
    }

    pub(crate) fn session_opened(&self) {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_evicted(&self) {
        self.sessions_evicted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_rejected(&self) {
        self.sessions_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn reading_dropped(&self) {
        self.readings_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn result_dropped(&self) {
        self.results_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts every result a shed batch frame carried, so
    /// `results_dropped` keeps counting rounds, not frames.
    pub(crate) fn results_dropped_add(&self, n: u64) {
        self.results_dropped.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn result_batch(&self) {
        self.result_batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bytes_sent_add(&self, n: u64) {
        self.bytes_sent.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn bytes_received_add(&self, n: u64) {
        self.bytes_received.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn frames_sent_add(&self, n: u64) {
        self.frames_sent.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn writer_flushes_add(&self, n: u64) {
        self.writer_flushes.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_resumed(&self) {
        self.resumed_sessions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn checkpoint_bytes_add(&self, bytes: u64) {
        self.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn wal_replay_ns_add(&self, ns: u64) {
        self.wal_replay_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one fused round and its latency.
    pub(crate) fn round_fused(&self, latency_ns: u64) {
        self.rounds_fused.fetch_add(1, Ordering::Relaxed);
        let mut res = self.latency.lock();
        if res.samples.len() < LATENCY_RESERVOIR {
            res.samples.push(latency_ns);
        } else {
            let head = res.head;
            res.samples[head] = latency_ns;
        }
        res.head = (res.head + 1) % LATENCY_RESERVOIR;
        res.count += 1;
        res.sum_ns += u128::from(latency_ns);
        res.min_ns = if res.count == 1 {
            latency_ns
        } else {
            res.min_ns.min(latency_ns)
        };
    }

    /// Raises a shard's queue-depth high-water mark to `depth` if higher.
    pub(crate) fn note_queue_depth(&self, shard: usize, depth: usize) {
        if let Some(hw) = self.shard_queue_high_water.get(shard) {
            hw.fetch_max(depth, Ordering::Relaxed);
        }
    }

    /// A consistent-enough copy of every counter (individual loads are
    /// relaxed; the snapshot is for operators, not invariants).
    pub fn snapshot(&self) -> CountersSnapshot {
        let latency = {
            let res = self.latency.lock();
            if res.count == 0 {
                None
            } else {
                let mut recent: Vec<u64> = res.samples.clone();
                recent.sort_unstable();
                // Nearest-rank percentile: ceil(0.99 * n) as a 1-based rank.
                let p99_idx = (recent.len() * 99).div_ceil(100).saturating_sub(1);
                Some(LatencySummary {
                    samples: res.count,
                    min_us: res.min_ns as f64 / 1e3,
                    mean_us: (res.sum_ns as f64 / res.count as f64) / 1e3,
                    p99_us: recent[p99_idx] as f64 / 1e3,
                })
            }
        };
        CountersSnapshot {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            sessions_rejected: self.sessions_rejected.load(Ordering::Relaxed),
            rounds_fused: self.rounds_fused.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            readings_dropped: self.readings_dropped.load(Ordering::Relaxed),
            results_dropped: self.results_dropped.load(Ordering::Relaxed),
            result_batches: self.result_batches.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            writer_flushes: self.writer_flushes.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            resumed_sessions: self.resumed_sessions.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            wal_replay_ms: self.wal_replay_ns.load(Ordering::Relaxed) as f64 / 1e6,
            shard_queue_high_water: self
                .shard_queue_high_water
                .iter()
                .map(|hw| hw.load(Ordering::Relaxed))
                .collect(),
            fuse_latency: latency,
        }
    }
}

/// Fuse-latency statistics over the recent reservoir.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Total fuses recorded over the daemon's lifetime.
    pub samples: u64,
    /// Lifetime minimum, microseconds.
    pub min_us: f64,
    /// Lifetime mean, microseconds.
    pub mean_us: f64,
    /// 99th percentile of the recent reservoir, microseconds.
    pub p99_us: f64,
}

/// A point-in-time copy of [`ServiceCounters`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CountersSnapshot {
    /// Sessions successfully opened.
    pub sessions_opened: u64,
    /// Sessions evicted (idle-timeout or capacity eviction).
    pub sessions_evicted: u64,
    /// Session opens refused by admission control.
    pub sessions_rejected: u64,
    /// Rounds fused across all sessions.
    pub rounds_fused: u64,
    /// Fused rounds that resolved by falling back to a last-good value.
    pub fallbacks: u64,
    /// Readings dropped by `DropOldest`/`Reject` backpressure.
    pub readings_dropped: u64,
    /// Result/error frames dropped because a tenant's sink was full or
    /// gone: shards never block on a slow tenant, so its overflow is shed
    /// here and the tenant learns about the loss from this counter.
    pub results_dropped: u64,
    /// Batched result frames shipped (each carried two or more verdicts;
    /// lone verdicts still travel as plain `SessionResult` frames).
    pub result_batches: u64,
    /// Bytes written to tenant sockets by connection writer threads.
    pub bytes_sent: u64,
    /// Bytes read from tenant sockets by connection reader loops.
    pub bytes_received: u64,
    /// Frames encoded into outbound writer buffers.
    pub frames_sent: u64,
    /// Coalesced writer flushes; `frames_sent / writer_flushes` is the
    /// realized egress batching factor.
    pub writer_flushes: u64,
    /// Sessions rebuilt from a WAL checkpoint (eager recovery at daemon
    /// start, or lazily when a resume found no live session).
    pub recoveries: u64,
    /// Sessions successfully re-attached or restored for a resuming client.
    pub resumed_sessions: u64,
    /// Client resume requests received (each is one retry of a session).
    pub retries: u64,
    /// Bytes written by session checkpoints (WAL appends + meta rewrites).
    pub checkpoint_bytes: u64,
    /// Total time spent replaying session WALs, milliseconds.
    pub wal_replay_ms: f64,
    /// Per-shard mailbox depth high-water marks.
    pub shard_queue_high_water: Vec<usize>,
    /// Fuse-latency summary; `None` before the first fused round.
    pub fuse_latency: Option<LatencySummary>,
}

impl CountersSnapshot {
    /// Renders the snapshot as pretty JSON (the drain-time dump format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("counters are always serializable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_tracks_min_mean_p99() {
        let c = ServiceCounters::new(2);
        for ns in [1_000u64, 2_000, 3_000, 4_000, 100_000] {
            c.round_fused(ns);
        }
        let snap = c.snapshot();
        assert_eq!(snap.rounds_fused, 5);
        let lat = snap.fuse_latency.unwrap();
        assert_eq!(lat.samples, 5);
        assert!((lat.min_us - 1.0).abs() < 1e-9);
        assert!((lat.mean_us - 22.0).abs() < 1e-9);
        assert!((lat.p99_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn queue_high_water_is_monotone() {
        let c = ServiceCounters::new(2);
        c.note_queue_depth(0, 5);
        c.note_queue_depth(0, 3);
        c.note_queue_depth(1, 7);
        c.note_queue_depth(9, 100); // out-of-range shard is ignored
        assert_eq!(c.snapshot().shard_queue_high_water, vec![5, 7]);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let c = ServiceCounters::new(1);
        c.session_opened();
        c.round_fused(5_000);
        let json = c.snapshot().to_json();
        assert!(json.contains("\"sessions_opened\": 1"));
        assert!(json.contains("\"fuse_latency\""));
        assert!(json.contains("\"recoveries\""));
        assert!(json.contains("\"checkpoint_bytes\""));
    }

    #[test]
    fn wire_counters_accumulate() {
        let c = ServiceCounters::new(1);
        c.result_batch();
        c.result_batch();
        c.results_dropped_add(7);
        c.result_dropped();
        c.bytes_sent_add(4096);
        c.bytes_received_add(1024);
        c.frames_sent_add(64);
        c.writer_flushes_add(2);
        let snap = c.snapshot();
        assert_eq!(snap.result_batches, 2);
        assert_eq!(snap.results_dropped, 8);
        assert_eq!(snap.bytes_sent, 4096);
        assert_eq!(snap.bytes_received, 1024);
        assert_eq!(snap.frames_sent, 64);
        assert_eq!(snap.writer_flushes, 2);
        let json = snap.to_json();
        assert!(json.contains("\"result_batches\": 2"));
        assert!(json.contains("\"writer_flushes\": 2"));
    }

    #[test]
    fn recovery_counters_accumulate() {
        let c = ServiceCounters::new(1);
        c.recovery();
        c.session_resumed();
        c.session_resumed();
        c.retry();
        c.retry();
        c.retry();
        c.checkpoint_bytes_add(100);
        c.checkpoint_bytes_add(28);
        c.wal_replay_ns_add(2_500_000);
        let snap = c.snapshot();
        assert_eq!(snap.recoveries, 1);
        assert_eq!(snap.resumed_sessions, 2);
        assert_eq!(snap.retries, 3);
        assert_eq!(snap.checkpoint_bytes, 128);
        assert!((snap.wal_replay_ms - 2.5).abs() < 1e-9);
    }

    #[test]
    fn reservoir_wraps_without_losing_lifetime_stats() {
        let c = ServiceCounters::new(1);
        for i in 0..(LATENCY_RESERVOIR as u64 + 100) {
            c.round_fused(1_000 + i);
        }
        let lat = c.snapshot().fuse_latency.unwrap();
        assert_eq!(lat.samples, LATENCY_RESERVOIR as u64 + 100);
        assert!((lat.min_us - 1.0).abs() < 1e-9);
    }
}
