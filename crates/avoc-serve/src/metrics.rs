//! Service counters: cheap to record, snapshotable while the daemon runs.
//!
//! The counters live on an [`avoc_obs::Registry`], so the same cells feed
//! three surfaces at once: the drain-time [`CountersSnapshot`] dump (whose
//! JSON shape predates the registry and is kept byte-compatible), the
//! Prometheus/JSON exposition behind the admin endpoint, and the per-tenant
//! fuse-latency histograms (`avoc_session_fuse_latency_ns{session="..."}`)
//! the scrape path serves. Recording stays lock-free — handles are relaxed
//! atomics — and only the legacy latency reservoir takes a lock, for a push
//! into a fixed ring.

use avoc_net::{CorkMetrics, ReactorMetrics};
use avoc_obs::{Counter, Gauge, Health, HealthLevel, Histogram, Registry, TraceRing};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::{HashMap, HashSet};

/// How many fuse-latency samples the reservoir keeps. Old samples are
/// overwritten ring-style, so the p99 reflects recent behaviour rather than
/// the whole process lifetime.
const LATENCY_RESERVOIR: usize = 4096;

/// Live counters shared by every shard and connection of one daemon.
///
/// All hot-path fields are registry handles (relaxed atomics); only the
/// latency reservoir and the session directory take locks, and never on the
/// per-reading path.
#[derive(Debug)]
pub struct ServiceCounters {
    registry: Registry,
    trace: TraceRing,
    sessions_opened: Counter,
    sessions_evicted: Counter,
    sessions_rejected: Counter,
    rounds_fused: Counter,
    fallbacks: Counter,
    readings_dropped: Counter,
    results_dropped: Counter,
    result_batches: Counter,
    bytes_sent: Counter,
    bytes_received: Counter,
    frames_sent: Counter,
    writer_flushes: Counter,
    writer_writes: Counter,
    /// Each reactor's health cells (connections open, wakeups, events,
    /// dispatch latency), one entry per event-loop thread, labelled
    /// `{reactor="i"}`. Registered here so they surface on the same
    /// scrape and in the drain-time snapshot (which sums across reactors);
    /// each reactor thread records into clones of its own handles.
    reactors: Vec<ReactorMetrics>,
    /// Channel sends into shard data mailboxes. A `ReadingBurst` counts
    /// once however many readings it carries, so
    /// `shard_handoff_sends / readings` is the handoff amortisation factor
    /// the burst path exists to improve.
    shard_handoff_sends: Counter,
    recoveries: Counter,
    resumed_sessions: Counter,
    retries: Counter,
    checkpoint_bytes: Counter,
    wal_replay_ns: Counter,
    segment_load_ns: Counter,
    torn_tail_recoveries: Counter,
    compactions: Counter,
    segment_rounds_folded: Counter,
    segment_bytes_written: Counter,
    /// Live segment files in the tier (set from each compaction report).
    segments_live: Gauge,
    /// Per-shard mailbox-depth high-water marks
    /// (`avoc_shard_queue_high_water{shard="i"}`).
    shard_queue_high_water: Vec<Gauge>,
    /// Service-wide fuse latency on the log-linear nanosecond scale.
    fuse_latency_ns: Histogram,
    /// Checkpoint (WAL + meta write) latency.
    checkpoint_latency_ns: Histogram,
    /// WAL replay latency per recovered session.
    wal_replay_latency_ns: Histogram,
    /// Segment-tier cold-resume latency per recovered session (the fast
    /// path that competes with `wal_replay_latency_ns`).
    segment_load_latency_ns: Histogram,
    /// One compaction pass (fold + merge) end to end.
    compaction_latency_ns: Histogram,
    latency: Mutex<LatencyReservoir>,
    /// Live sessions, for the admin `/sessions` view. Touched only at
    /// session open/resume/close — never per reading.
    directory: Mutex<HashMap<u64, SessionEntry>>,
    /// The daemon's health plane: per-domain degradation state the admin
    /// `/healthz` route renders. Subsystems (session persistence, the
    /// reactor's accept path) set and clear their domains on transitions.
    health: Health,
    /// Sessions currently in degraded (memory-only) persistence; the
    /// `persistence` health domain is degraded while this is non-empty.
    degraded_ids: Mutex<HashSet<u64>>,
    /// Checkpoint attempts that failed (WAL or meta write error).
    checkpoint_failures: Counter,
    /// Times any session entered degraded (memory-only) persistence.
    degraded_entered: Counter,
    /// Sessions currently running memory-only.
    degraded_sessions: Gauge,
    /// Segments the tier quarantined on CRC/decode failure.
    segments_quarantined: Counter,
    /// Faults the `sysio` injector delivered (0 in production; the fault
    /// matrix asserts it moved).
    fault_injected: Counter,
    /// Sessions exported (checkpoint-shipped) to another node.
    sessions_exported: Counter,
    /// Sessions imported from another node's checkpoint shipment.
    sessions_imported: Counter,
    /// Checkpoints skipped at recovery because their meta named another
    /// node (the session migrated away; its files are the target's now).
    sessions_skipped_foreign: Counter,
}

/// What the directory remembers about one live session.
#[derive(Debug, Clone)]
struct SessionEntry {
    shard: usize,
    resumable: bool,
    /// The session's registered fuse histogram; its `count()` is the
    /// session's fused-round total.
    fuse: Histogram,
}

#[derive(Debug, Default)]
struct LatencyReservoir {
    /// Ring of recent per-fuse latencies in nanoseconds.
    samples: Vec<u64>,
    /// Next ring slot.
    head: usize,
    /// Total samples ever recorded.
    count: u64,
    /// Sum over all samples ever recorded (for the lifetime mean).
    sum_ns: u128,
    /// Lifetime minimum.
    min_ns: u64,
}

impl ServiceCounters {
    /// Counters for a daemon with `shards` workers and one reactor
    /// (tracing disabled).
    pub fn new(shards: usize) -> Self {
        ServiceCounters::with_observability(shards, 1, 0, 0)
    }

    /// Counters for `shards` workers and `reactors` event-loop threads,
    /// plus a trace ring holding `trace_capacity` spans, sampling one
    /// round in `trace_every` (`0` disables tracing).
    pub fn with_observability(
        shards: usize,
        reactors: usize,
        trace_capacity: usize,
        trace_every: u64,
    ) -> Self {
        let registry = Registry::new();
        let c = |name: &str, help: &str| registry.counter(name, help);
        ServiceCounters {
            sessions_opened: c(
                "avoc_sessions_opened_total",
                "Sessions successfully opened.",
            ),
            sessions_evicted: c(
                "avoc_sessions_evicted_total",
                "Sessions evicted (idle timeout or capacity).",
            ),
            sessions_rejected: c(
                "avoc_sessions_rejected_total",
                "Session opens refused by admission control.",
            ),
            rounds_fused: c(
                "avoc_rounds_fused_total",
                "Rounds fused across all sessions.",
            ),
            fallbacks: c(
                "avoc_fallbacks_total",
                "Fused rounds resolved by falling back to a last-good value.",
            ),
            readings_dropped: c(
                "avoc_readings_dropped_total",
                "Readings dropped by backpressure or unknown-session routing.",
            ),
            results_dropped: c(
                "avoc_results_dropped_total",
                "Results shed because a tenant sink was full or gone.",
            ),
            result_batches: c(
                "avoc_result_batches_total",
                "Batched result frames shipped.",
            ),
            bytes_sent: c("avoc_bytes_sent_total", "Bytes written to tenant sockets."),
            bytes_received: c(
                "avoc_bytes_received_total",
                "Bytes read from tenant sockets.",
            ),
            frames_sent: c(
                "avoc_frames_sent_total",
                "Frames encoded into outbound writer buffers.",
            ),
            writer_flushes: c("avoc_writer_flushes_total", "Coalesced writer flushes."),
            writer_writes: c(
                "avoc_writer_writes_total",
                "write(2) calls issued by connection writers.",
            ),
            reactors: (0..reactors.max(1))
                .map(|i| ReactorMetrics::register(&registry, &[("reactor", &i.to_string())]))
                .collect(),
            shard_handoff_sends: c(
                "avoc_shard_handoff_sends_total",
                "Channel sends into shard data mailboxes (a burst counts once).",
            ),
            recoveries: c(
                "avoc_recoveries_total",
                "Sessions rebuilt from a WAL checkpoint.",
            ),
            resumed_sessions: c(
                "avoc_resumed_sessions_total",
                "Sessions re-attached or restored for a resuming client.",
            ),
            retries: c("avoc_retries_total", "Client resume requests received."),
            checkpoint_bytes: c(
                "avoc_checkpoint_bytes_total",
                "Bytes written by session checkpoints.",
            ),
            wal_replay_ns: c(
                "avoc_wal_replay_ns_total",
                "Total nanoseconds spent replaying session WALs.",
            ),
            segment_load_ns: c(
                "avoc_segment_load_ns_total",
                "Total nanoseconds spent cold-resuming sessions from segments.",
            ),
            torn_tail_recoveries: c(
                "avoc_torn_tail_recoveries_total",
                "WAL opens that truncated a torn final line.",
            ),
            compactions: c(
                "avoc_compactions_total",
                "Segment-tier compaction passes completed.",
            ),
            segment_rounds_folded: c(
                "avoc_segment_rounds_folded_total",
                "History rows folded out of WALs into segments.",
            ),
            segment_bytes_written: c(
                "avoc_segment_bytes_written_total",
                "Bytes of segment files written by compaction.",
            ),
            segments_live: registry.gauge_with(
                "avoc_segments_live",
                "Segment files currently live in the tier.",
                &[],
            ),
            shard_queue_high_water: (0..shards)
                .map(|i| {
                    registry.gauge_with(
                        "avoc_shard_queue_high_water",
                        "Per-shard data-mailbox depth high-water mark.",
                        &[("shard", &i.to_string())],
                    )
                })
                .collect(),
            fuse_latency_ns: registry.latency_histogram_with(
                "avoc_fuse_latency_ns",
                "Per-round fusion latency, nanoseconds.",
                &[],
            ),
            checkpoint_latency_ns: registry.latency_histogram_with(
                "avoc_checkpoint_latency_ns",
                "Session checkpoint (WAL + meta) latency, nanoseconds.",
                &[],
            ),
            wal_replay_latency_ns: registry.latency_histogram_with(
                "avoc_wal_replay_latency_ns",
                "Per-session WAL replay latency on recovery, nanoseconds.",
                &[],
            ),
            segment_load_latency_ns: registry.latency_histogram_with(
                "avoc_segment_load_latency_ns",
                "Per-session segment cold-resume latency, nanoseconds.",
                &[],
            ),
            compaction_latency_ns: registry.latency_histogram_with(
                "avoc_compaction_latency_ns",
                "Compaction pass (fold + merge) latency, nanoseconds.",
                &[],
            ),
            latency: Mutex::new(LatencyReservoir::default()),
            directory: Mutex::new(HashMap::new()),
            health: Health::new(),
            degraded_ids: Mutex::new(HashSet::new()),
            checkpoint_failures: c(
                "avoc_checkpoint_failures_total",
                "Checkpoint attempts that failed (WAL or meta write error).",
            ),
            degraded_entered: c(
                "avoc_degraded_entered_total",
                "Times a session entered degraded (memory-only) persistence.",
            ),
            degraded_sessions: registry.gauge_with(
                "avoc_degraded_sessions",
                "Sessions currently running memory-only persistence.",
                &[],
            ),
            segments_quarantined: c(
                "avoc_segments_quarantined_total",
                "Segments quarantined by the tier on CRC/decode failure.",
            ),
            fault_injected: c(
                "avoc_fault_injected_total",
                "Faults delivered by the sysio injector (test/chaos runs only).",
            ),
            sessions_exported: c(
                "avoc_sessions_exported_total",
                "Sessions checkpoint-shipped to another node.",
            ),
            sessions_imported: c(
                "avoc_sessions_imported_total",
                "Sessions restored from another node's checkpoint shipment.",
            ),
            sessions_skipped_foreign: c(
                "avoc_sessions_skipped_foreign_total",
                "Recovery checkpoints skipped because their meta named another node.",
            ),
            trace: TraceRing::new(trace_capacity, trace_every),
            registry,
        }
    }

    /// The daemon's health plane handle (cheap clone; shared with the
    /// reactor and rendered by `/healthz`).
    pub fn health(&self) -> Health {
        self.health.clone()
    }

    /// Counts one failed checkpoint attempt.
    pub(crate) fn checkpoint_failure(&self) {
        self.checkpoint_failures.inc();
    }

    /// A session entered degraded (memory-only) persistence: count the
    /// transition and flag the `persistence` health domain.
    pub(crate) fn session_degraded(&self, id: u64) {
        let mut ids = self.degraded_ids.lock();
        if ids.insert(id) {
            self.degraded_entered.inc();
            self.degraded_sessions.set(ids.len() as i64);
            self.health.set(
                "persistence",
                HealthLevel::Degraded,
                &format!(
                    "{} session(s) running memory-only after repeated checkpoint failures",
                    ids.len()
                ),
            );
        }
    }

    /// A degraded session healed (or went away): update the gauge and
    /// clear the `persistence` domain once no degraded sessions remain.
    pub(crate) fn session_persistence_recovered(&self, id: u64) {
        let mut ids = self.degraded_ids.lock();
        if ids.remove(&id) {
            self.degraded_sessions.set(ids.len() as i64);
            if ids.is_empty() {
                self.health.set("persistence", HealthLevel::Ok, "");
            } else {
                self.health.set(
                    "persistence",
                    HealthLevel::Degraded,
                    &format!(
                        "{} session(s) running memory-only after repeated checkpoint failures",
                        ids.len()
                    ),
                );
            }
        }
    }

    /// Syncs the quarantine counter to the tier's lifetime total (the
    /// tier counts internally; the service mirrors it monotonically).
    pub(crate) fn quarantined_sync(&self, total: u64) {
        let cur = self.segments_quarantined.get();
        if total > cur {
            self.segments_quarantined.add(total - cur);
        }
    }

    /// The registry behind these counters — the admin endpoint's scrape
    /// surface, and the hook for other subsystems (writer corking, chaos
    /// proxies) to register their own metrics alongside the service's.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The daemon's trace ring (disabled unless configured).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Registers a session in the admin directory and returns its
    /// per-tenant fuse-latency histogram
    /// (`avoc_session_fuse_latency_ns{session="<id>"}`). Idempotent: a
    /// resume lands on the same cells, so the series survives reconnects.
    /// Registered series are kept for the process lifetime even after the
    /// session closes — a scrape's per-tenant counts always sum to the
    /// rounds the daemon fused.
    pub(crate) fn register_session(&self, id: u64, shard: usize, resumable: bool) -> Histogram {
        let fuse = self.registry.latency_histogram_with(
            "avoc_session_fuse_latency_ns",
            "Per-tenant fusion latency, nanoseconds.",
            &[("session", &id.to_string())],
        );
        self.directory.lock().insert(
            id,
            SessionEntry {
                shard,
                resumable,
                fuse: fuse.clone(),
            },
        );
        fuse
    }

    /// Removes a session from the admin directory (its registered series
    /// stay — see [`ServiceCounters::register_session`]). Every
    /// session-drop path funnels through here, so a session that dies
    /// while degraded also stops pinning the `persistence` health domain.
    pub(crate) fn deregister_session(&self, id: u64) {
        self.directory.lock().remove(&id);
        self.session_persistence_recovered(id);
    }

    /// The admin `/sessions` view: one JSON object per live session, sorted
    /// by id, with its shard pin, resumability and fused-round count.
    pub fn sessions_json(&self) -> String {
        let dir = self.directory.lock();
        let mut entries: Vec<(u64, SessionEntry)> =
            dir.iter().map(|(&id, e)| (id, e.clone())).collect();
        drop(dir);
        entries.sort_unstable_by_key(|(id, _)| *id);
        let rows: Vec<String> = entries
            .iter()
            .map(|(id, e)| {
                format!(
                    "{{\"session\": {id}, \"shard\": {}, \"resumable\": {}, \
                     \"rounds_fused\": {}}}",
                    e.shard,
                    e.resumable,
                    e.fuse.count()
                )
            })
            .collect();
        format!("[{}]\n", rows.join(", "))
    }

    pub(crate) fn session_opened(&self) {
        self.sessions_opened.inc();
    }

    pub(crate) fn session_evicted(&self) {
        self.sessions_evicted.inc();
    }

    pub(crate) fn session_rejected(&self) {
        self.sessions_rejected.inc();
    }

    pub(crate) fn fallback(&self) {
        self.fallbacks.inc();
    }

    pub(crate) fn reading_dropped(&self) {
        self.readings_dropped.inc();
    }

    /// Counts every reading a refused or shed burst carried, so
    /// `readings_dropped` keeps counting readings, not commands.
    pub(crate) fn readings_dropped_add(&self, n: u64) {
        self.readings_dropped.add(n);
    }

    pub(crate) fn result_dropped(&self) {
        self.results_dropped.inc();
    }

    /// Counts every result a shed batch frame carried, so
    /// `results_dropped` keeps counting rounds, not frames.
    pub(crate) fn results_dropped_add(&self, n: u64) {
        self.results_dropped.add(n);
    }

    pub(crate) fn result_batch(&self) {
        self.result_batches.inc();
    }

    /// Reactor `index`'s health cells — handed to
    /// [`avoc_net::reactor::spawn_pool`]'s per-reactor config so each
    /// event loop records into its own `{reactor="i"}` series on the same
    /// registry this snapshot reads. Out-of-range indices clamp to the
    /// last registered set rather than panic (a config race is not worth
    /// crashing the daemon over).
    pub(crate) fn reactor_metrics(&self, index: usize) -> ReactorMetrics {
        let i = index.min(self.reactors.len() - 1);
        self.reactors[i].clone()
    }

    /// Counts one channel send into a shard's data mailbox.
    pub(crate) fn handoff_send(&self) {
        self.shard_handoff_sends.inc();
    }

    /// The wire-egress cells as a [`CorkMetrics`] handle set: every
    /// reactor-owned connection's corked writer feeds the service's own
    /// `avoc_frames_sent_total` / `avoc_writer_flushes_total` /
    /// `avoc_writer_writes_total` / `avoc_bytes_sent_total` directly,
    /// with no per-flush delta bookkeeping.
    pub(crate) fn cork_metrics(&self) -> CorkMetrics {
        CorkMetrics::from_parts(
            self.frames_sent.clone(),
            self.writer_flushes.clone(),
            self.writer_writes.clone(),
            self.bytes_sent.clone(),
        )
    }

    /// The ingress byte counter cell, recorded by the reactor per read.
    pub(crate) fn bytes_received_counter(&self) -> Counter {
        self.bytes_received.clone()
    }

    pub(crate) fn recovery(&self) {
        self.recoveries.inc();
    }

    pub(crate) fn session_resumed(&self) {
        self.resumed_sessions.inc();
    }

    pub(crate) fn retry(&self) {
        self.retries.inc();
    }

    pub(crate) fn checkpoint_bytes_add(&self, bytes: u64) {
        self.checkpoint_bytes.add(bytes);
    }

    /// Records one checkpoint's write latency.
    pub(crate) fn checkpoint_latency_record(&self, ns: u64) {
        self.checkpoint_latency_ns.record(ns);
    }

    pub(crate) fn wal_replay_ns_add(&self, ns: u64) {
        self.wal_replay_ns.add(ns);
        self.wal_replay_latency_ns.record(ns);
    }

    /// Records one session recovery that seeded from the segment tier
    /// (no WAL to replay) — the counterpart of [`Self::wal_replay_ns_add`].
    pub(crate) fn segment_load_ns_add(&self, ns: u64) {
        self.segment_load_ns.add(ns);
        self.segment_load_latency_ns.record(ns);
    }

    /// Counts a WAL open that had to truncate a torn final line.
    pub(crate) fn torn_tail_recovered(&self) {
        self.torn_tail_recoveries.inc();
    }

    /// Records one compaction pass: how much it folded, what it wrote, how
    /// long it took, and how many segments the tier holds afterwards.
    pub(crate) fn compaction_recorded(
        &self,
        rows_folded: u64,
        bytes_written: u64,
        latency_ns: u64,
        segments_live: u64,
    ) {
        self.compactions.inc();
        self.segment_rounds_folded.add(rows_folded);
        self.segment_bytes_written.add(bytes_written);
        self.compaction_latency_ns.record(latency_ns);
        self.segments_live.set(segments_live as i64);
    }

    /// Records one fused round and its latency.
    pub(crate) fn round_fused(&self, latency_ns: u64) {
        self.rounds_fused.inc();
        self.fuse_latency_ns.record(latency_ns);
        let mut res = self.latency.lock();
        if res.samples.len() < LATENCY_RESERVOIR {
            res.samples.push(latency_ns);
        } else {
            let head = res.head;
            res.samples[head] = latency_ns;
        }
        res.head = (res.head + 1) % LATENCY_RESERVOIR;
        res.count += 1;
        res.sum_ns += u128::from(latency_ns);
        res.min_ns = if res.count == 1 {
            latency_ns
        } else {
            res.min_ns.min(latency_ns)
        };
    }

    /// Counts one session exported (checkpoint-shipped) to another node.
    pub(crate) fn session_exported(&self) {
        self.sessions_exported.inc();
    }

    /// Counts one session imported from another node's shipment.
    pub(crate) fn session_imported(&self) {
        self.sessions_imported.inc();
    }

    /// Counts one recovery checkpoint skipped for naming another node.
    pub(crate) fn session_skipped_foreign(&self) {
        self.sessions_skipped_foreign.inc();
    }

    /// Raises a shard's queue-depth high-water mark to `depth` if higher.
    pub(crate) fn note_queue_depth(&self, shard: usize, depth: usize) {
        if let Some(hw) = self.shard_queue_high_water.get(shard) {
            hw.set_max(depth as i64);
        }
    }

    /// A consistent-enough copy of every counter (individual loads are
    /// relaxed; the snapshot is for operators, not invariants).
    pub fn snapshot(&self) -> CountersSnapshot {
        // The injector counts process-globally; mirror its lifetime total
        // into the registry cell so scrapes and dumps agree.
        let injected = sysio::fault::injected_total();
        let cur = self.fault_injected.get();
        if injected > cur {
            self.fault_injected.add(injected - cur);
        }
        let latency = {
            let res = self.latency.lock();
            if res.count == 0 {
                None
            } else {
                let mut recent: Vec<u64> = res.samples.clone();
                recent.sort_unstable();
                // Nearest-rank percentile: ceil(0.99 * n) as a 1-based rank.
                let p99_idx = (recent.len() * 99).div_ceil(100).saturating_sub(1);
                Some(LatencySummary {
                    samples: res.count,
                    min_us: res.min_ns as f64 / 1e3,
                    mean_us: (res.sum_ns as f64 / res.count as f64) / 1e3,
                    p99_us: recent[p99_idx] as f64 / 1e3,
                })
            }
        };
        CountersSnapshot {
            sessions_opened: self.sessions_opened.get(),
            sessions_evicted: self.sessions_evicted.get(),
            sessions_rejected: self.sessions_rejected.get(),
            rounds_fused: self.rounds_fused.get(),
            fallbacks: self.fallbacks.get(),
            readings_dropped: self.readings_dropped.get(),
            results_dropped: self.results_dropped.get(),
            result_batches: self.result_batches.get(),
            bytes_sent: self.bytes_sent.get(),
            bytes_received: self.bytes_received.get(),
            frames_sent: self.frames_sent.get(),
            writer_flushes: self.writer_flushes.get(),
            writer_writes: self.writer_writes.get(),
            // Snapshot fields predate the multi-reactor pool; summing the
            // per-reactor cells keeps the JSON shape (and meaning: totals
            // for the whole data plane) unchanged.
            connections_accepted: self.reactors.iter().map(|r| r.accepted.get()).sum(),
            connections_open: self.reactors.iter().map(|r| r.connections_open.get()).sum(),
            epoll_wakeups: self.reactors.iter().map(|r| r.epoll_wakeups.get()).sum(),
            reactor_events: self.reactors.iter().map(|r| r.events.get()).sum(),
            wedged_closed: self.reactors.iter().map(|r| r.wedged_closed.get()).sum(),
            accept_pauses: self.reactors.iter().map(|r| r.accept_pauses.get()).sum(),
            shard_handoff_sends: self.shard_handoff_sends.get(),
            recoveries: self.recoveries.get(),
            resumed_sessions: self.resumed_sessions.get(),
            retries: self.retries.get(),
            checkpoint_bytes: self.checkpoint_bytes.get(),
            wal_replay_ms: self.wal_replay_ns.get() as f64 / 1e6,
            segment_load_ms: self.segment_load_ns.get() as f64 / 1e6,
            torn_tail_recoveries: self.torn_tail_recoveries.get(),
            compactions: self.compactions.get(),
            segment_rounds_folded: self.segment_rounds_folded.get(),
            segment_bytes_written: self.segment_bytes_written.get(),
            checkpoint_failures: self.checkpoint_failures.get(),
            degraded_entered: self.degraded_entered.get(),
            degraded_sessions: self.degraded_sessions.get().max(0) as u64,
            segments_quarantined: self.segments_quarantined.get(),
            fault_injected: self.fault_injected.get(),
            sessions_exported: self.sessions_exported.get(),
            sessions_imported: self.sessions_imported.get(),
            sessions_skipped_foreign: self.sessions_skipped_foreign.get(),
            shard_queue_high_water: self
                .shard_queue_high_water
                .iter()
                .map(|hw| hw.get().max(0) as usize)
                .collect(),
            fuse_latency: latency,
        }
    }
}

/// Fuse-latency statistics over the recent reservoir.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Total fuses recorded over the daemon's lifetime.
    pub samples: u64,
    /// Lifetime minimum, microseconds.
    pub min_us: f64,
    /// Lifetime mean, microseconds.
    pub mean_us: f64,
    /// 99th percentile of the recent reservoir, microseconds.
    pub p99_us: f64,
}

/// A point-in-time copy of [`ServiceCounters`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CountersSnapshot {
    /// Sessions successfully opened.
    pub sessions_opened: u64,
    /// Sessions evicted (idle-timeout or capacity eviction).
    pub sessions_evicted: u64,
    /// Session opens refused by admission control.
    pub sessions_rejected: u64,
    /// Rounds fused across all sessions.
    pub rounds_fused: u64,
    /// Fused rounds that resolved by falling back to a last-good value.
    pub fallbacks: u64,
    /// Readings dropped by `DropOldest`/`Reject` backpressure.
    pub readings_dropped: u64,
    /// Result/error frames dropped because a tenant's sink was full or
    /// gone: shards never block on a slow tenant, so its overflow is shed
    /// here and the tenant learns about the loss from this counter.
    pub results_dropped: u64,
    /// Batched result frames shipped (each carried two or more verdicts;
    /// lone verdicts still travel as plain `SessionResult` frames).
    pub result_batches: u64,
    /// Bytes written to tenant sockets by connection writer threads.
    pub bytes_sent: u64,
    /// Bytes read from tenant sockets by connection reader loops.
    pub bytes_received: u64,
    /// Frames encoded into outbound writer buffers.
    pub frames_sent: u64,
    /// Coalesced writer flushes; `frames_sent / writer_flushes` is the
    /// realized egress batching factor.
    pub writer_flushes: u64,
    /// `write(2)` calls those flushes issued (short writes retry, so this
    /// can exceed `writer_flushes`).
    pub writer_writes: u64,
    /// Connections the reactor accepted over the daemon's lifetime.
    pub connections_accepted: u64,
    /// Sockets the reactor owned at snapshot time (0 after a drain).
    pub connections_open: i64,
    /// Event-loop wakeups (`epoll_wait`/`poll` returns); with
    /// `reactor_events` this gives the events-per-wakeup batching factor.
    pub epoll_wakeups: u64,
    /// Readiness events the reactor dispatched.
    pub reactor_events: u64,
    /// Connections closed for staying unwritable past the write deadline.
    pub wedged_closed: u64,
    /// Times the reactor paused accepting on fd exhaustion.
    pub accept_pauses: u64,
    /// Channel sends into shard data mailboxes; with the burst handoff a
    /// `FeedBatch` frame costs one send, so `shard_handoff_sends` per 1k
    /// readings is the number `bench_serve` gates on.
    pub shard_handoff_sends: u64,
    /// Sessions rebuilt from a WAL checkpoint (eager recovery at daemon
    /// start, or lazily when a resume found no live session).
    pub recoveries: u64,
    /// Sessions successfully re-attached or restored for a resuming client.
    pub resumed_sessions: u64,
    /// Client resume requests received (each is one retry of a session).
    pub retries: u64,
    /// Bytes written by session checkpoints (WAL appends + meta rewrites).
    pub checkpoint_bytes: u64,
    /// Total time spent replaying session WALs, milliseconds.
    pub wal_replay_ms: f64,
    /// Total time spent cold-resuming sessions from the segment tier,
    /// milliseconds — the number `wal_replay_ms` is benchmarked against.
    pub segment_load_ms: f64,
    /// WAL opens that truncated a torn final line (crash artefacts
    /// recovered, not errors).
    pub torn_tail_recoveries: u64,
    /// Segment-tier compaction passes completed.
    pub compactions: u64,
    /// History rows folded out of session WALs into segments.
    pub segment_rounds_folded: u64,
    /// Bytes of segment files written by compaction.
    pub segment_bytes_written: u64,
    /// Checkpoint attempts that failed (WAL or meta write error).
    pub checkpoint_failures: u64,
    /// Times any session entered degraded (memory-only) persistence.
    pub degraded_entered: u64,
    /// Sessions running memory-only at snapshot time (0 when healthy).
    pub degraded_sessions: u64,
    /// Segments quarantined by the tier on CRC/decode failure.
    pub segments_quarantined: u64,
    /// Faults the sysio injector delivered (0 outside chaos/test runs).
    pub fault_injected: u64,
    /// Sessions checkpoint-shipped to another node (drain/rebalance).
    pub sessions_exported: u64,
    /// Sessions restored from another node's checkpoint shipment.
    pub sessions_imported: u64,
    /// Recovery checkpoints skipped because their meta named another node.
    pub sessions_skipped_foreign: u64,
    /// Per-shard mailbox depth high-water marks.
    pub shard_queue_high_water: Vec<usize>,
    /// Fuse-latency summary; `None` before the first fused round.
    pub fuse_latency: Option<LatencySummary>,
}

impl CountersSnapshot {
    /// Renders the snapshot as pretty JSON (the drain-time dump format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("counters are always serializable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_tracks_min_mean_p99() {
        let c = ServiceCounters::new(2);
        for ns in [1_000u64, 2_000, 3_000, 4_000, 100_000] {
            c.round_fused(ns);
        }
        let snap = c.snapshot();
        assert_eq!(snap.rounds_fused, 5);
        let lat = snap.fuse_latency.unwrap();
        assert_eq!(lat.samples, 5);
        assert!((lat.min_us - 1.0).abs() < 1e-9);
        assert!((lat.mean_us - 22.0).abs() < 1e-9);
        assert!((lat.p99_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn queue_high_water_is_monotone() {
        let c = ServiceCounters::new(2);
        c.note_queue_depth(0, 5);
        c.note_queue_depth(0, 3);
        c.note_queue_depth(1, 7);
        c.note_queue_depth(9, 100); // out-of-range shard is ignored
        assert_eq!(c.snapshot().shard_queue_high_water, vec![5, 7]);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let c = ServiceCounters::new(1);
        c.session_opened();
        c.round_fused(5_000);
        let json = c.snapshot().to_json();
        assert!(json.contains("\"sessions_opened\": 1"));
        assert!(json.contains("\"fuse_latency\""));
        assert!(json.contains("\"recoveries\""));
        assert!(json.contains("\"checkpoint_bytes\""));
    }

    #[test]
    fn wire_counters_accumulate() {
        let c = ServiceCounters::new(1);
        c.result_batch();
        c.result_batch();
        c.results_dropped_add(7);
        c.result_dropped();
        c.bytes_received_counter().add(1024);
        // The egress cells are fed directly by corked writers holding the
        // service's handle set — the reactor wires every connection this
        // way via `cork_metrics()`.
        let mut w = avoc_net::CorkedWriter::new(Vec::new());
        w.set_metrics(c.cork_metrics());
        w.push(&avoc_net::Message::Shutdown);
        w.flush().unwrap();
        let snap = c.snapshot();
        assert_eq!(snap.result_batches, 2);
        assert_eq!(snap.results_dropped, 8);
        assert_eq!(snap.bytes_received, 1024);
        assert_eq!(snap.frames_sent, 1);
        assert_eq!(snap.writer_flushes, 1);
        assert_eq!(snap.writer_writes, 1);
        assert!(snap.bytes_sent > 0, "flush counted the frame's bytes");
        let json = snap.to_json();
        assert!(json.contains("\"result_batches\": 2"));
        assert!(json.contains("\"writer_flushes\": 1"));
        assert!(json.contains("\"epoll_wakeups\""));
        assert!(json.contains("\"connections_open\""));
    }

    #[test]
    fn recovery_counters_accumulate() {
        let c = ServiceCounters::new(1);
        c.recovery();
        c.session_resumed();
        c.session_resumed();
        c.retry();
        c.retry();
        c.retry();
        c.checkpoint_bytes_add(100);
        c.checkpoint_bytes_add(28);
        c.wal_replay_ns_add(2_500_000);
        let snap = c.snapshot();
        assert_eq!(snap.recoveries, 1);
        assert_eq!(snap.resumed_sessions, 2);
        assert_eq!(snap.retries, 3);
        assert_eq!(snap.checkpoint_bytes, 128);
        assert!((snap.wal_replay_ms - 2.5).abs() < 1e-9);
    }

    #[test]
    fn segment_tier_counters_accumulate() {
        let c = ServiceCounters::new(1);
        c.segment_load_ns_add(1_500_000);
        c.torn_tail_recovered();
        c.compaction_recorded(120, 4096, 3_000_000, 2);
        c.compaction_recorded(30, 1024, 1_000_000, 1);
        let snap = c.snapshot();
        assert!((snap.segment_load_ms - 1.5).abs() < 1e-9);
        assert_eq!(snap.torn_tail_recoveries, 1);
        assert_eq!(snap.compactions, 2);
        assert_eq!(snap.segment_rounds_folded, 150);
        assert_eq!(snap.segment_bytes_written, 5120);
        let text = c.registry().render_prometheus();
        assert!(text.contains("avoc_segments_live 1"));
        assert!(text.contains("avoc_compaction_latency_ns_count 2"));
        assert!(text.contains("avoc_segment_load_latency_ns_count 1"));
    }

    #[test]
    fn reservoir_wraps_without_losing_lifetime_stats() {
        let c = ServiceCounters::new(1);
        for i in 0..(LATENCY_RESERVOIR as u64 + 100) {
            c.round_fused(1_000 + i);
        }
        let lat = c.snapshot().fuse_latency.unwrap();
        assert_eq!(lat.samples, LATENCY_RESERVOIR as u64 + 100);
        assert!((lat.min_us - 1.0).abs() < 1e-9);
    }

    #[test]
    fn counters_surface_on_the_registry_scrape() {
        let c = ServiceCounters::new(1);
        c.session_opened();
        c.round_fused(2_000);
        c.note_queue_depth(0, 9);
        let text = c.registry().render_prometheus();
        assert!(text.contains("avoc_sessions_opened_total 1"));
        assert!(text.contains("avoc_rounds_fused_total 1"));
        assert!(text.contains("avoc_shard_queue_high_water{shard=\"0\"} 9"));
        assert!(text.contains("avoc_fuse_latency_ns_count 1"));
    }

    #[test]
    fn degraded_sessions_drive_the_persistence_health_domain() {
        let c = ServiceCounters::new(1);
        assert!(c.health().is_ok());
        c.session_degraded(7);
        c.session_degraded(7); // idempotent: one transition counted
        c.session_degraded(9);
        let snap = c.snapshot();
        assert_eq!(snap.degraded_entered, 2);
        assert_eq!(snap.degraded_sessions, 2);
        assert_eq!(c.health().status_code(), 503);
        assert!(c.health().render_json().contains("\"persistence\""));
        c.session_persistence_recovered(7);
        assert_eq!(
            c.health().status_code(),
            503,
            "one degraded session still pins the domain"
        );
        // A session dying while degraded funnels through deregister and
        // releases the domain too.
        c.deregister_session(9);
        assert!(c.health().is_ok());
        assert_eq!(c.snapshot().degraded_sessions, 0);
        assert_eq!(c.snapshot().degraded_entered, 2, "transitions stay counted");
        let json = c.snapshot().to_json();
        assert!(json.contains("\"checkpoint_failures\": 0"));
        assert!(json.contains("\"degraded_entered\": 2"));
        assert!(json.contains("\"segments_quarantined\""));
        assert!(json.contains("\"fault_injected\""));
        assert!(json.contains("\"accept_pauses\""));
    }

    #[test]
    fn quarantine_counter_mirrors_the_tier_total_monotonically() {
        let c = ServiceCounters::new(1);
        c.quarantined_sync(3);
        c.quarantined_sync(2); // stale report: never goes backwards
        c.quarantined_sync(5);
        assert_eq!(c.snapshot().segments_quarantined, 5);
    }

    #[test]
    fn session_directory_tracks_live_sessions_and_their_rounds() {
        let c = ServiceCounters::new(1);
        let h = c.register_session(7, 0, true);
        h.record(1_000);
        h.record(2_000);
        c.register_session(3, 0, false);
        let json = c.sessions_json();
        // Sorted by id; rounds come from the histogram count.
        let i3 = json.find("\"session\": 3").expect("session 3 listed");
        let i7 = json.find("\"session\": 7").expect("session 7 listed");
        assert!(i3 < i7);
        assert!(
            json.contains("\"session\": 7, \"shard\": 0, \"resumable\": true, \"rounds_fused\": 2")
        );
        c.deregister_session(7);
        assert!(!c.sessions_json().contains("\"session\": 7"));
        // The registered series outlives the directory entry.
        let text = c.registry().render_prometheus();
        assert!(text.contains("avoc_session_fuse_latency_ns_count{session=\"7\"} 2"));
    }
}
