//! Durable session state: per-session WAL + metadata checkpoints.
//!
//! With persistence enabled, every session owns two files in the state
//! directory:
//!
//! * `session-<id:016x>.wal` — an [`avoc_store::FileHistory`] append-only
//!   log of the engine's history records, written write-behind through
//!   [`avoc_store::CachedHistory`];
//! * `session-<id:016x>.meta` — a small atomically-replaced (tmp + rename)
//!   metadata file carrying the resume token, module count, governing spec,
//!   high-water round and the unacked-results ring.
//!
//! A checkpoint writes the WAL first, then the meta: a crash between the two
//! leaves a meta that understates `high_round` against a WAL that is at
//! least as new — recovery then re-fuses at most the rounds the client
//! replays past the stale floor, never loses history. The meta format is
//! hand-rolled `key=value` lines (not JSON) so `u64` resume tokens survive
//! byte-exact — the vendored JSON shim may route integers through `f64`.
//!
//! Corruption anywhere — unreadable meta, mid-file WAL damage — makes
//! [`SessionStore::load`] return `None`, and the caller falls back to a
//! fresh session whose AVOC engine re-bootstraps from live data, exactly as
//! if persistence were off. A torn WAL *tail* (the expected artefact of a
//! crash mid-append) is tolerated and truncated by `FileHistory` itself.

use avoc_core::history::HistoryStore;
use avoc_core::ModuleId;
use avoc_net::SpecSource;
use avoc_store::{
    session_wal_path, CachedHistory, Durability, FileHistory, TieredPin, TieredStore, VerdictRecord,
};
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use sysio::fault::Site;
use sysio::fio;

/// Crash-safety configuration for [`crate::VoterService`].
#[derive(Debug, Clone)]
pub struct Persistence {
    /// Where session WALs and metadata live. `None` disables persistence
    /// entirely (the default): sessions are memory-only and a restart
    /// re-bootstraps from live data.
    pub state_dir: Option<PathBuf>,
    /// `true` fsyncs every WAL append ([`Durability::Fsync`]); the default
    /// flushes to the OS and lets the kernel schedule the write — a daemon
    /// crash loses nothing, a machine crash may lose the tail (which
    /// recovery then truncates).
    pub fsync: bool,
    /// Checkpoint cadence in fused rounds. `1` (the default) checkpoints
    /// after every round, making a hard kill bit-identically recoverable;
    /// larger values amortise the meta rewrite and accept losing up to
    /// `checkpoint_every - 1` rounds of history on a crash.
    pub checkpoint_every: u64,
    /// Background compaction interval in milliseconds. `0` (the default)
    /// disables the compactor thread; the segment tier still opens, so
    /// previously folded segments remain readable and
    /// `VoterService::compact_now` works on demand.
    pub compact_interval_ms: u64,
    /// This daemon's cluster node id, stamped into every meta sidecar it
    /// writes. After a migration the source's leftover sidecar names the
    /// *target* node, so boot recovery skips it instead of double-owning
    /// the session. `0` (the default) is a valid id for single-node
    /// deployments; sidecars written before this field existed carry no
    /// `node=` line and are owned by whoever finds them.
    pub node_id: u64,
    /// Shared inter-node secret gating the cluster verbs (`ExportSession` /
    /// `SessionState` import). Exports ship the session's resume token, so
    /// a frame whose `auth` field does not match this secret is refused.
    /// `None` (the default) disables the cluster verbs entirely — a
    /// standalone daemon exposes no migration surface.
    pub cluster_secret: Option<u64>,
}

impl Default for Persistence {
    fn default() -> Self {
        Persistence {
            state_dir: None,
            fsync: false,
            checkpoint_every: 1,
            compact_interval_ms: 0,
            node_id: 0,
            cluster_secret: None,
        }
    }
}

impl Persistence {
    /// Whether sessions should be persisted at all.
    pub fn enabled(&self) -> bool {
        self.state_dir.is_some()
    }

    pub(crate) fn durability(&self) -> Durability {
        if self.fsync {
            Durability::Fsync
        } else {
            Durability::Flush
        }
    }
}

/// One re-emittable session result: `(round, value, voted)`.
pub(crate) type StoredResult = (u64, Option<f64>, bool);

/// The decoded contents of a session's meta file.
#[derive(Debug, Clone)]
pub(crate) struct MetaState {
    pub(crate) token: u64,
    pub(crate) modules: u32,
    pub(crate) resumable: bool,
    pub(crate) spec: SpecSource,
    pub(crate) high_round: Option<u64>,
    /// Owning cluster node, when the sidecar was written by a node-aware
    /// daemon. `None` for pre-cluster sidecars, which any node may own.
    pub(crate) node: Option<u64>,
    pub(crate) results: Vec<StoredResult>,
}

impl MetaState {
    /// Whether a daemon with id `node_id` owns this sidecar. Legacy
    /// sidecars (no `node=` line) are owned by whoever finds them.
    pub(crate) fn owned_by(&self, node_id: u64) -> bool {
        self.node.is_none_or(|n| n == node_id)
    }
}

/// What a [`SessionStore::load`] had to do — the resume-cost attribution
/// the metrics layer splits `wal_replay_ms` / `segment_load_ms` on.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LoadInfo {
    /// The seed state came from the segment tier alone (the WAL had been
    /// retired by a fold) — the fast path this PR exists to prove.
    pub(crate) from_segments: bool,
    /// `FileHistory` truncated a torn final line during replay.
    pub(crate) torn_tail: bool,
}

/// A session's durable state: its history WAL (write-behind cached) plus
/// the meta checkpoint writer, pinned into the segment tier while alive.
pub(crate) struct SessionStore {
    history: CachedHistory<FileHistory>,
    session: u64,
    wal_path: PathBuf,
    meta_path: PathBuf,
    token: u64,
    modules: u32,
    resumable: bool,
    spec: SpecSource,
    /// The node id stamped into every meta rewrite — the owning daemon's,
    /// until an export flips it to the migration target's.
    node: u64,
    /// `bytes_logged()` at the previous checkpoint, for the delta counter.
    logged_floor: u64,
    /// Highest verdict round already durable (WAL or segment) — verdicts at
    /// or below it are not re-logged.
    verdict_floor: Option<u64>,
    /// The segment tier, for forget-on-remove. `None` when tiering is off.
    tiered: Option<Arc<TieredStore>>,
    /// Holds the compactor off this session while it is live.
    _pin: Option<TieredPin>,
}

impl std::fmt::Debug for SessionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionStore")
            .field("wal", &self.wal_path)
            .field("meta", &self.meta_path)
            .finish_non_exhaustive()
    }
}

fn wal_path(dir: &Path, session: u64) -> PathBuf {
    // The name is shared with the segment compactor, which scans for these
    // files — one definition, owned by avoc-store.
    session_wal_path(dir, session)
}

fn meta_path(dir: &Path, session: u64) -> PathBuf {
    dir.join(format!("session-{session:016x}.meta"))
}

/// Session ids that have a meta file in `dir` (the recovery scan).
pub(crate) fn list_sessions(dir: &Path) -> Vec<u64> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut ids: Vec<u64> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name();
            let name = name.to_str()?;
            let hex = name.strip_prefix("session-")?.strip_suffix(".meta")?;
            u64::from_str_radix(hex, 16).ok()
        })
        .collect();
    ids.sort_unstable();
    ids
}

/// Reads and decodes a session's meta file; `None` if missing or corrupt.
pub(crate) fn read_meta(dir: &Path, session: u64) -> Option<MetaState> {
    let text = std::fs::read_to_string(meta_path(dir, session)).ok()?;
    parse_meta(&text)
}

/// Re-reads a migrated-away session's shipped state from disk — the
/// idempotent transfer-retry path. A completed export leaves the sidecar
/// naming `target_node` even if the shipped bytes were lost in flight, so
/// re-asking re-ships the same state. `None` when the sidecar is missing,
/// corrupt, or names any other owner (nothing to re-ship).
pub(crate) fn read_exported_blobs(
    dir: &Path,
    session: u64,
    target_node: u64,
) -> Option<(Vec<u8>, Vec<u8>)> {
    let meta = read_meta(dir, session)?;
    if meta.node != Some(target_node) {
        return None;
    }
    let meta_bytes = std::fs::read(meta_path(dir, session)).ok()?;
    let wal_bytes = std::fs::read(wal_path(dir, session)).ok()?;
    Some((meta_bytes, wal_bytes))
}

/// Decodes a shipped meta blob and re-stamps it with the importing node's
/// id, returning the parsed state plus the exact bytes to land on disk.
/// Everything but the `node=` line re-renders byte-identically (floats use
/// the shortest round-trip form on both sides), so the imported sidecar is
/// the exported one with ownership adopted. `None` when the blob is not
/// UTF-8 or fails to parse.
pub(crate) fn adopt_meta(meta: &[u8], node_id: u64) -> Option<(MetaState, Vec<u8>)> {
    let text = std::str::from_utf8(meta).ok()?;
    let mut state = parse_meta(text)?;
    state.node = Some(node_id);
    let ring: VecDeque<StoredResult> = state.results.iter().copied().collect();
    let rendered = render_meta(
        state.token,
        state.modules,
        state.resumable,
        &state.spec,
        state.high_round,
        node_id,
        &ring,
    );
    Some((state, rendered.into_bytes()))
}

fn parse_meta(text: &str) -> Option<MetaState> {
    let mut lines = text.lines().peekable();
    if lines.next()? != "avoc-session-meta v1" {
        return None;
    }
    let token = lines.next()?.strip_prefix("token=")?.parse().ok()?;
    let modules = lines.next()?.strip_prefix("modules=")?.parse().ok()?;
    let resumable = match lines.next()?.strip_prefix("resumable=")? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let high_round = match lines.next()?.strip_prefix("high_round=")? {
        "none" => None,
        n => Some(n.parse().ok()?),
    };
    // Still "v1": the optional `node=` line slots in before `results=`, so
    // sidecars written before the cluster tier (no such line) keep parsing.
    let node = match lines.peek()?.strip_prefix("node=") {
        Some(n) => {
            let id = n.parse().ok()?;
            lines.next();
            Some(id)
        }
        None => None,
    };
    let count: usize = lines.next()?.strip_prefix("results=")?.parse().ok()?;
    let mut results = Vec::with_capacity(count.min(RESULT_RING));
    for _ in 0..count {
        let line = lines.next()?;
        let mut parts = line.strip_prefix("r ")?.split(' ');
        let round = parts.next()?.parse().ok()?;
        let value = match parts.next()? {
            "none" => None,
            v => Some(v.parse().ok()?),
        };
        let voted = match parts.next()? {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        results.push((round, value, voted));
    }
    let spec = match lines.next()? {
        "spec=named" => SpecSource::Named(lines.collect::<Vec<_>>().join("\n")),
        "spec=inline" => SpecSource::Inline(lines.collect::<Vec<_>>().join("\n")),
        _ => return None,
    };
    Some(MetaState {
        token,
        modules,
        resumable,
        spec,
        high_round,
        node,
        results,
    })
}

#[allow(clippy::too_many_arguments)]
fn render_meta(
    token: u64,
    modules: u32,
    resumable: bool,
    spec: &SpecSource,
    high_round: Option<u64>,
    node: u64,
    results: &VecDeque<StoredResult>,
) -> String {
    let mut out = String::from("avoc-session-meta v1\n");
    out.push_str(&format!("token={token}\n"));
    out.push_str(&format!("modules={modules}\n"));
    out.push_str(&format!("resumable={}\n", u8::from(resumable)));
    match high_round {
        Some(r) => out.push_str(&format!("high_round={r}\n")),
        None => out.push_str("high_round=none\n"),
    }
    out.push_str(&format!("node={node}\n"));
    out.push_str(&format!("results={}\n", results.len()));
    for &(round, value, voted) in results {
        match value {
            // `{:?}` is Rust's shortest round-trip float form; `parse`
            // restores the exact bits, which bit-identical resume needs.
            Some(v) => out.push_str(&format!("r {round} {v:?} {}\n", u8::from(voted))),
            None => out.push_str(&format!("r {round} none {}\n", u8::from(voted))),
        }
    }
    let (kind, text) = match spec {
        SpecSource::Named(n) => ("named", n.as_str()),
        SpecSource::Inline(v) => ("inline", v.as_str()),
    };
    out.push_str(&format!("spec={kind}\n"));
    out.push_str(text);
    out
}

/// How many recent results a session retains for re-emission on resume.
/// A client more than this many rounds behind its own acks loses the
/// overwritten tail (counted via `results_dropped` at emission time, as any
/// slow tenant's overflow is).
pub(crate) const RESULT_RING: usize = 256;

impl SessionStore {
    /// Creates fresh durable state for a new session, removing any stale
    /// files a previous occupant of this id left behind and *forgetting*
    /// its folded segment rows so the old life cannot bleed into the new.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn create(
        dir: &Path,
        session: u64,
        token: u64,
        modules: u32,
        resumable: bool,
        spec: SpecSource,
        durability: Durability,
        tiered: Option<&Arc<TieredStore>>,
        node_id: u64,
    ) -> io::Result<SessionStore> {
        std::fs::create_dir_all(dir)?;
        // Pin first: a fold in flight for this id finishes before we touch
        // its files, and none can start while the session lives.
        let pin = tiered.map(|t| t.pin(session));
        if let Some(t) = tiered {
            t.forget_session(session)?;
        }
        let wal = wal_path(dir, session);
        let meta = meta_path(dir, session);
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(&meta);
        let history = CachedHistory::new(FileHistory::open_with(&wal, durability)?);
        let store = SessionStore {
            history,
            session,
            wal_path: wal,
            meta_path: meta,
            token,
            modules,
            resumable,
            spec,
            node: node_id,
            logged_floor: 0,
            verdict_floor: None,
            tiered: tiered.map(Arc::clone),
            _pin: pin,
        };
        store.write_meta(None, &VecDeque::new())?;
        Ok(store)
    }

    /// Loads a session's durable state. `None` when the checkpoint is
    /// missing or corrupt — the caller falls back to a fresh session (AVOC
    /// re-bootstraps). A torn WAL tail is repaired by `FileHistory` and does
    /// not fail the load.
    ///
    /// Resume precedence for the history seed: the WAL overlays the segment
    /// tier (a WAL record is always at least as new as a folded one), and a
    /// fresh session is the fallback when neither tier knows the id. When
    /// the WAL has been retired by a complete fold, the seed comes from the
    /// segment tier alone — the cheap path [`LoadInfo::from_segments`]
    /// reports and `bench_store` measures.
    pub(crate) fn load(
        dir: &Path,
        session: u64,
        durability: Durability,
        tiered: Option<&Arc<TieredStore>>,
        node_id: u64,
    ) -> Option<(SessionStore, MetaState, LoadInfo)> {
        // Pin before reading anything: an in-flight fold of this session
        // completes (or is skipped) before we open its files.
        let pin = tiered.map(|t| t.pin(session));
        let meta = read_meta(dir, session)?;
        let wal = wal_path(dir, session);
        let wal_existed = wal.exists();
        let file = FileHistory::open_with(&wal, durability).ok()?;
        let mut info = LoadInfo {
            from_segments: false,
            torn_tail: file.recovered_torn_tail(),
        };
        let summary = match tiered {
            Some(t) => t.session_summary(session).ok().flatten(),
            None => None,
        };
        let logged_floor = file.bytes_logged();
        let verdict_floor = file
            .max_verdict_round()
            .max(summary.as_ref().and_then(|s| s.max_verdict_round));
        // Merge tiers: segment latest state underneath, WAL records on top.
        // A WAL `clear` wipes everything before it — including segments.
        let history = match &summary {
            Some(s) if !file.saw_clear() => {
                info.from_segments = !wal_existed;
                let mut merged: std::collections::BTreeMap<ModuleId, f64> =
                    s.latest.iter().copied().collect();
                for (m, v) in file.snapshot() {
                    merged.insert(m, v);
                }
                CachedHistory::with_seed(file, merged)
            }
            _ => CachedHistory::new(file),
        };
        let store = SessionStore {
            history,
            session,
            wal_path: wal,
            meta_path: meta_path(dir, session),
            token: meta.token,
            modules: meta.modules,
            resumable: meta.resumable,
            spec: meta.spec.clone(),
            // Loading adopts the session: subsequent meta rewrites stamp
            // the loader's id (legacy sidecars gain one at first rewrite).
            node: node_id,
            logged_floor,
            verdict_floor,
            tiered: tiered.map(Arc::clone),
            _pin: pin,
        };
        Some((store, meta, info))
    }

    /// The history records to seed a restored engine with.
    pub(crate) fn seed_records(&self) -> Vec<(ModuleId, f64)> {
        self.history.snapshot()
    }

    /// Stages the engine's current history into the write-behind cache,
    /// writing only records that actually changed since the last note.
    pub(crate) fn note_history(&mut self, records: &[(ModuleId, f64)]) {
        for &(m, v) in records {
            if self.history.get(m) != Some(v) {
                self.history.set(m, v);
            }
        }
    }

    /// Checkpoints: WAL first (one batched append + flush for the dirty
    /// records, then verdict rows and a `commit` round stamp in a second
    /// single write), then the meta file via tmp + rename. Returns the
    /// bytes written by this checkpoint.
    ///
    /// The `commit` stamp is what makes the WAL foldable: the compactor
    /// folds only round-stamped entries, so a crash between the record
    /// flush and the stamp leaves an in-flight tail the fold simply skips.
    ///
    /// # Errors
    ///
    /// Propagates meta-file I/O errors, and reports a sick WAL (any append
    /// since the last healthy checkpoint failed — e.g. `ENOSPC`) as
    /// [`io::ErrorKind::Other`] so the caller's degradation state machine
    /// can react; the staged history stays cached in memory either way.
    pub(crate) fn checkpoint(
        &mut self,
        high_round: Option<u64>,
        results: &VecDeque<StoredResult>,
    ) -> io::Result<u64> {
        self.history.flush();
        let backing = self.history.backing_mut();
        let fresh: Vec<VerdictRecord> = results
            .iter()
            .filter(|(round, ..)| self.verdict_floor.is_none_or(|f| *round > f))
            .map(|&(round, value, voted)| VerdictRecord {
                round,
                value,
                voted,
            })
            .collect();
        let commit = match high_round {
            Some(r) if backing.committed_round() != Some(r) => Some(r),
            _ => None,
        };
        if !fresh.is_empty() || commit.is_some() {
            backing.append_markers(&fresh, commit);
        }
        if backing.write_failed() {
            // The meta must not advance past a WAL that lost entries; the
            // verdict floor stays put so the next healthy checkpoint
            // re-logs what this one could not.
            return Err(io::Error::other(
                "session WAL is sick: an append failed since the last healthy checkpoint",
            ));
        }
        if let Some(v) = fresh.last() {
            self.verdict_floor = self.verdict_floor.max(Some(v.round));
        }
        let logged = self.history.backing().bytes_logged();
        let wal_delta = logged.saturating_sub(self.logged_floor);
        self.logged_floor = logged;
        let meta_bytes = self.write_meta(high_round, results)?;
        Ok(wal_delta + meta_bytes)
    }

    fn write_meta(
        &self,
        high_round: Option<u64>,
        results: &VecDeque<StoredResult>,
    ) -> io::Result<u64> {
        let text = render_meta(
            self.token,
            self.modules,
            self.resumable,
            &self.spec,
            high_round,
            self.node,
            results,
        );
        let tmp = self.meta_path.with_extension("meta.tmp");
        {
            fio::check_op(Site::MetaWrite)?;
            let mut f = std::fs::File::create(&tmp)?;
            fio::write_all(Site::MetaWrite, &mut f, text.as_bytes())?;
            fio::flush(Site::MetaWrite, &mut f)?;
        }
        fio::check_op(Site::MetaWrite)?;
        std::fs::rename(&tmp, &self.meta_path)?;
        Ok(text.len() as u64)
    }

    /// Rebuilds the WAL wholesale from the in-memory record cache — the
    /// re-probe a degraded session runs against a possibly-healed disk.
    /// Success clears the WAL's sick flag; the caller then takes a fresh
    /// checkpoint to restore full durability.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors — the disk is still sick and the session
    /// stays degraded (the original log file remains as it was).
    pub(crate) fn heal(&mut self) -> io::Result<()> {
        self.history.flush();
        let backing = self.history.backing_mut();
        backing.compact()?;
        self.logged_floor = backing.bytes_logged();
        // The rewrite drops verdict rows; lower the floor to what the
        // segment tier already folded so the next checkpoint re-logs
        // whatever the results ring still holds above it.
        self.verdict_floor = match &self.tiered {
            Some(t) => t
                .session_summary(self.session)
                .ok()
                .flatten()
                .and_then(|s| s.max_verdict_round),
            None => None,
        };
        Ok(())
    }

    /// Quiesces this session's durable state for shipping to `target_node`:
    /// takes a final checkpoint with ownership flipped to the target,
    /// compacts the WAL so the shipped blob carries only live state, and
    /// returns `(meta_bytes, wal_bytes)` read back from disk.
    ///
    /// Ordering is the migration protocol's crash story: the meta names the
    /// target *before* any bytes leave this node, so if the transfer dies
    /// mid-flight this node's boot recovery skips the session (it is the
    /// gateway's job to retry or re-place) rather than resurrecting a copy
    /// that may also be running elsewhere.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, and refuses (`InvalidData`) when the state
    /// would not fit a single transfer frame under
    /// [`avoc_net::message::MAX_FRAME_LEN`] — better an explicit failure
    /// than an undecodable frame on the wire.
    pub(crate) fn export_blobs(
        &mut self,
        target_node: u64,
        high_round: Option<u64>,
        results: &VecDeque<StoredResult>,
    ) -> io::Result<(Vec<u8>, Vec<u8>)> {
        self.history.flush();
        let backing = self.history.backing_mut();
        // Compact first: the rewrite folds the full record cache plus every
        // retained verdict into a minimal log, so the shipped WAL does not
        // carry the session's whole append history.
        backing.compact()?;
        self.logged_floor = backing.bytes_logged();
        self.verdict_floor = None;
        self.node = target_node;
        self.checkpoint(high_round, results)?;
        let meta = std::fs::read(&self.meta_path)?;
        let wal = std::fs::read(&self.wal_path)?;
        // Frame budget: session + epoch + auth + two length prefixes + header.
        const TRANSFER_OVERHEAD: usize = 1 + 8 + 8 + 8 + 4 + 4;
        if meta.len() + wal.len() + TRANSFER_OVERHEAD > avoc_net::message::MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "session state exceeds the transfer frame cap even after compaction",
            ));
        }
        Ok((meta, wal))
    }

    /// Lands a shipped session's blobs in `dir` — WAL first, then the meta
    /// via tmp + rename, mirroring the checkpoint ordering so a crash
    /// between the two leaves no meta pointing at a missing WAL. Any prior
    /// occupant of the id (files and folded segment rows) is cleared first.
    pub(crate) fn write_imported(
        dir: &Path,
        session: u64,
        meta: &[u8],
        wal: &[u8],
        tiered: Option<&Arc<TieredStore>>,
    ) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let _pin = tiered.map(|t| t.pin(session));
        if let Some(t) = tiered {
            t.forget_session(session)?;
        }
        let wal_dst = wal_path(dir, session);
        let meta_dst = meta_path(dir, session);
        let _ = std::fs::remove_file(&meta_dst);
        std::fs::write(&wal_dst, wal)?;
        let tmp = meta_dst.with_extension("meta.tmp");
        {
            fio::check_op(Site::MetaWrite)?;
            let mut f = std::fs::File::create(&tmp)?;
            fio::write_all(Site::MetaWrite, &mut f, meta)?;
            fio::flush(Site::MetaWrite, &mut f)?;
        }
        fio::check_op(Site::MetaWrite)?;
        std::fs::rename(&tmp, &meta_dst)?;
        Ok(())
    }

    /// Abandons staged-but-unflushed history — the hard-kill path. The
    /// files keep whatever the last completed checkpoint wrote.
    pub(crate) fn discard(&mut self) {
        self.history.discard_pending();
    }

    /// Deletes the session's durable state (explicit close: the tenant is
    /// done, nothing to resume), including its folded segment rows.
    pub(crate) fn remove(mut self) {
        self.history.discard_pending();
        let _ = std::fs::remove_file(&self.wal_path);
        let _ = std::fs::remove_file(&self.meta_path);
        if let Some(t) = &self.tiered {
            let _ = t.forget_session(self.session);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("avoc-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn checkpoint_round_trips_meta_and_history() {
        let dir = tmpdir("roundtrip");
        let spec = SpecSource::Inline("{\"algorithm_name\": \"AVOC\"}".into());
        let mut store = SessionStore::create(
            &dir,
            0x2a,
            u64::MAX,
            3,
            true,
            spec.clone(),
            Durability::Flush,
            None,
            0,
        )
        .unwrap();
        store.note_history(&[(ModuleId::new(0), 0.75), (ModuleId::new(1), 1.0)]);
        let mut ring = VecDeque::new();
        ring.push_back((4u64, Some(19.700000000000003f64), true));
        ring.push_back((5u64, None, false));
        let bytes = store.checkpoint(Some(5), &ring).unwrap();
        assert!(bytes > 0);
        drop(store);

        let (loaded, meta, _) = SessionStore::load(&dir, 0x2a, Durability::Flush, None, 0).unwrap();
        assert_eq!(meta.token, u64::MAX, "token must survive byte-exact");
        assert_eq!(meta.modules, 3);
        assert!(meta.resumable);
        assert_eq!(meta.spec, spec);
        assert_eq!(meta.high_round, Some(5));
        // The awkward float round-trips exactly (bit-identity requirement).
        assert_eq!(
            meta.results,
            vec![(4, Some(19.700000000000003), true), (5, None, false)]
        );
        assert_eq!(
            loaded.seed_records(),
            vec![(ModuleId::new(0), 0.75), (ModuleId::new(1), 1.0)]
        );
        assert_eq!(list_sessions(&dir), vec![0x2a]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_meta_or_wal_loads_as_none() {
        let dir = tmpdir("corrupt");
        let spec = SpecSource::Named("avoc".into());
        let mut store =
            SessionStore::create(&dir, 7, 1, 2, true, spec, Durability::Flush, None, 0).unwrap();
        store.note_history(&[(ModuleId::new(0), 0.5)]);
        store.checkpoint(Some(0), &VecDeque::new()).unwrap();
        drop(store);

        // Scribble over the meta: the load must degrade to None, not error.
        std::fs::write(dir.join("session-0000000000000007.meta"), "garbage").unwrap();
        assert!(SessionStore::load(&dir, 7, Durability::Flush, None, 0).is_none());
        // Missing entirely behaves the same.
        assert!(SessionStore::load(&dir, 99, Durability::Flush, None, 0).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn discard_drops_staged_history_and_remove_deletes_files() {
        let dir = tmpdir("discard");
        let spec = SpecSource::Named("avoc".into());
        let mut store =
            SessionStore::create(&dir, 3, 9, 1, false, spec, Durability::Fsync, None, 0).unwrap();
        store.note_history(&[(ModuleId::new(0), 0.4)]);
        store.checkpoint(Some(0), &VecDeque::new()).unwrap();
        store.note_history(&[(ModuleId::new(0), 0.9)]);
        store.discard(); // hard kill: the 0.9 write never lands
        drop(store);
        let (loaded, meta, _) = SessionStore::load(&dir, 3, Durability::Flush, None, 0).unwrap();
        assert!(!meta.resumable);
        assert_eq!(loaded.seed_records(), vec![(ModuleId::new(0), 0.4)]);
        loaded.remove();
        assert!(list_sessions(&dir).is_empty());
        assert!(SessionStore::load(&dir, 3, Durability::Flush, None, 0).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn node_line_round_trips_and_legacy_metas_stay_parseable() {
        let dir = tmpdir("node");
        let spec = SpecSource::Named("avoc".into());
        let store = SessionStore::create(
            &dir,
            11,
            5,
            2,
            true,
            spec.clone(),
            Durability::Flush,
            None,
            7,
        )
        .unwrap();
        drop(store);
        let meta = read_meta(&dir, 11).unwrap();
        assert_eq!(meta.node, Some(7));
        assert!(meta.owned_by(7));
        assert!(!meta.owned_by(3));

        // A sidecar written before the cluster tier carries no node= line
        // and must parse with node: None — owned by whoever finds it.
        let legacy = "avoc-session-meta v1\ntoken=5\nmodules=2\nresumable=1\n\
                      high_round=4\nresults=1\nr 4 19.5 1\nspec=named\navoc";
        let meta = parse_meta(legacy).unwrap();
        assert_eq!(meta.node, None);
        assert!(meta.owned_by(0));
        assert!(meta.owned_by(42));
        assert_eq!(meta.high_round, Some(4));
        assert_eq!(meta.results, vec![(4, Some(19.5), true)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_blobs_flip_ownership_and_restore_elsewhere() {
        let src = tmpdir("export-src");
        let dst = tmpdir("export-dst");
        let spec = SpecSource::Named("avoc".into());
        let mut store = SessionStore::create(
            &src,
            0x5e,
            77,
            3,
            true,
            spec.clone(),
            Durability::Flush,
            None,
            1,
        )
        .unwrap();
        store.note_history(&[(ModuleId::new(0), 0.75), (ModuleId::new(2), 0.25)]);
        let mut ring = VecDeque::new();
        ring.push_back((9u64, Some(18.150000000000002f64), true));
        store.checkpoint(Some(9), &ring).unwrap();

        let (meta_bytes, wal_bytes) = store.export_blobs(2, Some(9), &ring).unwrap();
        drop(store);

        // The source's leftover sidecar now names the target: node 1 no
        // longer owns it, node 2 does.
        let leftover = read_meta(&src, 0x5e).unwrap();
        assert_eq!(leftover.node, Some(2));
        assert!(!leftover.owned_by(1));

        // Landing the blobs on the target restores byte-exact state.
        SessionStore::write_imported(&dst, 0x5e, &meta_bytes, &wal_bytes, None).unwrap();
        let (loaded, meta, _) = SessionStore::load(&dst, 0x5e, Durability::Flush, None, 2).unwrap();
        assert_eq!(meta.token, 77);
        assert_eq!(meta.node, Some(2));
        assert_eq!(meta.high_round, Some(9));
        assert_eq!(meta.spec, spec);
        assert_eq!(meta.results, vec![(9, Some(18.150000000000002), true)]);
        assert_eq!(
            loaded.seed_records(),
            vec![(ModuleId::new(0), 0.75), (ModuleId::new(2), 0.25)]
        );
        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }
}
