//! Named VDX documents the daemon can open sessions against.

use avoc_net::SpecSource;
use avoc_vdx::VdxSpec;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io;
use std::path::Path;

use crate::service::ServeError;

/// A registry of named, pre-validated VDX documents.
///
/// Tenants usually open sessions against a spec the operator shipped with
/// the daemon ([`SpecSource::Named`]); ad-hoc tenants may instead send a
/// full document inline ([`SpecSource::Inline`]), which is parsed and
/// validated per open.
#[derive(Debug, Default)]
pub struct SpecRegistry {
    specs: RwLock<HashMap<String, VdxSpec>>,
}

impl SpecRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SpecRegistry::default()
    }

    /// Loads every `*.json` document in `dir`, registered under its file
    /// stem (`specs/ble-tunnel.json` → `"ble-tunnel"`). Invalid documents
    /// are rejected eagerly so a bad spec fails daemon startup, not a
    /// session open at 3am.
    ///
    /// # Errors
    ///
    /// I/O errors from the directory walk, or `InvalidData` wrapping the
    /// first spec that fails to parse or validate.
    pub fn load_dir(&self, dir: impl AsRef<Path>) -> io::Result<usize> {
        let mut loaded = 0;
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let spec = VdxSpec::from_file(&path)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            spec.validate()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            self.specs.write().insert(stem.to_string(), spec);
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Registers (or replaces) a named spec.
    pub fn insert(&mut self, name: impl Into<String>, spec: VdxSpec) {
        self.specs.write().insert(name.into(), spec);
    }

    /// Looks up a named spec.
    pub fn get(&self, name: &str) -> Option<VdxSpec> {
        self.specs.read().get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.specs.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered specs.
    pub fn len(&self) -> usize {
        self.specs.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.read().is_empty()
    }

    /// Resolves a session-open spec reference to a validated document.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSpec`] for unregistered names;
    /// [`ServeError::Vdx`] when an inline document fails to parse or
    /// validate.
    pub fn resolve(&self, source: &SpecSource) -> Result<VdxSpec, ServeError> {
        match source {
            SpecSource::Named(name) => self
                .get(name)
                .ok_or_else(|| ServeError::UnknownSpec(name.clone())),
            SpecSource::Inline(doc) => {
                let spec = VdxSpec::from_json(doc).map_err(ServeError::Vdx)?;
                spec.validate().map_err(ServeError::Vdx)?;
                Ok(spec)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_and_inline_resolution() {
        let mut reg = SpecRegistry::new();
        reg.insert("avoc", VdxSpec::avoc());
        assert!(reg.resolve(&SpecSource::Named("avoc".into())).is_ok());
        assert!(matches!(
            reg.resolve(&SpecSource::Named("nope".into())),
            Err(ServeError::UnknownSpec(_))
        ));

        let inline = VdxSpec::avoc().to_json();
        assert!(reg.resolve(&SpecSource::Inline(inline)).is_ok());
        assert!(matches!(
            reg.resolve(&SpecSource::Inline("{not json".into())),
            Err(ServeError::Vdx(_))
        ));
    }

    #[test]
    fn load_dir_registers_file_stems() {
        let dir = std::env::temp_dir().join("avoc-serve-registry-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("demo.json"), VdxSpec::avoc().to_json()).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let reg = SpecRegistry::new();
        assert_eq!(reg.load_dir(&dir).unwrap(), 1);
        assert_eq!(reg.names(), vec!["demo".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_rejects_invalid_documents() {
        let dir = std::env::temp_dir().join("avoc-serve-registry-bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.json"), "{\"not\": \"a spec\"}").unwrap();
        let reg = SpecRegistry::new();
        assert!(reg.load_dir(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
